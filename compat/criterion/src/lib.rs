//! Offline stand-in for the `criterion` API subset this workspace's benches
//! use: [`black_box`], [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] (with `sample_size`, `bench_function`,
//! `bench_with_input`, `finish`), [`BenchmarkId`], [`Bencher::iter`], and
//! the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This harness keeps the benches compiling and runnable
//! (`cargo bench` measures each target with a simple calibrated timing loop
//! and prints median per-iteration time), without criterion's statistics,
//! plotting, or baseline storage.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one parameterized benchmark: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `function_name/parameter`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

/// Anything usable as a benchmark name: `&str` or [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The rendered benchmark name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    num_samples: usize,
}

impl Bencher {
    /// Times `routine`, recording `num_samples` samples of a calibrated
    /// batch size each.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate a batch size targeting ~5ms per sample so per-iteration
        // noise averages out without making runs slow.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        self.iters_per_sample = batch;
        for _ in 0..self.num_samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one(full_name: &str, num_samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        num_samples: num_samples.max(2),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{full_name:<50} (no samples)");
        return;
    }
    let mut per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / b.iters_per_sample as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let (lo, hi) = (per_iter[0], per_iter[per_iter.len() - 1]);
    println!(
        "{full_name:<50} median {} (min {}, max {}, {} samples x {} iters)",
        fmt_time(median),
        fmt_time(lo),
        fmt_time(hi),
        per_iter.len(),
        b.iters_per_sample
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// The benchmark manager passed to each `criterion_group!` function.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(name, self.default_samples, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let samples = self.default_samples;
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            samples,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<I: IntoBenchmarkId>(
        &mut self,
        id: I,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(&full, self.samples, f);
        self
    }

    /// Runs a benchmark receiving a borrowed input.
    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized>(
        &mut self,
        id: I,
        input: &T,
        f: impl FnOnce(&mut Bencher, &T),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(&full, self.samples, |b| f(b, input));
        self
    }

    /// Closes the group (no-op here; criterion emits summary output).
    pub fn finish(self) {}
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("standalone", |b| b.iter(|| black_box(2u64 + 2)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.bench_function("plain", |b| b.iter(|| black_box(1u32.wrapping_mul(3))));
        g.bench_function(BenchmarkId::new("sized", 42), |b| {
            b.iter(|| black_box(42u8))
        });
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }

    criterion_group!(benches, quick);

    #[test]
    fn harness_runs_every_shape() {
        benches();
    }

    #[test]
    fn benchmark_id_renders_name_slash_param() {
        assert_eq!(BenchmarkId::new("dbscan", 1500).into_id(), "dbscan/1500");
    }
}
