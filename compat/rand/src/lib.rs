//! Offline stand-in for the `rand` 0.8 API surface this workspace uses.
//!
//! The build environment has no network access, so the workspace replaces
//! the crates.io `rand` with this local implementation (see the
//! `[workspace.dependencies]` paths in the root manifest). It provides the
//! exact subset the repo calls — [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`seq::SliceRandom::choose`]/[`seq::SliceRandom::shuffle`],
//! [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`] — with the same
//! trait shapes, so swapping the real crate back in is a one-line manifest
//! change.
//!
//! Streams are deterministic but **not** bit-identical to upstream `rand`;
//! everything in this repo that depends on randomness is seeded and only
//! asserts statistical or structural properties, never exact draws.

use std::ops::{Range, RangeInclusive};

/// Core random source: a 64-bit generator everything else derives from.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, including the `seed_from_u64` convenience that
/// expands a 64-bit state into a full seed with SplitMix64.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands `state` into a full seed via SplitMix64 and constructs the
    /// generator from it.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let z = splitmix64(&mut s);
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// One SplitMix64 step (Steele, Lea & Flood): advances `state` and returns
/// the mixed output.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive, integer or
    /// float).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)` using the top 53 bits.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can produce a uniform sample; implemented for `Range` and
/// `RangeInclusive` of the primitive integers and floats the repo uses.
pub trait SampleRange<T> {
    /// Draws one uniform sample. Panics on an empty range, matching `rand`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Bias-free-enough uniform integer in `[0, span)` via 128-bit fixed-point
/// multiply (bias < span / 2^64, irrelevant at this repo's span sizes).
#[inline]
fn uniform_below(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + (self.end - self.start) * u
            }
        }
    )*};
}

impl_float_ranges!(f32, f64);

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// (Blackman & Vigna). Not stream-compatible with upstream `StdRng`
    /// (ChaCha12), but the repo never relies on exact upstream draws.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut word = [0u8; 8];
                word.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(word);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                let mut sm = 0xDEAD_BEEF_CAFE_F00Du64;
                for w in &mut s {
                    *w = splitmix64(&mut sm);
                }
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    //! Slice sampling helpers.

    use super::{Rng, SampleRange};

    /// Random selection from slices.
    pub trait SliceRandom {
        /// The slice's element type.
        type Item;

        /// A uniformly random element, or `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                // `sample_single` accepts unsized generators directly,
                // unlike `gen_range` (whose `Self: Sized` bound mirrors
                // upstream `rand`).
                self.get((0..self.len()).sample_single(rng))
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, (0..=i).sample_single(rng));
            }
        }
    }
}

pub mod prelude {
    //! Common imports, mirroring `rand::prelude`.
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1u32..=4);
            assert!((1..=4).contains(&y));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let n = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
        let mut rng = StdRng::seed_from_u64(4);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn choose_and_shuffle_behave() {
        let mut rng = StdRng::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1, 2, 3, 4, 5];
        for _ in 0..50 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
        let mut v: Vec<u32> = (0..100).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle must be a permutation");
        assert_ne!(v, orig, "a 100-element shuffle virtually never fixes all");
    }

    #[test]
    fn rng_works_through_mut_references() {
        fn takes_rng<R: Rng>(rng: &mut R) -> u64 {
            rng.gen_range(0u64..100)
        }
        let mut rng = StdRng::seed_from_u64(6);
        let r = &mut rng;
        assert!(takes_rng(r) < 100);
    }
}
