//! Offline stand-in for the `proptest` API subset this workspace's
//! property tests use.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched; this crate re-implements exactly what the test suites call:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`],
//! * [`Strategy`] with `prop_map`, implemented for integer and float
//!   ranges, tuples, and regex-like string patterns (`"[a-z]{1,15}"`,
//!   `"\\PC{0,200}"`),
//! * [`collection::vec`] and [`array::uniform2`]/[`array::uniform3`].
//!
//! Differences from real proptest: no shrinking (failures report the
//! assertion, and the run is fully deterministic per test name, so failures
//! reproduce exactly), and the default case count is 128 instead of 256.

use std::ops::Range;

pub mod test_runner {
    //! The minimal runner machinery the [`crate::proptest!`] macro expands
    //! against.

    /// Why a generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; generate a fresh case.
        Reject,
        /// A `prop_assert!` failed; abort the test.
        Fail(String),
    }

    /// Runner configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of accepted cases each property must pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` accepted cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 128 }
        }
    }

    /// Deterministic per-test generator (xoshiro256++ seeded from an FNV-1a
    /// hash of the test's module path and name).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// A generator whose stream is a pure function of `test_name`, so
        /// every run of a test sees the same cases.
        pub fn for_test(test_name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut s = [0u64; 4];
            for w in &mut s {
                // SplitMix64 expansion of the hash.
                h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = h;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *w = z ^ (z >> 31);
            }
            TestRng { s }
        }

        /// The next 64 random bits (xoshiro256++).
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform draw in `[0, span)`.
        pub fn below(&mut self, span: u64) -> u64 {
            ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// A generator of test-case values.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// [`Strategy::prop_map`]'s adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// One alternative within a string-pattern character class.
#[derive(Debug, Clone, Copy)]
enum CharClass {
    /// `[lo-hi]` inclusive range.
    Span(char, char),
    /// A single literal character.
    One(char),
}

/// One `class{lo,hi}` element of a string pattern.
#[derive(Debug, Clone)]
struct PatternPiece {
    choices: Vec<CharClass>,
    reps: (usize, usize),
}

/// Parses the regex subset the workspace's tests use: concatenations of
/// `\PC` (any printable, non-control character) or `[...]` classes, each
/// with an optional `{lo,hi}` / `{n}` repetition (default exactly one).
fn parse_pattern(pattern: &str) -> Vec<PatternPiece> {
    // A palette of printable characters for `\PC`: mostly ASCII, with some
    // multi-byte characters to exercise UTF-8 handling.
    const PRINTABLE_EXTRAS: [char; 8] = ['é', 'ß', 'λ', '中', '→', '𝔘', '🙂', '\u{00A0}'];
    let mut pieces = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let choices = match c {
            '\\' => match chars.next() {
                Some('P') => {
                    assert_eq!(chars.next(), Some('C'), "unsupported escape in {pattern:?}");
                    let mut v = vec![CharClass::Span(' ', '~')];
                    v.extend(PRINTABLE_EXTRAS.map(CharClass::One));
                    v
                }
                other => vec![CharClass::One(other.unwrap_or('\\'))],
            },
            '[' => {
                let mut v = Vec::new();
                loop {
                    let lo = chars.next().expect("unterminated class");
                    if lo == ']' {
                        break;
                    }
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        let hi = chars.next().expect("unterminated range");
                        v.push(CharClass::Span(lo, hi));
                    } else {
                        v.push(CharClass::One(lo));
                    }
                }
                v
            }
            lit => vec![CharClass::One(lit)],
        };
        let reps = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for r in chars.by_ref() {
                if r == '}' {
                    break;
                }
                spec.push(r);
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repetition"),
                    hi.trim().parse().expect("bad repetition"),
                ),
                None => {
                    let n = spec.trim().parse().expect("bad repetition");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        pieces.push(PatternPiece { choices, reps });
    }
    pieces
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse_pattern(self) {
            let (lo, hi) = piece.reps;
            let count = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..count {
                let class = piece.choices[rng.below(piece.choices.len() as u64) as usize];
                out.push(match class {
                    CharClass::One(c) => c,
                    CharClass::Span(a, b) => char::from_u32(
                        a as u32 + rng.below(u64::from(b as u32 - a as u32 + 1)) as u32,
                    )
                    .unwrap_or(a),
                });
            }
        }
        out
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy for `Vec`s of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            assert!(span > 0, "empty vec size range");
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use super::{Strategy, TestRng};

    /// See [`uniform2`]/[`uniform3`].
    #[derive(Debug, Clone)]
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];

        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }

    /// A strategy for `[T; 2]` from one element strategy.
    pub fn uniform2<S: Strategy>(element: S) -> UniformArray<S, 2> {
        UniformArray { element }
    }

    /// A strategy for `[T; 3]` from one element strategy.
    pub fn uniform3<S: Strategy>(element: S) -> UniformArray<S, 3> {
        UniformArray { element }
    }
}

pub mod prelude {
    //! Common imports, mirroring `proptest::prelude`.
    pub use crate::test_runner::ProptestConfig;
    pub use crate::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs through the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < cfg.cases {
                attempts += 1;
                assert!(
                    attempts <= cfg.cases.saturating_mul(20).saturating_add(100),
                    "proptest: too many rejected cases ({accepted} accepted of {} wanted)",
                    cfg.cases
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)*
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest `{}` failed after {accepted} cases: {msg}", stringify!($name));
                    }
                }
            }
        }
    )*};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Rejects the current case (generates a replacement) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, f in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_strategy_respects_size(v in crate::collection::vec(0u32..5, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn string_patterns_match_their_class(s in "[a-e]{1,3}") {
            prop_assert!((1..=3).contains(&s.chars().count()));
            prop_assert!(s.chars().all(|c| ('a'..='e').contains(&c)));
        }

        #[test]
        fn printable_pattern_emits_no_controls(s in "\\PC{0,50}") {
            prop_assert!(s.chars().count() <= 50);
            prop_assert!(s.chars().all(|c| !c.is_control()));
        }

        #[test]
        fn tuples_and_arrays_compose(
            (a, b) in (0u32..10, 0u32..10),
            arr in crate::array::uniform3(0u32..4),
        ) {
            prop_assert!(a < 10 && b < 10);
            prop_assert!(arr.iter().all(|&x| x < 4));
        }

        #[test]
        fn prop_map_applies(n in (1usize..5).prop_map(|x| x * 100)) {
            prop_assert!(n % 100 == 0 && (100..500).contains(&n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    // No `#[test]` attribute inside: a test attribute on a fn nested in
    // another fn is unnameable by the harness and rustc warns.
    proptest! {
        fn always_fails(x in 0u32..10) {
            prop_assert!(x > 100, "x was {x}");
        }
    }

    #[test]
    fn failing_property_panics_with_message() {
        let result = std::panic::catch_unwind(always_fails);
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("always_fails"), "{msg}");
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
