//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 keystream
//! generator (Bernstein's ChaCha with 8 rounds, the djb 64/64 counter/nonce
//! layout) implementing this workspace's local `rand` traits.
//!
//! The repo uses `ChaCha8Rng::seed_from_u64` for every seeded clustering and
//! corpus-generation path; only determinism and statistical quality matter,
//! not stream equality with the crates.io build (which seeds via the same
//! SplitMix64 expansion but may differ in word order details).

pub mod rand_core {
    //! Re-export of the core traits, mirroring `rand_chacha::rand_core`.
    pub use rand::{RngCore, SeedableRng};
}

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// A ChaCha8 random number generator: 32-byte key, 64-bit block counter,
/// 16-word output blocks.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// The 8 key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14); nonce words are zero.
    counter: u64,
    /// Current output block.
    block: [u32; 16],
    /// Next unread word within `block`; 16 = exhausted.
    cursor: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// "expand 32-byte k" — the ChaCha constant words.
    const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&Self::SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // state[14..16]: nonce, fixed at zero.
        let input = state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, (s, i)) in self.block.iter_mut().zip(state.iter().zip(&input)) {
            *out = s.wrapping_add(*i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.cursor = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.cursor == 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_word());
        let hi = u64::from(self.next_word());
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks(4)) {
            let mut word = [0u8; 4];
            word.copy_from_slice(chunk);
            *k = u32::from_le_bytes(word);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            cursor: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(ChaCha8Rng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn chacha8_block_of_zero_key_matches_reference() {
        // ChaCha8 keystream block 0 for the all-zero 256-bit key and zero
        // nonce (ECRYPT test vector): 3e00ef2f895f40d67f5bb8e81f09a5a1.
        let mut rng = ChaCha8Rng::from_seed([0; 32]);
        let mut out = [0u8; 16];
        rng.fill_bytes(&mut out);
        let expected = [
            0x3e, 0x00, 0xef, 0x2f, 0x89, 0x5f, 0x40, 0xd6, //
            0x7f, 0x5b, 0xb8, 0xe8, 0x1f, 0x09, 0xa5, 0xa1,
        ];
        assert_eq!(out, expected);
    }

    #[test]
    fn chacha20_variant_matches_reference() {
        // Cross-check of the shared block function at 20 rounds against the
        // canonical ChaCha20 zero-key/zero-nonce keystream.
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&ChaCha8Rng::SIGMA);
        let input = state;
        for _ in 0..10 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        let mut bytes = Vec::new();
        for (s, i) in state.iter().zip(&input) {
            bytes.extend_from_slice(&s.wrapping_add(*i).to_le_bytes());
        }
        let expected = [
            0x76, 0xb8, 0xe0, 0xad, 0xa0, 0xf1, 0x3d, 0x90, //
            0x40, 0x5d, 0x6a, 0xe5, 0x53, 0x86, 0xbd, 0x28,
        ];
        assert_eq!(&bytes[..16], &expected);
    }

    #[test]
    fn usable_through_rand_traits() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut seen = [false; 8];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let p = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&p), "{p}");
    }
}
