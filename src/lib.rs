//! Workspace façade for the intention-based related-forum-post system.
//!
//! This crate re-exports the public APIs of every workspace member so the
//! runnable examples (`examples/`) and the cross-crate integration tests
//! (`tests/`) have a single import root. Library users should depend on
//! the individual crates — [`intentmatch`] is the main entry point.

pub use forum_cluster;
pub use forum_corpus;
pub use forum_index;
pub use forum_nlp;
pub use forum_segment;
pub use forum_text;
pub use forum_topics;
pub use intentmatch;
