/root/repo/target/debug/examples/related_hotels-c8da26aa419e5c2c.d: examples/related_hotels.rs

/root/repo/target/debug/examples/related_hotels-c8da26aa419e5c2c: examples/related_hotels.rs

examples/related_hotels.rs:
