/root/repo/target/debug/examples/method_comparison-92d7bcf10ca40a0a.d: examples/method_comparison.rs

/root/repo/target/debug/examples/method_comparison-92d7bcf10ca40a0a: examples/method_comparison.rs

examples/method_comparison.rs:
