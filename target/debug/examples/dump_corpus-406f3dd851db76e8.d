/root/repo/target/debug/examples/dump_corpus-406f3dd851db76e8.d: examples/dump_corpus.rs

/root/repo/target/debug/examples/dump_corpus-406f3dd851db76e8: examples/dump_corpus.rs

examples/dump_corpus.rs:
