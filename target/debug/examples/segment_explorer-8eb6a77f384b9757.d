/root/repo/target/debug/examples/segment_explorer-8eb6a77f384b9757.d: examples/segment_explorer.rs

/root/repo/target/debug/examples/segment_explorer-8eb6a77f384b9757: examples/segment_explorer.rs

examples/segment_explorer.rs:
