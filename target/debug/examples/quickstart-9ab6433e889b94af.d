/root/repo/target/debug/examples/quickstart-9ab6433e889b94af.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-9ab6433e889b94af: examples/quickstart.rs

examples/quickstart.rs:
