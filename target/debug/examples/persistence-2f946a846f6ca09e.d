/root/repo/target/debug/examples/persistence-2f946a846f6ca09e.d: examples/persistence.rs

/root/repo/target/debug/examples/persistence-2f946a846f6ca09e: examples/persistence.rs

examples/persistence.rs:
