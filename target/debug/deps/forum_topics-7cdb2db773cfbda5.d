/root/repo/target/debug/deps/forum_topics-7cdb2db773cfbda5.d: crates/forum-topics/src/lib.rs crates/forum-topics/src/lda.rs crates/forum-topics/src/retrieval.rs

/root/repo/target/debug/deps/libforum_topics-7cdb2db773cfbda5.rlib: crates/forum-topics/src/lib.rs crates/forum-topics/src/lda.rs crates/forum-topics/src/retrieval.rs

/root/repo/target/debug/deps/libforum_topics-7cdb2db773cfbda5.rmeta: crates/forum-topics/src/lib.rs crates/forum-topics/src/lda.rs crates/forum-topics/src/retrieval.rs

crates/forum-topics/src/lib.rs:
crates/forum-topics/src/lda.rs:
crates/forum-topics/src/retrieval.rs:
