/root/repo/target/debug/deps/forum_segment-51dc77ab87b8cb80.d: crates/forum-segment/src/lib.rs crates/forum-segment/src/agreement.rs crates/forum-segment/src/cmdoc.rs crates/forum-segment/src/diversity.rs crates/forum-segment/src/metrics.rs crates/forum-segment/src/scoring.rs crates/forum-segment/src/strategies.rs crates/forum-segment/src/texttiling.rs

/root/repo/target/debug/deps/libforum_segment-51dc77ab87b8cb80.rlib: crates/forum-segment/src/lib.rs crates/forum-segment/src/agreement.rs crates/forum-segment/src/cmdoc.rs crates/forum-segment/src/diversity.rs crates/forum-segment/src/metrics.rs crates/forum-segment/src/scoring.rs crates/forum-segment/src/strategies.rs crates/forum-segment/src/texttiling.rs

/root/repo/target/debug/deps/libforum_segment-51dc77ab87b8cb80.rmeta: crates/forum-segment/src/lib.rs crates/forum-segment/src/agreement.rs crates/forum-segment/src/cmdoc.rs crates/forum-segment/src/diversity.rs crates/forum-segment/src/metrics.rs crates/forum-segment/src/scoring.rs crates/forum-segment/src/strategies.rs crates/forum-segment/src/texttiling.rs

crates/forum-segment/src/lib.rs:
crates/forum-segment/src/agreement.rs:
crates/forum-segment/src/cmdoc.rs:
crates/forum-segment/src/diversity.rs:
crates/forum-segment/src/metrics.rs:
crates/forum-segment/src/scoring.rs:
crates/forum-segment/src/strategies.rs:
crates/forum-segment/src/texttiling.rs:
