/root/repo/target/debug/deps/forum_cluster-921fe25518c9f767.d: crates/forum-cluster/src/lib.rs crates/forum-cluster/src/dbscan.rs crates/forum-cluster/src/feature.rs crates/forum-cluster/src/kmeans.rs crates/forum-cluster/src/silhouette.rs

/root/repo/target/debug/deps/libforum_cluster-921fe25518c9f767.rlib: crates/forum-cluster/src/lib.rs crates/forum-cluster/src/dbscan.rs crates/forum-cluster/src/feature.rs crates/forum-cluster/src/kmeans.rs crates/forum-cluster/src/silhouette.rs

/root/repo/target/debug/deps/libforum_cluster-921fe25518c9f767.rmeta: crates/forum-cluster/src/lib.rs crates/forum-cluster/src/dbscan.rs crates/forum-cluster/src/feature.rs crates/forum-cluster/src/kmeans.rs crates/forum-cluster/src/silhouette.rs

crates/forum-cluster/src/lib.rs:
crates/forum-cluster/src/dbscan.rs:
crates/forum-cluster/src/feature.rs:
crates/forum-cluster/src/kmeans.rs:
crates/forum-cluster/src/silhouette.rs:
