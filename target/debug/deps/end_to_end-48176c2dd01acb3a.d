/root/repo/target/debug/deps/end_to_end-48176c2dd01acb3a.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-48176c2dd01acb3a: tests/end_to_end.rs

tests/end_to_end.rs:
