/root/repo/target/debug/deps/forum_related_posts-ef18dd9b6fb600d6.d: src/lib.rs

/root/repo/target/debug/deps/libforum_related_posts-ef18dd9b6fb600d6.rlib: src/lib.rs

/root/repo/target/debug/deps/libforum_related_posts-ef18dd9b6fb600d6.rmeta: src/lib.rs

src/lib.rs:
