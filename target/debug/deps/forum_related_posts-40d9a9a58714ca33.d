/root/repo/target/debug/deps/forum_related_posts-40d9a9a58714ca33.d: src/lib.rs

/root/repo/target/debug/deps/forum_related_posts-40d9a9a58714ca33: src/lib.rs

src/lib.rs:
