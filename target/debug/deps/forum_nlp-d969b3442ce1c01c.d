/root/repo/target/debug/deps/forum_nlp-d969b3442ce1c01c.d: crates/forum-nlp/src/lib.rs crates/forum-nlp/src/cm.rs crates/forum-nlp/src/lexicon.rs crates/forum-nlp/src/tagger.rs

/root/repo/target/debug/deps/libforum_nlp-d969b3442ce1c01c.rlib: crates/forum-nlp/src/lib.rs crates/forum-nlp/src/cm.rs crates/forum-nlp/src/lexicon.rs crates/forum-nlp/src/tagger.rs

/root/repo/target/debug/deps/libforum_nlp-d969b3442ce1c01c.rmeta: crates/forum-nlp/src/lib.rs crates/forum-nlp/src/cm.rs crates/forum-nlp/src/lexicon.rs crates/forum-nlp/src/tagger.rs

crates/forum-nlp/src/lib.rs:
crates/forum-nlp/src/cm.rs:
crates/forum-nlp/src/lexicon.rs:
crates/forum-nlp/src/tagger.rs:
