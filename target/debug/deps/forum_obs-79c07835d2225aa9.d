/root/repo/target/debug/deps/forum_obs-79c07835d2225aa9.d: crates/forum-obs/src/lib.rs crates/forum-obs/src/export.rs crates/forum-obs/src/json.rs crates/forum-obs/src/registry.rs crates/forum-obs/src/span.rs

/root/repo/target/debug/deps/libforum_obs-79c07835d2225aa9.rlib: crates/forum-obs/src/lib.rs crates/forum-obs/src/export.rs crates/forum-obs/src/json.rs crates/forum-obs/src/registry.rs crates/forum-obs/src/span.rs

/root/repo/target/debug/deps/libforum_obs-79c07835d2225aa9.rmeta: crates/forum-obs/src/lib.rs crates/forum-obs/src/export.rs crates/forum-obs/src/json.rs crates/forum-obs/src/registry.rs crates/forum-obs/src/span.rs

crates/forum-obs/src/lib.rs:
crates/forum-obs/src/export.rs:
crates/forum-obs/src/json.rs:
crates/forum-obs/src/registry.rs:
crates/forum-obs/src/span.rs:
