/root/repo/target/debug/deps/forum_index-8ed94c9d1ba437fb.d: crates/forum-index/src/lib.rs crates/forum-index/src/codec.rs crates/forum-index/src/index.rs crates/forum-index/src/weighting.rs

/root/repo/target/debug/deps/libforum_index-8ed94c9d1ba437fb.rlib: crates/forum-index/src/lib.rs crates/forum-index/src/codec.rs crates/forum-index/src/index.rs crates/forum-index/src/weighting.rs

/root/repo/target/debug/deps/libforum_index-8ed94c9d1ba437fb.rmeta: crates/forum-index/src/lib.rs crates/forum-index/src/codec.rs crates/forum-index/src/index.rs crates/forum-index/src/weighting.rs

crates/forum-index/src/lib.rs:
crates/forum-index/src/codec.rs:
crates/forum-index/src/index.rs:
crates/forum-index/src/weighting.rs:
