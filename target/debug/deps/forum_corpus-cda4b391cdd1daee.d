/root/repo/target/debug/deps/forum_corpus-cda4b391cdd1daee.d: crates/forum-corpus/src/lib.rs crates/forum-corpus/src/annotator.rs crates/forum-corpus/src/domains/mod.rs crates/forum-corpus/src/domains/programming.rs crates/forum-corpus/src/domains/tech.rs crates/forum-corpus/src/domains/travel.rs crates/forum-corpus/src/generate.rs crates/forum-corpus/src/oracle.rs crates/forum-corpus/src/spec.rs crates/forum-corpus/src/stats.rs

/root/repo/target/debug/deps/libforum_corpus-cda4b391cdd1daee.rlib: crates/forum-corpus/src/lib.rs crates/forum-corpus/src/annotator.rs crates/forum-corpus/src/domains/mod.rs crates/forum-corpus/src/domains/programming.rs crates/forum-corpus/src/domains/tech.rs crates/forum-corpus/src/domains/travel.rs crates/forum-corpus/src/generate.rs crates/forum-corpus/src/oracle.rs crates/forum-corpus/src/spec.rs crates/forum-corpus/src/stats.rs

/root/repo/target/debug/deps/libforum_corpus-cda4b391cdd1daee.rmeta: crates/forum-corpus/src/lib.rs crates/forum-corpus/src/annotator.rs crates/forum-corpus/src/domains/mod.rs crates/forum-corpus/src/domains/programming.rs crates/forum-corpus/src/domains/tech.rs crates/forum-corpus/src/domains/travel.rs crates/forum-corpus/src/generate.rs crates/forum-corpus/src/oracle.rs crates/forum-corpus/src/spec.rs crates/forum-corpus/src/stats.rs

crates/forum-corpus/src/lib.rs:
crates/forum-corpus/src/annotator.rs:
crates/forum-corpus/src/domains/mod.rs:
crates/forum-corpus/src/domains/programming.rs:
crates/forum-corpus/src/domains/tech.rs:
crates/forum-corpus/src/domains/travel.rs:
crates/forum-corpus/src/generate.rs:
crates/forum-corpus/src/oracle.rs:
crates/forum-corpus/src/spec.rs:
crates/forum-corpus/src/stats.rs:
