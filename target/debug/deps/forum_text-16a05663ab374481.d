/root/repo/target/debug/deps/forum_text-16a05663ab374481.d: crates/forum-text/src/lib.rs crates/forum-text/src/clean.rs crates/forum-text/src/document.rs crates/forum-text/src/segmentation.rs crates/forum-text/src/sentence.rs crates/forum-text/src/span.rs crates/forum-text/src/stem.rs crates/forum-text/src/stopwords.rs crates/forum-text/src/tokenize.rs crates/forum-text/src/vocab.rs

/root/repo/target/debug/deps/libforum_text-16a05663ab374481.rlib: crates/forum-text/src/lib.rs crates/forum-text/src/clean.rs crates/forum-text/src/document.rs crates/forum-text/src/segmentation.rs crates/forum-text/src/sentence.rs crates/forum-text/src/span.rs crates/forum-text/src/stem.rs crates/forum-text/src/stopwords.rs crates/forum-text/src/tokenize.rs crates/forum-text/src/vocab.rs

/root/repo/target/debug/deps/libforum_text-16a05663ab374481.rmeta: crates/forum-text/src/lib.rs crates/forum-text/src/clean.rs crates/forum-text/src/document.rs crates/forum-text/src/segmentation.rs crates/forum-text/src/sentence.rs crates/forum-text/src/span.rs crates/forum-text/src/stem.rs crates/forum-text/src/stopwords.rs crates/forum-text/src/tokenize.rs crates/forum-text/src/vocab.rs

crates/forum-text/src/lib.rs:
crates/forum-text/src/clean.rs:
crates/forum-text/src/document.rs:
crates/forum-text/src/segmentation.rs:
crates/forum-text/src/sentence.rs:
crates/forum-text/src/span.rs:
crates/forum-text/src/stem.rs:
crates/forum-text/src/stopwords.rs:
crates/forum-text/src/tokenize.rs:
crates/forum-text/src/vocab.rs:
