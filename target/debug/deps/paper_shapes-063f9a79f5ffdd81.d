/root/repo/target/debug/deps/paper_shapes-063f9a79f5ffdd81.d: tests/paper_shapes.rs

/root/repo/target/debug/deps/paper_shapes-063f9a79f5ffdd81: tests/paper_shapes.rs

tests/paper_shapes.rs:
