/root/repo/target/debug/deps/intentmatch-d0de423d850d25df.d: crates/core/src/lib.rs crates/core/src/collection.rs crates/core/src/eval.rs crates/core/src/explain.rs crates/core/src/fagin.rs crates/core/src/methods.rs crates/core/src/par.rs crates/core/src/pipeline.rs crates/core/src/store.rs

/root/repo/target/debug/deps/libintentmatch-d0de423d850d25df.rlib: crates/core/src/lib.rs crates/core/src/collection.rs crates/core/src/eval.rs crates/core/src/explain.rs crates/core/src/fagin.rs crates/core/src/methods.rs crates/core/src/par.rs crates/core/src/pipeline.rs crates/core/src/store.rs

/root/repo/target/debug/deps/libintentmatch-d0de423d850d25df.rmeta: crates/core/src/lib.rs crates/core/src/collection.rs crates/core/src/eval.rs crates/core/src/explain.rs crates/core/src/fagin.rs crates/core/src/methods.rs crates/core/src/par.rs crates/core/src/pipeline.rs crates/core/src/store.rs

crates/core/src/lib.rs:
crates/core/src/collection.rs:
crates/core/src/eval.rs:
crates/core/src/explain.rs:
crates/core/src/fagin.rs:
crates/core/src/methods.rs:
crates/core/src/par.rs:
crates/core/src/pipeline.rs:
crates/core/src/store.rs:
