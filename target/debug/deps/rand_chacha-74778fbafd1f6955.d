/root/repo/target/debug/deps/rand_chacha-74778fbafd1f6955.d: compat/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-74778fbafd1f6955.rlib: compat/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-74778fbafd1f6955.rmeta: compat/rand_chacha/src/lib.rs

compat/rand_chacha/src/lib.rs:
