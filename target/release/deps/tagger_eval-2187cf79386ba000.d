/root/repo/target/release/deps/tagger_eval-2187cf79386ba000.d: crates/forum-nlp/tests/tagger_eval.rs Cargo.toml

/root/repo/target/release/deps/libtagger_eval-2187cf79386ba000.rmeta: crates/forum-nlp/tests/tagger_eval.rs Cargo.toml

crates/forum-nlp/tests/tagger_eval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
