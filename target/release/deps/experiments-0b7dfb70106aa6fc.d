/root/repo/target/release/deps/experiments-0b7dfb70106aa6fc.d: crates/bench/src/main.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/cm_vs_terms.rs crates/bench/src/experiments/datasets.rs crates/bench/src/experiments/fig11.rs crates/bench/src/experiments/fig3.rs crates/bench/src/experiments/fig7.rs crates/bench/src/experiments/fig8.rs crates/bench/src/experiments/fig9.rs crates/bench/src/experiments/table2.rs crates/bench/src/experiments/table3.rs crates/bench/src/experiments/table4.rs crates/bench/src/experiments/table6.rs crates/bench/src/util.rs Cargo.toml

/root/repo/target/release/deps/libexperiments-0b7dfb70106aa6fc.rmeta: crates/bench/src/main.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/cm_vs_terms.rs crates/bench/src/experiments/datasets.rs crates/bench/src/experiments/fig11.rs crates/bench/src/experiments/fig3.rs crates/bench/src/experiments/fig7.rs crates/bench/src/experiments/fig8.rs crates/bench/src/experiments/fig9.rs crates/bench/src/experiments/table2.rs crates/bench/src/experiments/table3.rs crates/bench/src/experiments/table4.rs crates/bench/src/experiments/table6.rs crates/bench/src/util.rs Cargo.toml

crates/bench/src/main.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/ablations.rs:
crates/bench/src/experiments/cm_vs_terms.rs:
crates/bench/src/experiments/datasets.rs:
crates/bench/src/experiments/fig11.rs:
crates/bench/src/experiments/fig3.rs:
crates/bench/src/experiments/fig7.rs:
crates/bench/src/experiments/fig8.rs:
crates/bench/src/experiments/fig9.rs:
crates/bench/src/experiments/table2.rs:
crates/bench/src/experiments/table3.rs:
crates/bench/src/experiments/table4.rs:
crates/bench/src/experiments/table6.rs:
crates/bench/src/util.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
