/root/repo/target/release/deps/forum_nlp-e4be16b3b3cf786f.d: crates/forum-nlp/src/lib.rs crates/forum-nlp/src/cm.rs crates/forum-nlp/src/lexicon.rs crates/forum-nlp/src/tagger.rs Cargo.toml

/root/repo/target/release/deps/libforum_nlp-e4be16b3b3cf786f.rmeta: crates/forum-nlp/src/lib.rs crates/forum-nlp/src/cm.rs crates/forum-nlp/src/lexicon.rs crates/forum-nlp/src/tagger.rs Cargo.toml

crates/forum-nlp/src/lib.rs:
crates/forum-nlp/src/cm.rs:
crates/forum-nlp/src/lexicon.rs:
crates/forum-nlp/src/tagger.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
