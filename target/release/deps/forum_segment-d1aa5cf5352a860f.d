/root/repo/target/release/deps/forum_segment-d1aa5cf5352a860f.d: crates/forum-segment/src/lib.rs crates/forum-segment/src/agreement.rs crates/forum-segment/src/cmdoc.rs crates/forum-segment/src/diversity.rs crates/forum-segment/src/metrics.rs crates/forum-segment/src/scoring.rs crates/forum-segment/src/strategies.rs crates/forum-segment/src/texttiling.rs

/root/repo/target/release/deps/libforum_segment-d1aa5cf5352a860f.rlib: crates/forum-segment/src/lib.rs crates/forum-segment/src/agreement.rs crates/forum-segment/src/cmdoc.rs crates/forum-segment/src/diversity.rs crates/forum-segment/src/metrics.rs crates/forum-segment/src/scoring.rs crates/forum-segment/src/strategies.rs crates/forum-segment/src/texttiling.rs

/root/repo/target/release/deps/libforum_segment-d1aa5cf5352a860f.rmeta: crates/forum-segment/src/lib.rs crates/forum-segment/src/agreement.rs crates/forum-segment/src/cmdoc.rs crates/forum-segment/src/diversity.rs crates/forum-segment/src/metrics.rs crates/forum-segment/src/scoring.rs crates/forum-segment/src/strategies.rs crates/forum-segment/src/texttiling.rs

crates/forum-segment/src/lib.rs:
crates/forum-segment/src/agreement.rs:
crates/forum-segment/src/cmdoc.rs:
crates/forum-segment/src/diversity.rs:
crates/forum-segment/src/metrics.rs:
crates/forum-segment/src/scoring.rs:
crates/forum-segment/src/strategies.rs:
crates/forum-segment/src/texttiling.rs:
