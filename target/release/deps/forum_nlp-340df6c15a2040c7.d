/root/repo/target/release/deps/forum_nlp-340df6c15a2040c7.d: crates/forum-nlp/src/lib.rs crates/forum-nlp/src/cm.rs crates/forum-nlp/src/lexicon.rs crates/forum-nlp/src/tagger.rs

/root/repo/target/release/deps/libforum_nlp-340df6c15a2040c7.rlib: crates/forum-nlp/src/lib.rs crates/forum-nlp/src/cm.rs crates/forum-nlp/src/lexicon.rs crates/forum-nlp/src/tagger.rs

/root/repo/target/release/deps/libforum_nlp-340df6c15a2040c7.rmeta: crates/forum-nlp/src/lib.rs crates/forum-nlp/src/cm.rs crates/forum-nlp/src/lexicon.rs crates/forum-nlp/src/tagger.rs

crates/forum-nlp/src/lib.rs:
crates/forum-nlp/src/cm.rs:
crates/forum-nlp/src/lexicon.rs:
crates/forum-nlp/src/tagger.rs:
