/root/repo/target/release/deps/intentmatch-c9181cd718e18952.d: crates/core/src/bin/intentmatch.rs

/root/repo/target/release/deps/intentmatch-c9181cd718e18952: crates/core/src/bin/intentmatch.rs

crates/core/src/bin/intentmatch.rs:
