/root/repo/target/release/deps/rand-0211fd6d9eea3fb2.d: compat/rand/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand-0211fd6d9eea3fb2.rmeta: compat/rand/src/lib.rs Cargo.toml

compat/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
