/root/repo/target/release/deps/tagger_eval-d98381868996ff4b.d: crates/forum-nlp/tests/tagger_eval.rs

/root/repo/target/release/deps/tagger_eval-d98381868996ff4b: crates/forum-nlp/tests/tagger_eval.rs

crates/forum-nlp/tests/tagger_eval.rs:
