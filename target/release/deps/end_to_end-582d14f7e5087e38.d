/root/repo/target/release/deps/end_to_end-582d14f7e5087e38.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-582d14f7e5087e38: tests/end_to_end.rs

tests/end_to_end.rs:
