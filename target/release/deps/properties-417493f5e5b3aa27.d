/root/repo/target/release/deps/properties-417493f5e5b3aa27.d: crates/forum-segment/tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-417493f5e5b3aa27.rmeta: crates/forum-segment/tests/properties.rs Cargo.toml

crates/forum-segment/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
