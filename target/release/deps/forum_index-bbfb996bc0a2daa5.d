/root/repo/target/release/deps/forum_index-bbfb996bc0a2daa5.d: crates/forum-index/src/lib.rs crates/forum-index/src/codec.rs crates/forum-index/src/index.rs crates/forum-index/src/weighting.rs

/root/repo/target/release/deps/libforum_index-bbfb996bc0a2daa5.rlib: crates/forum-index/src/lib.rs crates/forum-index/src/codec.rs crates/forum-index/src/index.rs crates/forum-index/src/weighting.rs

/root/repo/target/release/deps/libforum_index-bbfb996bc0a2daa5.rmeta: crates/forum-index/src/lib.rs crates/forum-index/src/codec.rs crates/forum-index/src/index.rs crates/forum-index/src/weighting.rs

crates/forum-index/src/lib.rs:
crates/forum-index/src/codec.rs:
crates/forum-index/src/index.rs:
crates/forum-index/src/weighting.rs:
