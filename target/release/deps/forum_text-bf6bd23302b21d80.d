/root/repo/target/release/deps/forum_text-bf6bd23302b21d80.d: crates/forum-text/src/lib.rs crates/forum-text/src/clean.rs crates/forum-text/src/document.rs crates/forum-text/src/segmentation.rs crates/forum-text/src/sentence.rs crates/forum-text/src/span.rs crates/forum-text/src/stem.rs crates/forum-text/src/stopwords.rs crates/forum-text/src/tokenize.rs crates/forum-text/src/vocab.rs Cargo.toml

/root/repo/target/release/deps/libforum_text-bf6bd23302b21d80.rmeta: crates/forum-text/src/lib.rs crates/forum-text/src/clean.rs crates/forum-text/src/document.rs crates/forum-text/src/segmentation.rs crates/forum-text/src/sentence.rs crates/forum-text/src/span.rs crates/forum-text/src/stem.rs crates/forum-text/src/stopwords.rs crates/forum-text/src/tokenize.rs crates/forum-text/src/vocab.rs Cargo.toml

crates/forum-text/src/lib.rs:
crates/forum-text/src/clean.rs:
crates/forum-text/src/document.rs:
crates/forum-text/src/segmentation.rs:
crates/forum-text/src/sentence.rs:
crates/forum-text/src/span.rs:
crates/forum-text/src/stem.rs:
crates/forum-text/src/stopwords.rs:
crates/forum-text/src/tokenize.rs:
crates/forum-text/src/vocab.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
