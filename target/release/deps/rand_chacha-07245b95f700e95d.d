/root/repo/target/release/deps/rand_chacha-07245b95f700e95d.d: compat/rand_chacha/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand_chacha-07245b95f700e95d.rmeta: compat/rand_chacha/src/lib.rs Cargo.toml

compat/rand_chacha/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
