/root/repo/target/release/deps/rand-6fecf6979a677c38.d: compat/rand/src/lib.rs

/root/repo/target/release/deps/rand-6fecf6979a677c38: compat/rand/src/lib.rs

compat/rand/src/lib.rs:
