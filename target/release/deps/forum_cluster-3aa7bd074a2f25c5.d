/root/repo/target/release/deps/forum_cluster-3aa7bd074a2f25c5.d: crates/forum-cluster/src/lib.rs crates/forum-cluster/src/dbscan.rs crates/forum-cluster/src/feature.rs crates/forum-cluster/src/kmeans.rs crates/forum-cluster/src/silhouette.rs Cargo.toml

/root/repo/target/release/deps/libforum_cluster-3aa7bd074a2f25c5.rmeta: crates/forum-cluster/src/lib.rs crates/forum-cluster/src/dbscan.rs crates/forum-cluster/src/feature.rs crates/forum-cluster/src/kmeans.rs crates/forum-cluster/src/silhouette.rs Cargo.toml

crates/forum-cluster/src/lib.rs:
crates/forum-cluster/src/dbscan.rs:
crates/forum-cluster/src/feature.rs:
crates/forum-cluster/src/kmeans.rs:
crates/forum-cluster/src/silhouette.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
