/root/repo/target/release/deps/properties-206d8871c6c4c948.d: crates/forum-topics/tests/properties.rs

/root/repo/target/release/deps/properties-206d8871c6c4c948: crates/forum-topics/tests/properties.rs

crates/forum-topics/tests/properties.rs:
