/root/repo/target/release/deps/properties-4ce9fd9b5f59b6cc.d: crates/forum-text/tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-4ce9fd9b5f59b6cc.rmeta: crates/forum-text/tests/properties.rs Cargo.toml

crates/forum-text/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
