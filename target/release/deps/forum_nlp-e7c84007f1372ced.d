/root/repo/target/release/deps/forum_nlp-e7c84007f1372ced.d: crates/forum-nlp/src/lib.rs crates/forum-nlp/src/cm.rs crates/forum-nlp/src/lexicon.rs crates/forum-nlp/src/tagger.rs

/root/repo/target/release/deps/forum_nlp-e7c84007f1372ced: crates/forum-nlp/src/lib.rs crates/forum-nlp/src/cm.rs crates/forum-nlp/src/lexicon.rs crates/forum-nlp/src/tagger.rs

crates/forum-nlp/src/lib.rs:
crates/forum-nlp/src/cm.rs:
crates/forum-nlp/src/lexicon.rs:
crates/forum-nlp/src/tagger.rs:
