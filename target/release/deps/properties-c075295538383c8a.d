/root/repo/target/release/deps/properties-c075295538383c8a.d: crates/forum-text/tests/properties.rs

/root/repo/target/release/deps/properties-c075295538383c8a: crates/forum-text/tests/properties.rs

crates/forum-text/tests/properties.rs:
