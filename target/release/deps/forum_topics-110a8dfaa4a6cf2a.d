/root/repo/target/release/deps/forum_topics-110a8dfaa4a6cf2a.d: crates/forum-topics/src/lib.rs crates/forum-topics/src/lda.rs crates/forum-topics/src/retrieval.rs

/root/repo/target/release/deps/forum_topics-110a8dfaa4a6cf2a: crates/forum-topics/src/lib.rs crates/forum-topics/src/lda.rs crates/forum-topics/src/retrieval.rs

crates/forum-topics/src/lib.rs:
crates/forum-topics/src/lda.rs:
crates/forum-topics/src/retrieval.rs:
