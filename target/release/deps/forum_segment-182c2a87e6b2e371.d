/root/repo/target/release/deps/forum_segment-182c2a87e6b2e371.d: crates/forum-segment/src/lib.rs crates/forum-segment/src/agreement.rs crates/forum-segment/src/cmdoc.rs crates/forum-segment/src/diversity.rs crates/forum-segment/src/metrics.rs crates/forum-segment/src/scoring.rs crates/forum-segment/src/strategies.rs crates/forum-segment/src/texttiling.rs Cargo.toml

/root/repo/target/release/deps/libforum_segment-182c2a87e6b2e371.rmeta: crates/forum-segment/src/lib.rs crates/forum-segment/src/agreement.rs crates/forum-segment/src/cmdoc.rs crates/forum-segment/src/diversity.rs crates/forum-segment/src/metrics.rs crates/forum-segment/src/scoring.rs crates/forum-segment/src/strategies.rs crates/forum-segment/src/texttiling.rs Cargo.toml

crates/forum-segment/src/lib.rs:
crates/forum-segment/src/agreement.rs:
crates/forum-segment/src/cmdoc.rs:
crates/forum-segment/src/diversity.rs:
crates/forum-segment/src/metrics.rs:
crates/forum-segment/src/scoring.rs:
crates/forum-segment/src/strategies.rs:
crates/forum-segment/src/texttiling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
