/root/repo/target/release/deps/paper_shapes-8ef1a5dfe28cfb10.d: tests/paper_shapes.rs

/root/repo/target/release/deps/paper_shapes-8ef1a5dfe28cfb10: tests/paper_shapes.rs

tests/paper_shapes.rs:
