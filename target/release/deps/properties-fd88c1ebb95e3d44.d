/root/repo/target/release/deps/properties-fd88c1ebb95e3d44.d: crates/forum-corpus/tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-fd88c1ebb95e3d44.rmeta: crates/forum-corpus/tests/properties.rs Cargo.toml

crates/forum-corpus/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
