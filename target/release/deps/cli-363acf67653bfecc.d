/root/repo/target/release/deps/cli-363acf67653bfecc.d: crates/core/tests/cli.rs

/root/repo/target/release/deps/cli-363acf67653bfecc: crates/core/tests/cli.rs

crates/core/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_intentmatch=/root/repo/target/release/intentmatch
