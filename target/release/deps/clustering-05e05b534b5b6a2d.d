/root/repo/target/release/deps/clustering-05e05b534b5b6a2d.d: crates/bench/benches/clustering.rs Cargo.toml

/root/repo/target/release/deps/libclustering-05e05b534b5b6a2d.rmeta: crates/bench/benches/clustering.rs Cargo.toml

crates/bench/benches/clustering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
