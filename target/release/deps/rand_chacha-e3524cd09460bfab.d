/root/repo/target/release/deps/rand_chacha-e3524cd09460bfab.d: compat/rand_chacha/src/lib.rs

/root/repo/target/release/deps/rand_chacha-e3524cd09460bfab: compat/rand_chacha/src/lib.rs

compat/rand_chacha/src/lib.rs:
