/root/repo/target/release/deps/paper_shapes-fca29b0cfb3a433c.d: tests/paper_shapes.rs Cargo.toml

/root/repo/target/release/deps/libpaper_shapes-fca29b0cfb3a433c.rmeta: tests/paper_shapes.rs Cargo.toml

tests/paper_shapes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
