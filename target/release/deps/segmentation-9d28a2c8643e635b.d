/root/repo/target/release/deps/segmentation-9d28a2c8643e635b.d: crates/bench/benches/segmentation.rs Cargo.toml

/root/repo/target/release/deps/libsegmentation-9d28a2c8643e635b.rmeta: crates/bench/benches/segmentation.rs Cargo.toml

crates/bench/benches/segmentation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
