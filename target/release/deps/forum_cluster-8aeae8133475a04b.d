/root/repo/target/release/deps/forum_cluster-8aeae8133475a04b.d: crates/forum-cluster/src/lib.rs crates/forum-cluster/src/dbscan.rs crates/forum-cluster/src/feature.rs crates/forum-cluster/src/kmeans.rs crates/forum-cluster/src/silhouette.rs

/root/repo/target/release/deps/libforum_cluster-8aeae8133475a04b.rlib: crates/forum-cluster/src/lib.rs crates/forum-cluster/src/dbscan.rs crates/forum-cluster/src/feature.rs crates/forum-cluster/src/kmeans.rs crates/forum-cluster/src/silhouette.rs

/root/repo/target/release/deps/libforum_cluster-8aeae8133475a04b.rmeta: crates/forum-cluster/src/lib.rs crates/forum-cluster/src/dbscan.rs crates/forum-cluster/src/feature.rs crates/forum-cluster/src/kmeans.rs crates/forum-cluster/src/silhouette.rs

crates/forum-cluster/src/lib.rs:
crates/forum-cluster/src/dbscan.rs:
crates/forum-cluster/src/feature.rs:
crates/forum-cluster/src/kmeans.rs:
crates/forum-cluster/src/silhouette.rs:
