/root/repo/target/release/deps/proptest-3b1733a69ee71b26.d: compat/proptest/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libproptest-3b1733a69ee71b26.rmeta: compat/proptest/src/lib.rs Cargo.toml

compat/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
