/root/repo/target/release/deps/rand-4ff745e1ac8be18b.d: compat/rand/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand-4ff745e1ac8be18b.rmeta: compat/rand/src/lib.rs Cargo.toml

compat/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
