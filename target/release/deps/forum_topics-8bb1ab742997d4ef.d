/root/repo/target/release/deps/forum_topics-8bb1ab742997d4ef.d: crates/forum-topics/src/lib.rs crates/forum-topics/src/lda.rs crates/forum-topics/src/retrieval.rs

/root/repo/target/release/deps/libforum_topics-8bb1ab742997d4ef.rlib: crates/forum-topics/src/lib.rs crates/forum-topics/src/lda.rs crates/forum-topics/src/retrieval.rs

/root/repo/target/release/deps/libforum_topics-8bb1ab742997d4ef.rmeta: crates/forum-topics/src/lib.rs crates/forum-topics/src/lda.rs crates/forum-topics/src/retrieval.rs

crates/forum-topics/src/lib.rs:
crates/forum-topics/src/lda.rs:
crates/forum-topics/src/retrieval.rs:
