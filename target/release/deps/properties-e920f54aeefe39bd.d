/root/repo/target/release/deps/properties-e920f54aeefe39bd.d: crates/forum-topics/tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-e920f54aeefe39bd.rmeta: crates/forum-topics/tests/properties.rs Cargo.toml

crates/forum-topics/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
