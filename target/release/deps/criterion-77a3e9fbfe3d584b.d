/root/repo/target/release/deps/criterion-77a3e9fbfe3d584b.d: compat/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-77a3e9fbfe3d584b.rmeta: compat/criterion/src/lib.rs Cargo.toml

compat/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
