/root/repo/target/release/deps/forum_text-f23311c908aa12d1.d: crates/forum-text/src/lib.rs crates/forum-text/src/clean.rs crates/forum-text/src/document.rs crates/forum-text/src/segmentation.rs crates/forum-text/src/sentence.rs crates/forum-text/src/span.rs crates/forum-text/src/stem.rs crates/forum-text/src/stopwords.rs crates/forum-text/src/tokenize.rs crates/forum-text/src/vocab.rs Cargo.toml

/root/repo/target/release/deps/libforum_text-f23311c908aa12d1.rmeta: crates/forum-text/src/lib.rs crates/forum-text/src/clean.rs crates/forum-text/src/document.rs crates/forum-text/src/segmentation.rs crates/forum-text/src/sentence.rs crates/forum-text/src/span.rs crates/forum-text/src/stem.rs crates/forum-text/src/stopwords.rs crates/forum-text/src/tokenize.rs crates/forum-text/src/vocab.rs Cargo.toml

crates/forum-text/src/lib.rs:
crates/forum-text/src/clean.rs:
crates/forum-text/src/document.rs:
crates/forum-text/src/segmentation.rs:
crates/forum-text/src/sentence.rs:
crates/forum-text/src/span.rs:
crates/forum-text/src/stem.rs:
crates/forum-text/src/stopwords.rs:
crates/forum-text/src/tokenize.rs:
crates/forum-text/src/vocab.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
