/root/repo/target/release/deps/forum_related_posts-67bd07fb46f51589.d: src/lib.rs

/root/repo/target/release/deps/libforum_related_posts-67bd07fb46f51589.rlib: src/lib.rs

/root/repo/target/release/deps/libforum_related_posts-67bd07fb46f51589.rmeta: src/lib.rs

src/lib.rs:
