/root/repo/target/release/deps/properties-b8512e66560cca76.d: crates/forum-cluster/tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-b8512e66560cca76.rmeta: crates/forum-cluster/tests/properties.rs Cargo.toml

crates/forum-cluster/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
