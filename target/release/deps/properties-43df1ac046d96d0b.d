/root/repo/target/release/deps/properties-43df1ac046d96d0b.d: crates/forum-corpus/tests/properties.rs

/root/repo/target/release/deps/properties-43df1ac046d96d0b: crates/forum-corpus/tests/properties.rs

crates/forum-corpus/tests/properties.rs:
