/root/repo/target/release/deps/forum_corpus-16d5021f4ffdbc84.d: crates/forum-corpus/src/lib.rs crates/forum-corpus/src/annotator.rs crates/forum-corpus/src/domains/mod.rs crates/forum-corpus/src/domains/programming.rs crates/forum-corpus/src/domains/tech.rs crates/forum-corpus/src/domains/travel.rs crates/forum-corpus/src/generate.rs crates/forum-corpus/src/oracle.rs crates/forum-corpus/src/spec.rs crates/forum-corpus/src/stats.rs

/root/repo/target/release/deps/forum_corpus-16d5021f4ffdbc84: crates/forum-corpus/src/lib.rs crates/forum-corpus/src/annotator.rs crates/forum-corpus/src/domains/mod.rs crates/forum-corpus/src/domains/programming.rs crates/forum-corpus/src/domains/tech.rs crates/forum-corpus/src/domains/travel.rs crates/forum-corpus/src/generate.rs crates/forum-corpus/src/oracle.rs crates/forum-corpus/src/spec.rs crates/forum-corpus/src/stats.rs

crates/forum-corpus/src/lib.rs:
crates/forum-corpus/src/annotator.rs:
crates/forum-corpus/src/domains/mod.rs:
crates/forum-corpus/src/domains/programming.rs:
crates/forum-corpus/src/domains/tech.rs:
crates/forum-corpus/src/domains/travel.rs:
crates/forum-corpus/src/generate.rs:
crates/forum-corpus/src/oracle.rs:
crates/forum-corpus/src/spec.rs:
crates/forum-corpus/src/stats.rs:
