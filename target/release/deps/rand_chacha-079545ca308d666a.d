/root/repo/target/release/deps/rand_chacha-079545ca308d666a.d: compat/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-079545ca308d666a.rlib: compat/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-079545ca308d666a.rmeta: compat/rand_chacha/src/lib.rs

compat/rand_chacha/src/lib.rs:
