/root/repo/target/release/deps/cli-b8a0d5c5494336ed.d: crates/core/tests/cli.rs Cargo.toml

/root/repo/target/release/deps/libcli-b8a0d5c5494336ed.rmeta: crates/core/tests/cli.rs Cargo.toml

crates/core/tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_intentmatch=placeholder:intentmatch
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
