/root/repo/target/release/deps/properties-48748ad5977311f5.d: crates/forum-cluster/tests/properties.rs

/root/repo/target/release/deps/properties-48748ad5977311f5: crates/forum-cluster/tests/properties.rs

crates/forum-cluster/tests/properties.rs:
