/root/repo/target/release/deps/properties-3879c506a5c78131.d: crates/forum-index/tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-3879c506a5c78131.rmeta: crates/forum-index/tests/properties.rs Cargo.toml

crates/forum-index/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
