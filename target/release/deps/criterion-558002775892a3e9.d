/root/repo/target/release/deps/criterion-558002775892a3e9.d: compat/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-558002775892a3e9.rlib: compat/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-558002775892a3e9.rmeta: compat/criterion/src/lib.rs

compat/criterion/src/lib.rs:
