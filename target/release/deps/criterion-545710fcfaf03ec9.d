/root/repo/target/release/deps/criterion-545710fcfaf03ec9.d: compat/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-545710fcfaf03ec9: compat/criterion/src/lib.rs

compat/criterion/src/lib.rs:
