/root/repo/target/release/deps/intentmatch-73f91f5dffec5d71.d: crates/core/src/lib.rs crates/core/src/collection.rs crates/core/src/eval.rs crates/core/src/explain.rs crates/core/src/fagin.rs crates/core/src/methods.rs crates/core/src/par.rs crates/core/src/pipeline.rs crates/core/src/store.rs Cargo.toml

/root/repo/target/release/deps/libintentmatch-73f91f5dffec5d71.rmeta: crates/core/src/lib.rs crates/core/src/collection.rs crates/core/src/eval.rs crates/core/src/explain.rs crates/core/src/fagin.rs crates/core/src/methods.rs crates/core/src/par.rs crates/core/src/pipeline.rs crates/core/src/store.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/collection.rs:
crates/core/src/eval.rs:
crates/core/src/explain.rs:
crates/core/src/fagin.rs:
crates/core/src/methods.rs:
crates/core/src/par.rs:
crates/core/src/pipeline.rs:
crates/core/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
