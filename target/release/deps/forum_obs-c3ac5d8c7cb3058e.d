/root/repo/target/release/deps/forum_obs-c3ac5d8c7cb3058e.d: crates/forum-obs/src/lib.rs crates/forum-obs/src/export.rs crates/forum-obs/src/json.rs crates/forum-obs/src/registry.rs crates/forum-obs/src/span.rs Cargo.toml

/root/repo/target/release/deps/libforum_obs-c3ac5d8c7cb3058e.rmeta: crates/forum-obs/src/lib.rs crates/forum-obs/src/export.rs crates/forum-obs/src/json.rs crates/forum-obs/src/registry.rs crates/forum-obs/src/span.rs Cargo.toml

crates/forum-obs/src/lib.rs:
crates/forum-obs/src/export.rs:
crates/forum-obs/src/json.rs:
crates/forum-obs/src/registry.rs:
crates/forum-obs/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
