/root/repo/target/release/deps/properties-e1973733e74c079a.d: crates/forum-index/tests/properties.rs

/root/repo/target/release/deps/properties-e1973733e74c079a: crates/forum-index/tests/properties.rs

crates/forum-index/tests/properties.rs:
