/root/repo/target/release/deps/proptest-1c7103a444c027d0.d: compat/proptest/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libproptest-1c7103a444c027d0.rmeta: compat/proptest/src/lib.rs Cargo.toml

compat/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
