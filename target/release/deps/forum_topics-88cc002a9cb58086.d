/root/repo/target/release/deps/forum_topics-88cc002a9cb58086.d: crates/forum-topics/src/lib.rs crates/forum-topics/src/lda.rs crates/forum-topics/src/retrieval.rs Cargo.toml

/root/repo/target/release/deps/libforum_topics-88cc002a9cb58086.rmeta: crates/forum-topics/src/lib.rs crates/forum-topics/src/lda.rs crates/forum-topics/src/retrieval.rs Cargo.toml

crates/forum-topics/src/lib.rs:
crates/forum-topics/src/lda.rs:
crates/forum-topics/src/retrieval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
