/root/repo/target/release/deps/intentmatch-af4da177725f202a.d: crates/core/src/bin/intentmatch.rs Cargo.toml

/root/repo/target/release/deps/libintentmatch-af4da177725f202a.rmeta: crates/core/src/bin/intentmatch.rs Cargo.toml

crates/core/src/bin/intentmatch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
