/root/repo/target/release/deps/intentmatch-4e37a36f543fb7fc.d: crates/core/src/lib.rs crates/core/src/collection.rs crates/core/src/eval.rs crates/core/src/explain.rs crates/core/src/fagin.rs crates/core/src/methods.rs crates/core/src/par.rs crates/core/src/pipeline.rs crates/core/src/store.rs

/root/repo/target/release/deps/intentmatch-4e37a36f543fb7fc: crates/core/src/lib.rs crates/core/src/collection.rs crates/core/src/eval.rs crates/core/src/explain.rs crates/core/src/fagin.rs crates/core/src/methods.rs crates/core/src/par.rs crates/core/src/pipeline.rs crates/core/src/store.rs

crates/core/src/lib.rs:
crates/core/src/collection.rs:
crates/core/src/eval.rs:
crates/core/src/explain.rs:
crates/core/src/fagin.rs:
crates/core/src/methods.rs:
crates/core/src/par.rs:
crates/core/src/pipeline.rs:
crates/core/src/store.rs:
