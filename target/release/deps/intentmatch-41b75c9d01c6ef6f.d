/root/repo/target/release/deps/intentmatch-41b75c9d01c6ef6f.d: crates/core/src/bin/intentmatch.rs

/root/repo/target/release/deps/intentmatch-41b75c9d01c6ef6f: crates/core/src/bin/intentmatch.rs

crates/core/src/bin/intentmatch.rs:
