/root/repo/target/release/deps/forum_obs-36078d5daea34275.d: crates/forum-obs/src/lib.rs crates/forum-obs/src/export.rs crates/forum-obs/src/json.rs crates/forum-obs/src/registry.rs crates/forum-obs/src/span.rs

/root/repo/target/release/deps/libforum_obs-36078d5daea34275.rlib: crates/forum-obs/src/lib.rs crates/forum-obs/src/export.rs crates/forum-obs/src/json.rs crates/forum-obs/src/registry.rs crates/forum-obs/src/span.rs

/root/repo/target/release/deps/libforum_obs-36078d5daea34275.rmeta: crates/forum-obs/src/lib.rs crates/forum-obs/src/export.rs crates/forum-obs/src/json.rs crates/forum-obs/src/registry.rs crates/forum-obs/src/span.rs

crates/forum-obs/src/lib.rs:
crates/forum-obs/src/export.rs:
crates/forum-obs/src/json.rs:
crates/forum-obs/src/registry.rs:
crates/forum-obs/src/span.rs:
