/root/repo/target/release/deps/forum_index-85c240c57bbcea4b.d: crates/forum-index/src/lib.rs crates/forum-index/src/codec.rs crates/forum-index/src/index.rs crates/forum-index/src/weighting.rs

/root/repo/target/release/deps/forum_index-85c240c57bbcea4b: crates/forum-index/src/lib.rs crates/forum-index/src/codec.rs crates/forum-index/src/index.rs crates/forum-index/src/weighting.rs

crates/forum-index/src/lib.rs:
crates/forum-index/src/codec.rs:
crates/forum-index/src/index.rs:
crates/forum-index/src/weighting.rs:
