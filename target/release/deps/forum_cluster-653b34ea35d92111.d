/root/repo/target/release/deps/forum_cluster-653b34ea35d92111.d: crates/forum-cluster/src/lib.rs crates/forum-cluster/src/dbscan.rs crates/forum-cluster/src/feature.rs crates/forum-cluster/src/kmeans.rs crates/forum-cluster/src/silhouette.rs

/root/repo/target/release/deps/forum_cluster-653b34ea35d92111: crates/forum-cluster/src/lib.rs crates/forum-cluster/src/dbscan.rs crates/forum-cluster/src/feature.rs crates/forum-cluster/src/kmeans.rs crates/forum-cluster/src/silhouette.rs

crates/forum-cluster/src/lib.rs:
crates/forum-cluster/src/dbscan.rs:
crates/forum-cluster/src/feature.rs:
crates/forum-cluster/src/kmeans.rs:
crates/forum-cluster/src/silhouette.rs:
