/root/repo/target/release/deps/forum_related_posts-409323b6f4f73a20.d: src/lib.rs

/root/repo/target/release/deps/forum_related_posts-409323b6f4f73a20: src/lib.rs

src/lib.rs:
