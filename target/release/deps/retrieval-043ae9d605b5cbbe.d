/root/repo/target/release/deps/retrieval-043ae9d605b5cbbe.d: crates/bench/benches/retrieval.rs Cargo.toml

/root/repo/target/release/deps/libretrieval-043ae9d605b5cbbe.rmeta: crates/bench/benches/retrieval.rs Cargo.toml

crates/bench/benches/retrieval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
