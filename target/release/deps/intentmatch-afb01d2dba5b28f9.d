/root/repo/target/release/deps/intentmatch-afb01d2dba5b28f9.d: crates/core/src/bin/intentmatch.rs Cargo.toml

/root/repo/target/release/deps/libintentmatch-afb01d2dba5b28f9.rmeta: crates/core/src/bin/intentmatch.rs Cargo.toml

crates/core/src/bin/intentmatch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
