/root/repo/target/release/deps/experiments-b93747498fe4cda1.d: crates/bench/src/main.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/cm_vs_terms.rs crates/bench/src/experiments/datasets.rs crates/bench/src/experiments/fig11.rs crates/bench/src/experiments/fig3.rs crates/bench/src/experiments/fig7.rs crates/bench/src/experiments/fig8.rs crates/bench/src/experiments/fig9.rs crates/bench/src/experiments/table2.rs crates/bench/src/experiments/table3.rs crates/bench/src/experiments/table4.rs crates/bench/src/experiments/table6.rs crates/bench/src/util.rs

/root/repo/target/release/deps/experiments-b93747498fe4cda1: crates/bench/src/main.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/cm_vs_terms.rs crates/bench/src/experiments/datasets.rs crates/bench/src/experiments/fig11.rs crates/bench/src/experiments/fig3.rs crates/bench/src/experiments/fig7.rs crates/bench/src/experiments/fig8.rs crates/bench/src/experiments/fig9.rs crates/bench/src/experiments/table2.rs crates/bench/src/experiments/table3.rs crates/bench/src/experiments/table4.rs crates/bench/src/experiments/table6.rs crates/bench/src/util.rs

crates/bench/src/main.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/ablations.rs:
crates/bench/src/experiments/cm_vs_terms.rs:
crates/bench/src/experiments/datasets.rs:
crates/bench/src/experiments/fig11.rs:
crates/bench/src/experiments/fig3.rs:
crates/bench/src/experiments/fig7.rs:
crates/bench/src/experiments/fig8.rs:
crates/bench/src/experiments/fig9.rs:
crates/bench/src/experiments/table2.rs:
crates/bench/src/experiments/table3.rs:
crates/bench/src/experiments/table4.rs:
crates/bench/src/experiments/table6.rs:
crates/bench/src/util.rs:
