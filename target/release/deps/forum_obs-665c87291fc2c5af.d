/root/repo/target/release/deps/forum_obs-665c87291fc2c5af.d: crates/forum-obs/src/lib.rs crates/forum-obs/src/export.rs crates/forum-obs/src/json.rs crates/forum-obs/src/registry.rs crates/forum-obs/src/span.rs

/root/repo/target/release/deps/forum_obs-665c87291fc2c5af: crates/forum-obs/src/lib.rs crates/forum-obs/src/export.rs crates/forum-obs/src/json.rs crates/forum-obs/src/registry.rs crates/forum-obs/src/span.rs

crates/forum-obs/src/lib.rs:
crates/forum-obs/src/export.rs:
crates/forum-obs/src/json.rs:
crates/forum-obs/src/registry.rs:
crates/forum-obs/src/span.rs:
