/root/repo/target/release/deps/forum_index-da86a0c88708aeb3.d: crates/forum-index/src/lib.rs crates/forum-index/src/codec.rs crates/forum-index/src/index.rs crates/forum-index/src/weighting.rs Cargo.toml

/root/repo/target/release/deps/libforum_index-da86a0c88708aeb3.rmeta: crates/forum-index/src/lib.rs crates/forum-index/src/codec.rs crates/forum-index/src/index.rs crates/forum-index/src/weighting.rs Cargo.toml

crates/forum-index/src/lib.rs:
crates/forum-index/src/codec.rs:
crates/forum-index/src/index.rs:
crates/forum-index/src/weighting.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
