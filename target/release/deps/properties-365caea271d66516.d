/root/repo/target/release/deps/properties-365caea271d66516.d: crates/forum-segment/tests/properties.rs

/root/repo/target/release/deps/properties-365caea271d66516: crates/forum-segment/tests/properties.rs

crates/forum-segment/tests/properties.rs:
