/root/repo/target/release/deps/rand_chacha-8aea0249c06dbc2b.d: compat/rand_chacha/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand_chacha-8aea0249c06dbc2b.rmeta: compat/rand_chacha/src/lib.rs Cargo.toml

compat/rand_chacha/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
