/root/repo/target/release/deps/forum_corpus-4abc783004c10ba3.d: crates/forum-corpus/src/lib.rs crates/forum-corpus/src/annotator.rs crates/forum-corpus/src/domains/mod.rs crates/forum-corpus/src/domains/programming.rs crates/forum-corpus/src/domains/tech.rs crates/forum-corpus/src/domains/travel.rs crates/forum-corpus/src/generate.rs crates/forum-corpus/src/oracle.rs crates/forum-corpus/src/spec.rs crates/forum-corpus/src/stats.rs

/root/repo/target/release/deps/libforum_corpus-4abc783004c10ba3.rlib: crates/forum-corpus/src/lib.rs crates/forum-corpus/src/annotator.rs crates/forum-corpus/src/domains/mod.rs crates/forum-corpus/src/domains/programming.rs crates/forum-corpus/src/domains/tech.rs crates/forum-corpus/src/domains/travel.rs crates/forum-corpus/src/generate.rs crates/forum-corpus/src/oracle.rs crates/forum-corpus/src/spec.rs crates/forum-corpus/src/stats.rs

/root/repo/target/release/deps/libforum_corpus-4abc783004c10ba3.rmeta: crates/forum-corpus/src/lib.rs crates/forum-corpus/src/annotator.rs crates/forum-corpus/src/domains/mod.rs crates/forum-corpus/src/domains/programming.rs crates/forum-corpus/src/domains/tech.rs crates/forum-corpus/src/domains/travel.rs crates/forum-corpus/src/generate.rs crates/forum-corpus/src/oracle.rs crates/forum-corpus/src/spec.rs crates/forum-corpus/src/stats.rs

crates/forum-corpus/src/lib.rs:
crates/forum-corpus/src/annotator.rs:
crates/forum-corpus/src/domains/mod.rs:
crates/forum-corpus/src/domains/programming.rs:
crates/forum-corpus/src/domains/tech.rs:
crates/forum-corpus/src/domains/travel.rs:
crates/forum-corpus/src/generate.rs:
crates/forum-corpus/src/oracle.rs:
crates/forum-corpus/src/spec.rs:
crates/forum-corpus/src/stats.rs:
