/root/repo/target/release/deps/criterion-25a80b50c243f3c5.d: compat/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-25a80b50c243f3c5.rmeta: compat/criterion/src/lib.rs Cargo.toml

compat/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
