/root/repo/target/release/deps/forum_topics-18167439196d545f.d: crates/forum-topics/src/lib.rs crates/forum-topics/src/lda.rs crates/forum-topics/src/retrieval.rs Cargo.toml

/root/repo/target/release/deps/libforum_topics-18167439196d545f.rmeta: crates/forum-topics/src/lib.rs crates/forum-topics/src/lda.rs crates/forum-topics/src/retrieval.rs Cargo.toml

crates/forum-topics/src/lib.rs:
crates/forum-topics/src/lda.rs:
crates/forum-topics/src/retrieval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
