/root/repo/target/release/deps/forum_corpus-d5ad17d3cba2aa02.d: crates/forum-corpus/src/lib.rs crates/forum-corpus/src/annotator.rs crates/forum-corpus/src/domains/mod.rs crates/forum-corpus/src/domains/programming.rs crates/forum-corpus/src/domains/tech.rs crates/forum-corpus/src/domains/travel.rs crates/forum-corpus/src/generate.rs crates/forum-corpus/src/oracle.rs crates/forum-corpus/src/spec.rs crates/forum-corpus/src/stats.rs Cargo.toml

/root/repo/target/release/deps/libforum_corpus-d5ad17d3cba2aa02.rmeta: crates/forum-corpus/src/lib.rs crates/forum-corpus/src/annotator.rs crates/forum-corpus/src/domains/mod.rs crates/forum-corpus/src/domains/programming.rs crates/forum-corpus/src/domains/tech.rs crates/forum-corpus/src/domains/travel.rs crates/forum-corpus/src/generate.rs crates/forum-corpus/src/oracle.rs crates/forum-corpus/src/spec.rs crates/forum-corpus/src/stats.rs Cargo.toml

crates/forum-corpus/src/lib.rs:
crates/forum-corpus/src/annotator.rs:
crates/forum-corpus/src/domains/mod.rs:
crates/forum-corpus/src/domains/programming.rs:
crates/forum-corpus/src/domains/tech.rs:
crates/forum-corpus/src/domains/travel.rs:
crates/forum-corpus/src/generate.rs:
crates/forum-corpus/src/oracle.rs:
crates/forum-corpus/src/spec.rs:
crates/forum-corpus/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
