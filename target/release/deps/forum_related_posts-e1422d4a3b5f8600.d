/root/repo/target/release/deps/forum_related_posts-e1422d4a3b5f8600.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libforum_related_posts-e1422d4a3b5f8600.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
