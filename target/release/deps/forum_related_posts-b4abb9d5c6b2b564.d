/root/repo/target/release/deps/forum_related_posts-b4abb9d5c6b2b564.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libforum_related_posts-b4abb9d5c6b2b564.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
