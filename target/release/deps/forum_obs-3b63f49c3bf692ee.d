/root/repo/target/release/deps/forum_obs-3b63f49c3bf692ee.d: crates/forum-obs/src/lib.rs crates/forum-obs/src/export.rs crates/forum-obs/src/json.rs crates/forum-obs/src/registry.rs crates/forum-obs/src/span.rs Cargo.toml

/root/repo/target/release/deps/libforum_obs-3b63f49c3bf692ee.rmeta: crates/forum-obs/src/lib.rs crates/forum-obs/src/export.rs crates/forum-obs/src/json.rs crates/forum-obs/src/registry.rs crates/forum-obs/src/span.rs Cargo.toml

crates/forum-obs/src/lib.rs:
crates/forum-obs/src/export.rs:
crates/forum-obs/src/json.rs:
crates/forum-obs/src/registry.rs:
crates/forum-obs/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
