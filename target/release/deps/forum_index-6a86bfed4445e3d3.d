/root/repo/target/release/deps/forum_index-6a86bfed4445e3d3.d: crates/forum-index/src/lib.rs crates/forum-index/src/codec.rs crates/forum-index/src/index.rs crates/forum-index/src/weighting.rs Cargo.toml

/root/repo/target/release/deps/libforum_index-6a86bfed4445e3d3.rmeta: crates/forum-index/src/lib.rs crates/forum-index/src/codec.rs crates/forum-index/src/index.rs crates/forum-index/src/weighting.rs Cargo.toml

crates/forum-index/src/lib.rs:
crates/forum-index/src/codec.rs:
crates/forum-index/src/index.rs:
crates/forum-index/src/weighting.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
