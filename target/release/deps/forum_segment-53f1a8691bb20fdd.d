/root/repo/target/release/deps/forum_segment-53f1a8691bb20fdd.d: crates/forum-segment/src/lib.rs crates/forum-segment/src/agreement.rs crates/forum-segment/src/cmdoc.rs crates/forum-segment/src/diversity.rs crates/forum-segment/src/metrics.rs crates/forum-segment/src/scoring.rs crates/forum-segment/src/strategies.rs crates/forum-segment/src/texttiling.rs

/root/repo/target/release/deps/forum_segment-53f1a8691bb20fdd: crates/forum-segment/src/lib.rs crates/forum-segment/src/agreement.rs crates/forum-segment/src/cmdoc.rs crates/forum-segment/src/diversity.rs crates/forum-segment/src/metrics.rs crates/forum-segment/src/scoring.rs crates/forum-segment/src/strategies.rs crates/forum-segment/src/texttiling.rs

crates/forum-segment/src/lib.rs:
crates/forum-segment/src/agreement.rs:
crates/forum-segment/src/cmdoc.rs:
crates/forum-segment/src/diversity.rs:
crates/forum-segment/src/metrics.rs:
crates/forum-segment/src/scoring.rs:
crates/forum-segment/src/strategies.rs:
crates/forum-segment/src/texttiling.rs:
