/root/repo/target/release/deps/forum_text-99c3e3427ed4876e.d: crates/forum-text/src/lib.rs crates/forum-text/src/clean.rs crates/forum-text/src/document.rs crates/forum-text/src/segmentation.rs crates/forum-text/src/sentence.rs crates/forum-text/src/span.rs crates/forum-text/src/stem.rs crates/forum-text/src/stopwords.rs crates/forum-text/src/tokenize.rs crates/forum-text/src/vocab.rs

/root/repo/target/release/deps/libforum_text-99c3e3427ed4876e.rlib: crates/forum-text/src/lib.rs crates/forum-text/src/clean.rs crates/forum-text/src/document.rs crates/forum-text/src/segmentation.rs crates/forum-text/src/sentence.rs crates/forum-text/src/span.rs crates/forum-text/src/stem.rs crates/forum-text/src/stopwords.rs crates/forum-text/src/tokenize.rs crates/forum-text/src/vocab.rs

/root/repo/target/release/deps/libforum_text-99c3e3427ed4876e.rmeta: crates/forum-text/src/lib.rs crates/forum-text/src/clean.rs crates/forum-text/src/document.rs crates/forum-text/src/segmentation.rs crates/forum-text/src/sentence.rs crates/forum-text/src/span.rs crates/forum-text/src/stem.rs crates/forum-text/src/stopwords.rs crates/forum-text/src/tokenize.rs crates/forum-text/src/vocab.rs

crates/forum-text/src/lib.rs:
crates/forum-text/src/clean.rs:
crates/forum-text/src/document.rs:
crates/forum-text/src/segmentation.rs:
crates/forum-text/src/sentence.rs:
crates/forum-text/src/span.rs:
crates/forum-text/src/stem.rs:
crates/forum-text/src/stopwords.rs:
crates/forum-text/src/tokenize.rs:
crates/forum-text/src/vocab.rs:
