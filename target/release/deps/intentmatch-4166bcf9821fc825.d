/root/repo/target/release/deps/intentmatch-4166bcf9821fc825.d: crates/core/src/lib.rs crates/core/src/collection.rs crates/core/src/eval.rs crates/core/src/explain.rs crates/core/src/fagin.rs crates/core/src/methods.rs crates/core/src/par.rs crates/core/src/pipeline.rs crates/core/src/store.rs

/root/repo/target/release/deps/libintentmatch-4166bcf9821fc825.rlib: crates/core/src/lib.rs crates/core/src/collection.rs crates/core/src/eval.rs crates/core/src/explain.rs crates/core/src/fagin.rs crates/core/src/methods.rs crates/core/src/par.rs crates/core/src/pipeline.rs crates/core/src/store.rs

/root/repo/target/release/deps/libintentmatch-4166bcf9821fc825.rmeta: crates/core/src/lib.rs crates/core/src/collection.rs crates/core/src/eval.rs crates/core/src/explain.rs crates/core/src/fagin.rs crates/core/src/methods.rs crates/core/src/par.rs crates/core/src/pipeline.rs crates/core/src/store.rs

crates/core/src/lib.rs:
crates/core/src/collection.rs:
crates/core/src/eval.rs:
crates/core/src/explain.rs:
crates/core/src/fagin.rs:
crates/core/src/methods.rs:
crates/core/src/par.rs:
crates/core/src/pipeline.rs:
crates/core/src/store.rs:
