/root/repo/target/release/deps/forum_nlp-93d9cef12d141c11.d: crates/forum-nlp/src/lib.rs crates/forum-nlp/src/cm.rs crates/forum-nlp/src/lexicon.rs crates/forum-nlp/src/tagger.rs Cargo.toml

/root/repo/target/release/deps/libforum_nlp-93d9cef12d141c11.rmeta: crates/forum-nlp/src/lib.rs crates/forum-nlp/src/cm.rs crates/forum-nlp/src/lexicon.rs crates/forum-nlp/src/tagger.rs Cargo.toml

crates/forum-nlp/src/lib.rs:
crates/forum-nlp/src/cm.rs:
crates/forum-nlp/src/lexicon.rs:
crates/forum-nlp/src/tagger.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
