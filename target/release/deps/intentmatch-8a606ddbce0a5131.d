/root/repo/target/release/deps/intentmatch-8a606ddbce0a5131.d: crates/core/src/lib.rs crates/core/src/collection.rs crates/core/src/eval.rs crates/core/src/explain.rs crates/core/src/fagin.rs crates/core/src/methods.rs crates/core/src/par.rs crates/core/src/pipeline.rs crates/core/src/store.rs Cargo.toml

/root/repo/target/release/deps/libintentmatch-8a606ddbce0a5131.rmeta: crates/core/src/lib.rs crates/core/src/collection.rs crates/core/src/eval.rs crates/core/src/explain.rs crates/core/src/fagin.rs crates/core/src/methods.rs crates/core/src/par.rs crates/core/src/pipeline.rs crates/core/src/store.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/collection.rs:
crates/core/src/eval.rs:
crates/core/src/explain.rs:
crates/core/src/fagin.rs:
crates/core/src/methods.rs:
crates/core/src/par.rs:
crates/core/src/pipeline.rs:
crates/core/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
