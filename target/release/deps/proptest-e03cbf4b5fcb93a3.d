/root/repo/target/release/deps/proptest-e03cbf4b5fcb93a3.d: compat/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-e03cbf4b5fcb93a3: compat/proptest/src/lib.rs

compat/proptest/src/lib.rs:
