/root/repo/target/release/examples/precision_scan-cb53cc8892b91c05.d: examples/precision_scan.rs

/root/repo/target/release/examples/precision_scan-cb53cc8892b91c05: examples/precision_scan.rs

examples/precision_scan.rs:
