/root/repo/target/release/examples/quickstart-dc1376dcb380aeca.d: examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-dc1376dcb380aeca.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
