/root/repo/target/release/examples/persistence-55c9ed56f2065410.d: examples/persistence.rs

/root/repo/target/release/examples/persistence-55c9ed56f2065410: examples/persistence.rs

examples/persistence.rs:
