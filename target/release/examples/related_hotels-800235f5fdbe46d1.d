/root/repo/target/release/examples/related_hotels-800235f5fdbe46d1.d: examples/related_hotels.rs Cargo.toml

/root/repo/target/release/examples/librelated_hotels-800235f5fdbe46d1.rmeta: examples/related_hotels.rs Cargo.toml

examples/related_hotels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
