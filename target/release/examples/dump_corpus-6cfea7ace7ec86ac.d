/root/repo/target/release/examples/dump_corpus-6cfea7ace7ec86ac.d: examples/dump_corpus.rs

/root/repo/target/release/examples/dump_corpus-6cfea7ace7ec86ac: examples/dump_corpus.rs

examples/dump_corpus.rs:
