/root/repo/target/release/examples/method_comparison-350978e1fcc55a20.d: examples/method_comparison.rs

/root/repo/target/release/examples/method_comparison-350978e1fcc55a20: examples/method_comparison.rs

examples/method_comparison.rs:
