/root/repo/target/release/examples/segment_explorer-561e968dbdbf1db1.d: examples/segment_explorer.rs

/root/repo/target/release/examples/segment_explorer-561e968dbdbf1db1: examples/segment_explorer.rs

examples/segment_explorer.rs:
