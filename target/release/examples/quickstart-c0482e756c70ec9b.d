/root/repo/target/release/examples/quickstart-c0482e756c70ec9b.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-c0482e756c70ec9b: examples/quickstart.rs

examples/quickstart.rs:
