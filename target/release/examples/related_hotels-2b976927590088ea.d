/root/repo/target/release/examples/related_hotels-2b976927590088ea.d: examples/related_hotels.rs

/root/repo/target/release/examples/related_hotels-2b976927590088ea: examples/related_hotels.rs

examples/related_hotels.rs:
