/root/repo/target/release/examples/dump_corpus-514f330973dbc90d.d: examples/dump_corpus.rs Cargo.toml

/root/repo/target/release/examples/libdump_corpus-514f330973dbc90d.rmeta: examples/dump_corpus.rs Cargo.toml

examples/dump_corpus.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
