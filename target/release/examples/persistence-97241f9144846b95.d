/root/repo/target/release/examples/persistence-97241f9144846b95.d: examples/persistence.rs Cargo.toml

/root/repo/target/release/examples/libpersistence-97241f9144846b95.rmeta: examples/persistence.rs Cargo.toml

examples/persistence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
