/root/repo/target/release/examples/segment_explorer-879c925b7576e6d9.d: examples/segment_explorer.rs Cargo.toml

/root/repo/target/release/examples/libsegment_explorer-879c925b7576e6d9.rmeta: examples/segment_explorer.rs Cargo.toml

examples/segment_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
