/root/repo/target/release/examples/method_comparison-36c22ef0ee080a2e.d: examples/method_comparison.rs Cargo.toml

/root/repo/target/release/examples/libmethod_comparison-36c22ef0ee080a2e.rmeta: examples/method_comparison.rs Cargo.toml

examples/method_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
