//! Property-based tests for the clustering substrate.

use forum_cluster::{
    dbscan, dbscan_matrix, dbscan_reference, kmeans, segment_features, DbscanConfig, KMeansConfig,
    NormIndex, PointMatrix,
};
use forum_nlp::cm::DistTables;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_tables() -> impl Strategy<Value = DistTables> {
    (
        proptest::array::uniform3(0u32..8),
        proptest::array::uniform3(0u32..8),
        proptest::array::uniform3(0u32..8),
        proptest::array::uniform2(0u32..8),
        proptest::array::uniform3(0u32..8),
    )
        .prop_map(|(tense, subj, qneg, pasact, pos)| DistTables {
            tense,
            subj,
            qneg,
            pasact,
            pos,
        })
}

proptest! {
    /// Feature vectors are finite, 28-dimensional, type-1 blocks in [0, 1]
    /// summing to 1 per CM when the CM is present.
    #[test]
    fn segment_features_are_well_formed(seg in arb_tables(), extra in arb_tables()) {
        let mut whole = seg;
        whole.add_assign(&extra); // whole ⊇ segment
        let f = segment_features(&seg, &whole);
        prop_assert_eq!(f.len(), 28);
        for &x in &f {
            prop_assert!(x.is_finite());
            prop_assert!((-1e-12..=1.0 + 1e-12).contains(&x));
        }
        // Type-2 weights cannot exceed 1 because whole ⊇ segment.
        for &x in &f[14..] {
            prop_assert!(x <= 1.0 + 1e-12);
        }
    }

    /// DBSCAN labels are always within range and cluster ids are dense.
    #[test]
    fn dbscan_labels_are_valid(
        points in proptest::collection::vec(
            proptest::array::uniform2(0.0f64..10.0), 0..60),
        eps in 0.1f64..3.0,
        min_pts in 2usize..8,
    ) {
        let pts: Vec<Vec<f64>> = points.iter().map(|p| p.to_vec()).collect();
        let res = dbscan(&pts, &DbscanConfig { eps, min_pts });
        prop_assert_eq!(res.labels.len(), pts.len());
        let mut seen = vec![false; res.num_clusters];
        for l in res.labels.iter().flatten() {
            prop_assert!(*l < res.num_clusters);
            seen[*l] = true;
        }
        // Every cluster id is used.
        prop_assert!(seen.iter().all(|&s| s));
        // Centroid count matches.
        prop_assert_eq!(res.centroids(&pts).len(), res.num_clusters);
    }

    /// k-means assigns every point to its nearest centroid (Lloyd fixpoint
    /// property at convergence) and labels are within range.
    #[test]
    fn kmeans_labels_are_nearest_centroid(
        points in proptest::collection::vec(
            proptest::array::uniform2(0.0f64..10.0), 1..50),
        k in 1usize..6,
        seed in 0u64..1000,
    ) {
        let pts: Vec<Vec<f64>> = points.iter().map(|p| p.to_vec()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let res = kmeans(&pts, &KMeansConfig { k, max_iterations: 200, tolerance: 0.0 }, &mut rng);
        for (p, &l) in pts.iter().zip(&res.labels) {
            prop_assert!(l < res.centroids.len());
            let own = forum_cluster::sq_dist(p, &res.centroids[l]);
            for c in &res.centroids {
                prop_assert!(own <= forum_cluster::sq_dist(p, c) + 1e-9);
            }
        }
        prop_assert!(res.inertia >= 0.0);
    }
}

proptest! {
    /// The parallel engine is bit-identical to the sequential reference on
    /// random 28-dimensional point clouds, at every thread count: same
    /// labels (including noise), same cluster numbering, same count.
    #[test]
    fn parallel_dbscan_is_bit_identical_to_reference(
        points in proptest::collection::vec(
            proptest::collection::vec(0.0f64..3.0, 28..29), 0..60),
        eps in 0.5f64..4.0,
        min_pts in 2usize..8,
    ) {
        let cfg = DbscanConfig { eps, min_pts };
        let expected = dbscan_reference(&points, &cfg);
        let matrix = PointMatrix::from_rows(&points);
        for threads in [1usize, 2, 4, 8] {
            let got = dbscan_matrix(&matrix, &cfg, threads);
            prop_assert_eq!(&got.labels, &expected.labels, "labels diverge at {} threads", threads);
            prop_assert_eq!(got.num_clusters, expected.num_clusters);
        }
    }

    /// Norm-band pruning is exact: the band around a point's norm key
    /// contains every true eps-neighbour (reverse triangle inequality) —
    /// pruning can only skip points that are provably out of range.
    #[test]
    fn norm_band_never_drops_a_true_neighbor(
        points in proptest::collection::vec(
            proptest::collection::vec(0.0f64..3.0, 28..29), 1..50),
        eps in 0.1f64..4.0,
    ) {
        let matrix = PointMatrix::from_rows(&points);
        let index = NormIndex::build(&matrix);
        let eps2 = eps * eps;
        for (i, a) in points.iter().enumerate() {
            let band: std::collections::HashSet<u32> =
                index.band(NormIndex::key_of(a), eps).iter().copied().collect();
            for (j, b) in points.iter().enumerate() {
                if forum_cluster::sq_dist(a, b) <= eps2 {
                    prop_assert!(
                        band.contains(&(j as u32)),
                        "band around point {} dropped true neighbour {}", i, j
                    );
                }
            }
        }
    }
}
