//! Clustering substrate for segment grouping (Section 6 of the paper).
//!
//! * [`feature`] — the 28-dimensional segment weight vectors of Eqs. 5 & 6:
//!   14 within-segment relative weights plus 14 segment-vs-whole-post
//!   weights, one pair per CM feature of Table 1.
//! * [`dbscan`] — DBSCAN (Ester et al., 1996), the paper's clustering
//!   choice: no a-priori cluster count, arbitrary shapes, and a noise
//!   notion. Includes a sampled variant for collections whose segment count
//!   makes the exact O(n²) neighbourhood search impractical.
//! * [`kmeans`] — k-means with k-means++ seeding, used for the Content-MR
//!   ablation (clustering TF/IDF vectors needs a fixed k) and comparisons.
//! * [`silhouette`] — silhouette scores for cluster-quality reporting.
//! * [`assign`] — nearest-centroid assignment of new points to a frozen
//!   clustering, with an epsilon gate that preserves DBSCAN's noise notion
//!   (the live-ingestion path).
//! * [`points`] — flat row-major point storage ([`PointMatrix`]) shared by
//!   every kernel above, plus the exact region-query accelerators: the
//!   early-abort [`sq_dist_bounded`] and the L2-norm band [`NormIndex`].

pub mod assign;
pub mod dbscan;
pub mod feature;
pub mod kmeans;
pub mod points;
pub mod silhouette;

pub use assign::{
    assign_nearest, assign_nearest_matrix, nearest_centroid, nearest_centroid_matrix,
};
pub use dbscan::{
    dbscan, dbscan_matrix, dbscan_reference, dbscan_sampled, dbscan_sampled_matrix, DbscanConfig,
    DbscanResult, DbscanStats,
};
pub use feature::{segment_features, SEGMENT_FEATURE_DIM};
pub use kmeans::{kmeans, kmeans_matrix, KMeansConfig, KMeansResult};
pub use points::{sq_dist_bounded, NormIndex, PointMatrix};
pub use silhouette::{mean_silhouette, mean_silhouette_matrix};

/// Squared Euclidean distance between two equal-length vectors.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut s = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        s += d * d;
    }
    s
}

/// Euclidean distance between two equal-length vectors.
#[inline]
pub fn dist(a: &[f64], b: &[f64]) -> f64 {
    sq_dist(a, b).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert!((dist(&a, &b) - 5.0).abs() < 1e-12);
        assert!((sq_dist(&a, &b) - 25.0).abs() < 1e-12);
        assert_eq!(dist(&a, &a), 0.0);
    }
}
