//! Nearest-centroid assignment of new points to an existing clustering.
//!
//! The paper's position (Section 9.2) is that intention clusters drift very
//! little over time, so a live system can freeze the DBSCAN model and
//! assign newly arriving segments to the nearest existing centroid (the
//! [`crate::DbscanResult::centroids`] of the frozen build) instead of
//! re-clustering on every write. These helpers are that assignment step:
//! plain nearest-centroid lookup, and an epsilon-gated variant that keeps
//! DBSCAN's noise notion for points too far from every density mode.

use crate::points::{sq_dist_bounded, PointMatrix};
use crate::sq_dist;

/// The index of the centroid nearest to `point` plus the squared distance
/// to it, or `None` when `centroids` is empty.
///
/// Degenerate centroids are tolerated: a centroid whose distance to `point`
/// is not finite (NaN from corrupt input) is skipped rather than poisoning
/// the comparison, and ties go to the lower centroid index so assignment is
/// deterministic.
pub fn nearest_centroid(point: &[f64], centroids: &[Vec<f64>]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, c) in centroids.iter().enumerate() {
        let d = sq_dist(point, c);
        if !d.is_finite() {
            continue;
        }
        if best.is_none_or(|(_, bd)| d < bd) {
            best = Some((i, d));
        }
    }
    best
}

/// Assigns `point` to the nearest centroid within Euclidean distance `eps`,
/// or `None` (noise) when every centroid is farther — the live-ingestion
/// analogue of DBSCAN labelling a point noise when no cluster's density
/// reaches it.
///
/// `eps` is compared against the true Euclidean distance (not squared), so
/// callers pass the same `eps` they clustered with. A non-finite or
/// negative `eps` yields `None` for every point.
pub fn assign_nearest(point: &[f64], centroids: &[Vec<f64>], eps: f64) -> Option<usize> {
    if eps.is_nan() || eps < 0.0 {
        return None;
    }
    nearest_centroid(point, centroids)
        .filter(|&(_, d)| d <= eps * eps)
        .map(|(i, _)| i)
}

/// [`nearest_centroid`] over flat centroid storage, with a running-best
/// early abort: once some centroid is within squared distance `b`, later
/// distance sums bail as soon as they exceed `b`. The winner is unchanged —
/// a pruned candidate could never have satisfied the strict `d < b` the
/// sequential scan requires — so results are identical, including the
/// lower-index tie-break and the skip of non-finite distances.
pub fn nearest_centroid_matrix(point: &[f64], centroids: &PointMatrix) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for i in 0..centroids.len() {
        let bound = best.map_or(f64::INFINITY, |(_, bd)| bd);
        if let Some(d) = sq_dist_bounded(point, centroids.row(i), bound) {
            // `d == bound` survives the abort but loses the strict `<`;
            // infinite d (overflowing coordinates) is skipped like the
            // row-slice variant skips non-finite distances.
            if d.is_finite() && best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
    }
    best
}

/// [`assign_nearest`] over flat centroid storage; identical semantics (the
/// eps gate applies to the overall nearest centroid, not the nearest
/// within eps).
pub fn assign_nearest_matrix(point: &[f64], centroids: &PointMatrix, eps: f64) -> Option<usize> {
    if eps.is_nan() || eps < 0.0 {
        return None;
    }
    nearest_centroid_matrix(point, centroids)
        .filter(|&(_, d)| d <= eps * eps)
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn centroids() -> Vec<Vec<f64>> {
        vec![vec![0.0, 0.0], vec![10.0, 0.0], vec![0.0, 10.0]]
    }

    #[test]
    fn point_inside_eps_joins_expected_cluster() {
        let cents = centroids();
        assert_eq!(assign_nearest(&[0.3, 0.1], &cents, 0.7), Some(0));
        assert_eq!(assign_nearest(&[9.8, 0.2], &cents, 0.7), Some(1));
        assert_eq!(assign_nearest(&[0.1, 10.4], &cents, 0.7), Some(2));
    }

    #[test]
    fn outlier_becomes_noise() {
        let cents = centroids();
        assert_eq!(assign_nearest(&[50.0, 50.0], &cents, 0.7), None);
        // The same point assigns fine without the gate.
        assert!(nearest_centroid(&[50.0, 50.0], &cents).is_some());
    }

    #[test]
    fn boundary_point_exactly_at_eps_joins() {
        let cents = centroids();
        // Distance exactly eps: inclusive, like DBSCAN's `<= eps`.
        assert_eq!(assign_nearest(&[0.7, 0.0], &cents, 0.7), Some(0));
        assert_eq!(assign_nearest(&[0.7 + 1e-9, 0.0], &cents, 0.7), None);
    }

    #[test]
    fn empty_centroid_list_is_noise() {
        assert_eq!(nearest_centroid(&[1.0, 2.0], &[]), None);
        assert_eq!(assign_nearest(&[1.0, 2.0], &[], 10.0), None);
    }

    #[test]
    fn degenerate_nan_centroid_is_skipped() {
        let cents = vec![vec![f64::NAN, 0.0], vec![1.0, 0.0]];
        // The NaN centroid cannot win or poison the min; the finite one does.
        let expected = sq_dist(&[1.0, 0.1], &cents[1]);
        assert_eq!(nearest_centroid(&[1.0, 0.1], &cents), Some((1, expected)));
        assert_eq!(assign_nearest(&[1.0, 0.1], &cents, 0.5), Some(1));
        // All centroids NaN: no assignment at all.
        let all_nan = vec![vec![f64::NAN, f64::NAN]];
        assert_eq!(nearest_centroid(&[0.0, 0.0], &all_nan), None);
        assert_eq!(assign_nearest(&[0.0, 0.0], &all_nan, 1.0), None);
    }

    #[test]
    fn ties_break_to_lower_index() {
        let cents = vec![vec![1.0], vec![-1.0]];
        // Equidistant from both: deterministic, lower index wins.
        assert_eq!(assign_nearest(&[0.0], &cents, 2.0), Some(0));
    }

    #[test]
    fn bad_eps_is_noise() {
        let cents = centroids();
        assert_eq!(assign_nearest(&[0.0, 0.0], &cents, f64::NAN), None);
        assert_eq!(assign_nearest(&[0.0, 0.0], &cents, -1.0), None);
    }

    #[test]
    fn matrix_variants_match_row_variants() {
        let cents = vec![
            vec![0.0, 0.0],
            vec![10.0, 0.0],
            vec![0.0, 10.0],
            vec![f64::NAN, 0.0],
            vec![0.05, 0.05], // near-duplicate of the first: exercises ties
        ];
        let m = PointMatrix::from_rows(&cents);
        let probes: Vec<Vec<f64>> = vec![
            vec![0.3, 0.1],
            vec![9.8, 0.2],
            vec![50.0, 50.0],
            vec![0.025, 0.025],
            vec![f64::NAN, 1.0],
        ];
        for p in &probes {
            assert_eq!(
                nearest_centroid(p, &cents),
                nearest_centroid_matrix(p, &m),
                "probe {p:?}"
            );
            for eps in [0.0, 0.2, 0.7, 100.0, f64::NAN, -1.0] {
                assert_eq!(
                    assign_nearest(p, &cents, eps),
                    assign_nearest_matrix(p, &m, eps),
                    "probe {p:?} eps {eps}"
                );
            }
        }
        // Empty centroid matrix behaves like the empty slice.
        assert_eq!(
            nearest_centroid_matrix(&[1.0], &PointMatrix::with_dim(1)),
            None
        );
    }

    #[test]
    fn zero_dimensional_degenerate_centroid() {
        // An empty-dimension centroid (e.g. from an empty cluster in a
        // corrupt store) has distance 0 to an empty point and is handled,
        // not a panic.
        let cents: Vec<Vec<f64>> = vec![vec![]];
        assert_eq!(nearest_centroid(&[], &cents), Some((0, 0.0)));
    }
}
