//! k-means with k-means++ seeding.
//!
//! Used where a fixed cluster count is the right tool: the Content-MR
//! ablation clusters TF/IDF segment vectors (Section 9.2.3), and k-means is
//! the distance-based contrast the paper mentions when motivating DBSCAN.
//!
//! [`kmeans`] (row slices) and [`kmeans_matrix`] (flat [`PointMatrix`]
//! storage) run the same core — same RNG call sequence, same accumulation
//! order — so their outputs are bit-identical for identical point sets.

use crate::points::{sq_dist_bounded, PointMatrix};
use crate::sq_dist;
use rand::Rng;

/// k-means parameters.
#[derive(Debug, Clone, Copy)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iterations: usize,
    /// Convergence threshold on total centroid movement (squared).
    pub tolerance: f64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 4,
            max_iterations: 100,
            tolerance: 1e-9,
        }
    }
}

/// k-means outcome.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Per-point cluster assignment (always `Some`-like — k-means has no
    /// noise — but kept as plain indices).
    pub labels: Vec<usize>,
    /// Final centroids, `k` rows.
    pub centroids: Vec<Vec<f64>>,
    /// Sum of squared distances of points to their centroids.
    pub inertia: f64,
    /// Iterations executed.
    pub iterations: usize,
}

/// k-means++ seeding: the first centroid is uniform, each next one is drawn
/// with probability proportional to squared distance from the nearest
/// chosen centroid.
fn seed_plus_plus<'a, R: Rng>(
    n: usize,
    row: &impl Fn(usize) -> &'a [f64],
    k: usize,
    rng: &mut R,
) -> Vec<Vec<f64>> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(row(rng.gen_range(0..n)).to_vec());
    let mut d2: Vec<f64> = (0..n).map(|i| sq_dist(row(i), &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All points coincide with some centroid; pick uniformly.
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = n - 1;
            for (i, &d) in d2.iter().enumerate() {
                if target < d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            chosen
        };
        centroids.push(row(next).to_vec());
        for (i, d) in d2.iter_mut().enumerate() {
            let nd = sq_dist(row(i), centroids.last().expect("just pushed"));
            if nd < *d {
                *d = nd;
            }
        }
    }
    centroids
}

fn kmeans_core<'a, R: Rng>(
    n: usize,
    dim: usize,
    row: impl Fn(usize) -> &'a [f64],
    cfg: &KMeansConfig,
    rng: &mut R,
) -> KMeansResult {
    assert!(n > 0, "k-means on empty input");
    let k = cfg.k.clamp(1, n);

    let mut centroids = seed_plus_plus(n, &row, k, rng);
    let mut labels = vec![0usize; n];
    let mut iterations = 0;

    for iter in 0..cfg.max_iterations {
        iterations = iter + 1;
        // Assignment step. The running-best bound lets most centroid
        // distances abort early; the winning label is unchanged because a
        // pruned candidate could never have satisfied `d < best_d`.
        for (i, label) in labels.iter_mut().enumerate() {
            let p = row(i);
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                if let Some(d) = sq_dist_bounded(p, centroid, best_d) {
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
            }
            *label = best;
        }
        // Update step.
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, &l) in labels.iter().enumerate() {
            counts[l] += 1;
            for (s, v) in sums[l].iter_mut().zip(row(i)) {
                *s += v;
            }
        }
        let mut movement = 0.0;
        for c in 0..k {
            if counts[c] == 0 {
                continue; // keep the old centroid for empty clusters
            }
            for s in sums[c].iter_mut() {
                *s /= counts[c] as f64;
            }
            movement += sq_dist(&sums[c], &centroids[c]);
            centroids[c] = std::mem::take(&mut sums[c]);
        }
        if movement <= cfg.tolerance {
            break;
        }
    }

    let inertia = labels
        .iter()
        .enumerate()
        .map(|(i, &l)| sq_dist(row(i), &centroids[l]))
        .sum();
    KMeansResult {
        labels,
        centroids,
        inertia,
        iterations,
    }
}

/// Runs k-means over `points`. `k` is clamped to the number of points.
///
/// ```
/// use forum_cluster::{kmeans, KMeansConfig};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// let points = vec![vec![0.0], vec![0.2], vec![10.0], vec![10.2]];
/// let mut rng = StdRng::seed_from_u64(1);
/// let result = kmeans(&points, &KMeansConfig { k: 2, ..Default::default() }, &mut rng);
/// assert_eq!(result.labels[0], result.labels[1]);
/// assert_ne!(result.labels[0], result.labels[2]);
/// ```
///
/// Panics on empty input.
pub fn kmeans<R: Rng>(points: &[Vec<f64>], cfg: &KMeansConfig, rng: &mut R) -> KMeansResult {
    assert!(!points.is_empty(), "k-means on empty input");
    let dim = points[0].len();
    kmeans_core(points.len(), dim, |i| points[i].as_slice(), cfg, rng)
}

/// [`kmeans`] over flat storage; bit-identical output for the same points,
/// config and RNG state.
pub fn kmeans_matrix<R: Rng>(
    points: &PointMatrix,
    cfg: &KMeansConfig,
    rng: &mut R,
) -> KMeansResult {
    assert!(!points.is_empty(), "k-means on empty input");
    kmeans_core(points.len(), points.dim(), |i| points.row(i), cfg, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..20 {
            pts.push(vec![0.0 + (i as f64) * 0.01, 0.0]);
            pts.push(vec![10.0 + (i as f64) * 0.01, 0.0]);
        }
        pts
    }

    #[test]
    fn separates_two_blobs() {
        let pts = two_blobs();
        let mut rng = StdRng::seed_from_u64(1);
        let res = kmeans(
            &pts,
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
            &mut rng,
        );
        // Points at even indices (left blob) share a label; odd share the
        // other.
        let left = res.labels[0];
        let right = res.labels[1];
        assert_ne!(left, right);
        for i in (0..pts.len()).step_by(2) {
            assert_eq!(res.labels[i], left);
        }
        for i in (1..pts.len()).step_by(2) {
            assert_eq!(res.labels[i], right);
        }
    }

    #[test]
    fn inertia_decreases_with_k() {
        let pts = two_blobs();
        let mut rng = StdRng::seed_from_u64(2);
        let i1 = kmeans(
            &pts,
            &KMeansConfig {
                k: 1,
                ..Default::default()
            },
            &mut rng,
        )
        .inertia;
        let i2 = kmeans(
            &pts,
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
            &mut rng,
        )
        .inertia;
        assert!(i2 < i1);
    }

    #[test]
    fn k_clamped_to_point_count() {
        let pts = vec![vec![0.0], vec![1.0]];
        let mut rng = StdRng::seed_from_u64(3);
        let res = kmeans(
            &pts,
            &KMeansConfig {
                k: 10,
                ..Default::default()
            },
            &mut rng,
        );
        assert_eq!(res.centroids.len(), 2);
    }

    #[test]
    fn identical_points_converge_immediately() {
        let pts = vec![vec![5.0, 5.0]; 8];
        let mut rng = StdRng::seed_from_u64(4);
        let res = kmeans(
            &pts,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
            &mut rng,
        );
        assert!(res.inertia < 1e-12);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let pts = two_blobs();
        let r1 = kmeans(
            &pts,
            &KMeansConfig::default(),
            &mut StdRng::seed_from_u64(9),
        );
        let r2 = kmeans(
            &pts,
            &KMeansConfig::default(),
            &mut StdRng::seed_from_u64(9),
        );
        assert_eq!(r1.labels, r2.labels);
    }

    #[test]
    fn matrix_variant_is_bit_identical() {
        let pts = two_blobs();
        let m = PointMatrix::from_rows(&pts);
        for seed in [1u64, 5, 9] {
            let a = kmeans(
                &pts,
                &KMeansConfig::default(),
                &mut StdRng::seed_from_u64(seed),
            );
            let b = kmeans_matrix(
                &m,
                &KMeansConfig::default(),
                &mut StdRng::seed_from_u64(seed),
            );
            assert_eq!(a.labels, b.labels, "seed {seed}");
            assert_eq!(a.centroids, b.centroids, "seed {seed}");
            assert_eq!(a.inertia.to_bits(), b.inertia.to_bits(), "seed {seed}");
            assert_eq!(a.iterations, b.iterations, "seed {seed}");
        }
    }

    #[test]
    #[should_panic]
    fn empty_input_panics() {
        kmeans(&[], &KMeansConfig::default(), &mut StdRng::seed_from_u64(0));
    }
}
