//! Silhouette score for cluster-quality reporting.
//!
//! Not part of the paper's method itself, but used by the experiment
//! harness to sanity-check the intention clusters DBSCAN produces (and by
//! the ablations comparing clustering choices).

use crate::dist;
use crate::points::PointMatrix;

/// Mean silhouette coefficient over all clustered points.
///
/// `labels[i]` is the cluster of `points[i]`, `None` for noise (noise points
/// are excluded). Points in singleton clusters score 0 by convention.
/// Returns `None` when fewer than two clusters have points.
pub fn mean_silhouette(points: &[Vec<f64>], labels: &[Option<usize>]) -> Option<f64> {
    assert_eq!(points.len(), labels.len());
    silhouette_of(|i| points[i].as_slice(), labels)
}

/// [`mean_silhouette`] over flat storage; identical score for identical
/// points and labels (same traversal and accumulation order).
pub fn mean_silhouette_matrix(points: &PointMatrix, labels: &[Option<usize>]) -> Option<f64> {
    assert_eq!(points.len(), labels.len());
    silhouette_of(|i| points.row(i), labels)
}

fn silhouette_of<'a>(row: impl Fn(usize) -> &'a [f64], labels: &[Option<usize>]) -> Option<f64> {
    let num_clusters = labels.iter().flatten().max().map_or(0, |m| m + 1);
    if num_clusters < 2 {
        return None;
    }
    // Pre-bucket point indices per cluster.
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); num_clusters];
    for (i, l) in labels.iter().enumerate() {
        if let Some(c) = *l {
            buckets[c].push(i);
        }
    }
    let nonempty = buckets.iter().filter(|b| !b.is_empty()).count();
    if nonempty < 2 {
        return None;
    }

    let mut total = 0.0;
    let mut counted = 0usize;
    for (i, l) in labels.iter().enumerate() {
        let Some(own) = *l else { continue };
        if buckets[own].len() <= 1 {
            counted += 1; // silhouette 0 for singletons
            continue;
        }
        // a = mean intra-cluster distance (excluding self).
        let a = buckets[own]
            .iter()
            .filter(|&&j| j != i)
            .map(|&j| dist(row(i), row(j)))
            .sum::<f64>()
            / (buckets[own].len() - 1) as f64;
        // b = min over other clusters of mean distance.
        let mut b = f64::INFINITY;
        for (c, bucket) in buckets.iter().enumerate() {
            if c == own || bucket.is_empty() {
                continue;
            }
            let mean =
                bucket.iter().map(|&j| dist(row(i), row(j))).sum::<f64>() / bucket.len() as f64;
            if mean < b {
                b = mean;
            }
        }
        let s = if a.max(b) > 0.0 {
            (b - a) / a.max(b)
        } else {
            0.0
        };
        total += s;
        counted += 1;
    }
    if counted == 0 {
        None
    } else {
        Some(total / counted as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_separated_blobs_score_high() {
        let mut points = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            points.push(vec![i as f64 * 0.01, 0.0]);
            labels.push(Some(0));
            points.push(vec![100.0 + i as f64 * 0.01, 0.0]);
            labels.push(Some(1));
        }
        let s = mean_silhouette(&points, &labels).unwrap();
        assert!(s > 0.95, "silhouette = {s}");
    }

    #[test]
    fn interleaved_clusters_score_low() {
        let mut points = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            points.push(vec![i as f64 * 0.01]);
            labels.push(Some(i % 2)); // alternate labels inside one blob
        }
        let s = mean_silhouette(&points, &labels).unwrap();
        assert!(s < 0.3, "silhouette = {s}");
    }

    #[test]
    fn noise_is_excluded() {
        let points = vec![
            vec![0.0],
            vec![0.1],
            vec![10.0],
            vec![10.1],
            vec![500.0], // noise
        ];
        let labels = vec![Some(0), Some(0), Some(1), Some(1), None];
        let s = mean_silhouette(&points, &labels).unwrap();
        assert!(s > 0.9);
    }

    #[test]
    fn single_cluster_is_none() {
        let points = vec![vec![0.0], vec![1.0]];
        let labels = vec![Some(0), Some(0)];
        assert!(mean_silhouette(&points, &labels).is_none());
    }

    #[test]
    fn matrix_variant_matches_row_variant() {
        use crate::points::PointMatrix;
        let points = vec![vec![0.0], vec![0.1], vec![10.0], vec![10.1], vec![500.0]];
        let labels = vec![Some(0), Some(0), Some(1), Some(1), None];
        let a = mean_silhouette(&points, &labels).unwrap();
        let b = mean_silhouette_matrix(&PointMatrix::from_rows(&points), &labels).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn all_noise_is_none() {
        let points = vec![vec![0.0], vec![1.0]];
        let labels = vec![None, None];
        assert!(mean_silhouette(&points, &labels).is_none());
    }
}
