//! Flat point storage and exact candidate pruning for the clustering
//! substrate.
//!
//! * [`PointMatrix`] — row-major SoA storage for n×d point sets: one
//!   contiguous `Vec<f64>` plus the dimension, so a region query walks
//!   memory linearly instead of chasing one heap allocation per point.
//! * [`sq_dist_bounded`] — squared Euclidean distance that bails out as
//!   soon as the partial sum exceeds a bound. Because every term `d·d` is
//!   non-negative and IEEE-754 round-to-nearest addition is monotone, the
//!   partial sums never decrease, so an early abort can only happen when
//!   the full sum would also exceed the bound: the `≤ bound` predicate is
//!   decided *exactly*, and the returned value (when within bound) equals
//!   [`crate::sq_dist`] bit-for-bit (same accumulation order).
//! * [`NormIndex`] — exact candidate pruning for eps-region queries via
//!   L2-norm banding. The reverse triangle inequality gives
//!   `|‖a‖ − ‖b‖| ≤ ‖a − b‖`, so `‖a − b‖ ≤ eps` *requires*
//!   `|‖a‖ − ‖b‖| ≤ eps`: scanning only the points whose norm falls in
//!   `[‖q‖ − eps, ‖q‖ + eps]` can never drop a true eps-neighbour. The
//!   band is widened by a small absolute slack to cover floating-point
//!   rounding in the *computed* norms; since every candidate is still
//!   distance-checked exactly, widening affects cost, never correctness.

/// Absolute slack added to each side of a norm band. The computed norm of
/// a point differs from the real one by a few ulps; the band is a
/// *necessary*-condition filter, so erring wide is free (a handful of
/// extra candidates) while erring narrow would lose true neighbours.
const NORM_BAND_SLACK: f64 = 1e-7;

/// Row-major n×d point storage in one contiguous allocation.
///
/// All rows share one `Vec<f64>`; `row(i)` is a zero-copy slice. The
/// clustering kernels (DBSCAN region queries, k-means assignment,
/// silhouette, nearest-centroid) all iterate rows sequentially, so the
/// flat layout turns their inner loops into linear scans.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PointMatrix {
    data: Vec<f64>,
    dim: usize,
    rows: usize,
}

impl PointMatrix {
    /// An empty matrix whose rows will have `dim` entries.
    pub fn with_dim(dim: usize) -> Self {
        PointMatrix {
            data: Vec::new(),
            dim,
            rows: 0,
        }
    }

    /// Copies a `Vec<Vec<f64>>`-shaped point set into flat storage.
    ///
    /// Panics if rows disagree on length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let dim = rows.first().map_or(0, |r| r.len());
        let mut m = PointMatrix {
            data: Vec::with_capacity(dim * rows.len()),
            dim,
            rows: 0,
        };
        for r in rows {
            m.push(r);
        }
        m
    }

    /// Appends one point. Panics if `row.len()` differs from the matrix
    /// dimension.
    pub fn push(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.dim, "ragged row pushed into PointMatrix");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the matrix holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Entries per point.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The `i`-th point as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..i * self.dim + self.dim]
    }

    /// Iterates the points in row order.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        (0..self.rows).map(move |i| self.row(i))
    }

    /// A new matrix holding `indices`' rows, in `indices` order.
    pub fn gather(&self, indices: &[usize]) -> PointMatrix {
        let mut out = PointMatrix {
            data: Vec::with_capacity(indices.len() * self.dim),
            dim: self.dim,
            rows: 0,
        };
        for &i in indices {
            out.data.extend_from_slice(self.row(i));
            out.rows += 1;
        }
        out
    }

    /// Copies the matrix back into one `Vec<f64>` per point.
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        (0..self.rows).map(|i| self.row(i).to_vec()).collect()
    }
}

/// Squared Euclidean distance with an early abort: `Some(sq)` iff the full
/// squared distance is `≤ bound`, `None` otherwise (including when any
/// coordinate is NaN — NaN distances never satisfy `≤`, matching the
/// behaviour of `sq_dist(a, b) <= bound`).
///
/// The sum accumulates in the same left-to-right order as
/// [`crate::sq_dist`], checking the bound every 8 dimensions; the returned
/// value is therefore bit-identical to `sq_dist`. Partial sums of
/// non-negative terms are monotone non-decreasing under IEEE-754
/// round-to-nearest, so an intermediate abort is exact: the full sum could
/// only have been larger.
#[inline]
pub fn sq_dist_bounded(a: &[f64], b: &[f64], bound: f64) -> Option<f64> {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let mut s = 0.0;
    let mut i = 0;
    while i < n {
        let end = (i + 8).min(n);
        while i < end {
            let d = a[i] - b[i];
            s += d * d;
            i += 1;
        }
        if s > bound {
            return None;
        }
    }
    // NaN sums fall through the `>` checks above; the final `<=` rejects
    // them, preserving `sq_dist(a, b) <= bound` exactly.
    if s <= bound {
        Some(s)
    } else {
        None
    }
}

/// An exact eps-region candidate filter: points sorted by L2 norm, so a
/// region query only scans the band `|‖candidate‖ − ‖query‖| ≤ eps`
/// (plus [`NORM_BAND_SLACK`]) instead of the whole collection.
///
/// Points whose norm is NaN (any NaN coordinate) are keyed as `+∞`: they
/// sort to the end, match only bands around `+∞`, and the exact distance
/// check rejects them wherever they do appear — mirroring the brute-force
/// scan, where a NaN point neighbours nothing, not even itself.
#[derive(Debug, Clone)]
pub struct NormIndex {
    /// Point indices sorted ascending by norm key.
    order: Vec<u32>,
    /// Norm key of `order[k]` (ascending; NaN norms mapped to `+∞`).
    sorted_keys: Vec<f64>,
}

impl NormIndex {
    /// The band-search key for one point: its L2 norm, with NaN mapped to
    /// `+∞` so comparisons stay total.
    #[inline]
    pub fn key_of(point: &[f64]) -> f64 {
        let mut s = 0.0;
        for &x in point {
            s += x * x;
        }
        let norm = s.sqrt();
        if norm.is_nan() {
            f64::INFINITY
        } else {
            norm
        }
    }

    /// Builds the index over every row of `points`.
    pub fn build(points: &PointMatrix) -> Self {
        assert!(
            points.len() <= u32::MAX as usize,
            "NormIndex supports up to u32::MAX points"
        );
        let keys: Vec<f64> = (0..points.len())
            .map(|i| Self::key_of(points.row(i)))
            .collect();
        let mut order: Vec<u32> = (0..points.len() as u32).collect();
        // Keys are NaN-free (NaN → +∞), so total_cmp agrees with `<` and
        // the binary searches below can use plain comparisons.
        order.sort_by(|&a, &b| {
            keys[a as usize]
                .total_cmp(&keys[b as usize])
                .then(a.cmp(&b))
        });
        let sorted_keys = order.iter().map(|&i| keys[i as usize]).collect();
        NormIndex { order, sorted_keys }
    }

    /// Indices of every point whose norm key lies within `eps` (+ slack)
    /// of `key` — a superset of the true eps-neighbourhood of any query
    /// point with that norm. Returned in ascending-norm order, *not*
    /// index order.
    pub fn band(&self, key: f64, eps: f64) -> &[u32] {
        &self.order[self.band_range(key, eps)]
    }

    /// The same band as [`NormIndex::band`], but as a range of norm
    /// *ranks* — positions into [`NormIndex::order`]. A caller that has
    /// permuted its point storage into norm order can scan this range as
    /// contiguous rows instead of chasing `order[...]` indirections.
    pub fn band_range(&self, key: f64, eps: f64) -> std::ops::Range<usize> {
        let lo = key - eps - NORM_BAND_SLACK;
        let hi = key + eps + NORM_BAND_SLACK;
        let start = self.sorted_keys.partition_point(|&k| k < lo);
        let end = self.sorted_keys.partition_point(|&k| k <= hi);
        start..end.max(start)
    }

    /// The norm-rank permutation: `order()[r]` is the original index of
    /// the point with norm rank `r`.
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// Norm key of the point with rank `r` — exactly what
    /// [`NormIndex::key_of`] returned for `order()[r]` at build time.
    pub fn key_at(&self, rank: usize) -> f64 {
        self.sorted_keys[rank]
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sq_dist;

    #[test]
    fn matrix_round_trips_rows() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let m = PointMatrix::from_rows(&rows);
        assert_eq!((m.len(), m.dim()), (3, 2));
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.to_rows(), rows);
        assert_eq!(m.iter_rows().count(), 3);
        let g = m.gather(&[2, 0]);
        assert_eq!(g.row(0), &[5.0, 6.0]);
        assert_eq!(g.row(1), &[1.0, 2.0]);
    }

    #[test]
    fn empty_and_zero_dim_matrices() {
        let m = PointMatrix::from_rows(&[]);
        assert!(m.is_empty());
        assert_eq!(m.iter_rows().count(), 0);
        let z = PointMatrix::from_rows(&[vec![], vec![]]);
        assert_eq!((z.len(), z.dim()), (2, 0));
        assert_eq!(z.row(1), &[] as &[f64]);
    }

    #[test]
    fn push_fixes_dimension() {
        let mut m = PointMatrix::with_dim(3);
        m.push(&[1.0, 2.0, 3.0]);
        assert_eq!((m.len(), m.dim()), (1, 3));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_push_panics() {
        let mut m = PointMatrix::with_dim(2);
        m.push(&[1.0]);
    }

    #[test]
    fn bounded_distance_matches_exact_within_bound() {
        let a: Vec<f64> = (0..28).map(|i| (i as f64) * 0.13).collect();
        let b: Vec<f64> = (0..28).map(|i| (i as f64) * 0.11 + 0.5).collect();
        let exact = sq_dist(&a, &b);
        // Within the bound: bit-identical value.
        assert_eq!(sq_dist_bounded(&a, &b, exact), Some(exact));
        assert_eq!(sq_dist_bounded(&a, &b, exact * 2.0), Some(exact));
        // Beyond the bound: pruned.
        assert_eq!(sq_dist_bounded(&a, &b, exact * 0.99), None);
        assert_eq!(sq_dist_bounded(&a, &b, 0.0), None);
    }

    #[test]
    fn bounded_distance_rejects_nan_like_the_predicate() {
        let a = [f64::NAN, 0.0];
        let b = [0.0, 0.0];
        assert_eq!(sq_dist_bounded(&a, &b, f64::INFINITY), None);
        assert_eq!(sq_dist_bounded(&a, &a, 1.0), None);
        // The predicate it mirrors: a NaN distance satisfies no bound.
        let nan_within_bound = sq_dist(&a, &b) <= f64::INFINITY;
        assert!(!nan_within_bound);
    }

    #[test]
    fn band_contains_all_true_neighbours() {
        // Brute-force cross-check on a small deterministic cloud.
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|i| {
                let x = ((i * 37) % 17) as f64 / 5.0;
                let y = ((i * 53) % 23) as f64 / 7.0;
                vec![x, y]
            })
            .collect();
        let m = PointMatrix::from_rows(&rows);
        let idx = NormIndex::build(&m);
        let eps = 0.8;
        for q in 0..m.len() {
            let band = idx.band(NormIndex::key_of(m.row(q)), eps);
            for j in 0..m.len() {
                if sq_dist(m.row(q), m.row(j)) <= eps * eps {
                    assert!(
                        band.contains(&(j as u32)),
                        "band dropped true neighbour {j} of {q}"
                    );
                }
            }
        }
    }

    #[test]
    fn nan_points_key_to_infinity_and_leave_finite_bands() {
        let rows = vec![vec![0.0, 0.0], vec![f64::NAN, 1.0], vec![0.1, 0.0]];
        let m = PointMatrix::from_rows(&rows);
        let idx = NormIndex::build(&m);
        assert_eq!(NormIndex::key_of(m.row(1)), f64::INFINITY);
        let band = idx.band(NormIndex::key_of(m.row(0)), 0.5);
        assert!(band.contains(&0) && band.contains(&2));
        assert!(!band.contains(&1));
    }
}
