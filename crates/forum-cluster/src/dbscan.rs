//! DBSCAN (Ester, Kriegel, Sander, Xu — KDD 1996).
//!
//! The paper clusters segment weight vectors with DBSCAN because it (1)
//! needs no a-priori cluster count, (2) finds arbitrarily-shaped clusters
//! and (3) has a noise notion (Section 6). [`dbscan`] is the exact
//! algorithm with an O(n²) neighbourhood search — fine up to a few tens of
//! thousands of 28-dim points. [`dbscan_sampled`] scales to millions of
//! segments the way the paper's "library for very large datasets" does: it
//! clusters a uniform sample exactly, then assigns every remaining point to
//! the cluster of the nearest sampled core point within `eps` (noise
//! otherwise).

use crate::sq_dist;
use rand::seq::SliceRandom;
use rand::Rng;

/// DBSCAN parameters.
#[derive(Debug, Clone, Copy)]
pub struct DbscanConfig {
    /// Neighbourhood radius (Euclidean).
    pub eps: f64,
    /// Minimum neighbourhood size (including the point itself) for a core
    /// point.
    pub min_pts: usize,
}

impl Default for DbscanConfig {
    fn default() -> Self {
        // Calibrated for 28-dim segment weight vectors with entries in
        // [0, 1]; see the pipeline's cluster-count experiments (Table 3).
        DbscanConfig {
            eps: 1.0,
            min_pts: 8,
        }
    }
}

/// Clustering outcome: `labels[i]` is `Some(cluster)` or `None` for noise.
#[derive(Debug, Clone)]
pub struct DbscanResult {
    /// Per-point cluster assignment.
    pub labels: Vec<Option<usize>>,
    /// Number of clusters found.
    pub num_clusters: usize,
}

impl DbscanResult {
    /// Mean vector of each cluster, in cluster-id order (the centroids of
    /// Fig. 3). Empty input yields an empty list.
    pub fn centroids(&self, points: &[Vec<f64>]) -> Vec<Vec<f64>> {
        if points.is_empty() || self.num_clusters == 0 {
            return Vec::new();
        }
        let dim = points[0].len();
        let mut sums = vec![vec![0.0; dim]; self.num_clusters];
        let mut counts = vec![0usize; self.num_clusters];
        for (p, label) in points.iter().zip(&self.labels) {
            if let Some(c) = *label {
                counts[c] += 1;
                for (s, v) in sums[c].iter_mut().zip(p) {
                    *s += v;
                }
            }
        }
        for (sum, &count) in sums.iter_mut().zip(&counts) {
            if count > 0 {
                for s in sum.iter_mut() {
                    *s /= count as f64;
                }
            }
        }
        sums
    }

    /// Number of points labelled noise.
    pub fn num_noise(&self) -> usize {
        self.labels.iter().filter(|l| l.is_none()).count()
    }
}

/// Exact DBSCAN over `points`.
///
/// ```
/// use forum_cluster::{dbscan, DbscanConfig};
/// let points = vec![
///     vec![0.0], vec![0.1], vec![0.2],     // one dense blob
///     vec![9.0], vec![9.1], vec![9.2],     // another
///     vec![50.0],                          // noise
/// ];
/// let result = dbscan(&points, &DbscanConfig { eps: 0.5, min_pts: 2 });
/// assert_eq!(result.num_clusters, 2);
/// assert_eq!(result.num_noise(), 1);
/// ```
pub fn dbscan(points: &[Vec<f64>], cfg: &DbscanConfig) -> DbscanResult {
    let n = points.len();
    let eps2 = cfg.eps * cfg.eps;
    let mut labels: Vec<Option<usize>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut num_clusters = 0;

    let neighbors = |i: usize| -> Vec<usize> {
        (0..n)
            .filter(|&j| sq_dist(&points[i], &points[j]) <= eps2)
            .collect()
    };

    for i in 0..n {
        if visited[i] {
            continue;
        }
        visited[i] = true;
        let nbrs = neighbors(i);
        if nbrs.len() < cfg.min_pts {
            continue; // provisionally noise; may become a border point later
        }
        let cluster = num_clusters;
        num_clusters += 1;
        labels[i] = Some(cluster);
        // Expand the cluster breadth-first.
        let mut queue: Vec<usize> = nbrs;
        let mut qi = 0;
        while qi < queue.len() {
            let j = queue[qi];
            qi += 1;
            if labels[j].is_none() {
                labels[j] = Some(cluster);
            }
            if !visited[j] {
                visited[j] = true;
                let jn = neighbors(j);
                if jn.len() >= cfg.min_pts {
                    queue.extend(jn);
                }
            }
        }
    }
    DbscanResult {
        labels,
        num_clusters,
    }
}

/// Scalable DBSCAN: exact clustering of a uniform sample of up to
/// `max_sample` points, then nearest-core-point assignment of the rest.
///
/// Points within `eps` of a sampled core point join that core's cluster;
/// everything else is noise. With a sample that covers the density modes
/// (thousands of points for the 28-dim segment vectors), the assignment
/// matches exact DBSCAN on all but boundary points.
pub fn dbscan_sampled<R: Rng>(
    points: &[Vec<f64>],
    cfg: &DbscanConfig,
    max_sample: usize,
    rng: &mut R,
) -> DbscanResult {
    let n = points.len();
    if n <= max_sample {
        return dbscan(points, cfg);
    }
    let mut indices: Vec<usize> = (0..n).collect();
    indices.shuffle(rng);
    indices.truncate(max_sample);
    let sample: Vec<Vec<f64>> = indices.iter().map(|&i| points[i].clone()).collect();
    let sample_result = dbscan(&sample, cfg);

    // Core points of the sample: points whose sample-neighbourhood reaches
    // min_pts (scaled down by the sampling ratio, at least 2).
    let eps2 = cfg.eps * cfg.eps;
    let scaled_min = ((cfg.min_pts * max_sample) as f64 / n as f64).ceil() as usize;
    let scaled_min = scaled_min.max(2);
    let mut cores: Vec<(usize, usize)> = Vec::new(); // (sample idx, cluster)
    for (si, label) in sample_result.labels.iter().enumerate() {
        if let Some(c) = *label {
            let count = sample
                .iter()
                .filter(|p| sq_dist(p, &sample[si]) <= eps2)
                .count();
            if count >= scaled_min {
                cores.push((si, c));
            }
        }
    }

    let mut labels = vec![None; n];
    for (&orig, label) in indices.iter().zip(&sample_result.labels) {
        labels[orig] = *label;
    }
    let in_sample: std::collections::HashSet<usize> = indices.iter().copied().collect();
    for i in 0..n {
        if in_sample.contains(&i) {
            continue;
        }
        let mut best: Option<(f64, usize)> = None;
        for &(si, c) in &cores {
            let d = sq_dist(&points[i], &sample[si]);
            if d <= eps2 && best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, c));
            }
        }
        labels[i] = best.map(|(_, c)| c);
    }
    DbscanResult {
        labels,
        num_clusters: sample_result.num_clusters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Three tight blobs plus an outlier.
    fn blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        let centers = [[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]];
        for c in centers {
            for dx in [-0.1, 0.0, 0.1] {
                for dy in [-0.1, 0.0, 0.1] {
                    pts.push(vec![c[0] + dx, c[1] + dy]);
                }
            }
        }
        pts.push(vec![50.0, 50.0]); // outlier
        pts
    }

    #[test]
    fn finds_three_blobs_and_noise() {
        let pts = blobs();
        let res = dbscan(
            &pts,
            &DbscanConfig {
                eps: 0.5,
                min_pts: 4,
            },
        );
        assert_eq!(res.num_clusters, 3);
        assert_eq!(res.num_noise(), 1);
        assert_eq!(res.labels.last().unwrap(), &None);
    }

    #[test]
    fn points_in_same_blob_share_label() {
        let pts = blobs();
        let res = dbscan(
            &pts,
            &DbscanConfig {
                eps: 0.5,
                min_pts: 4,
            },
        );
        for chunk in res.labels[..27].chunks(9) {
            let first = chunk[0];
            assert!(first.is_some());
            assert!(chunk.iter().all(|&l| l == first));
        }
    }

    #[test]
    fn min_pts_larger_than_any_blob_means_all_noise() {
        let pts = blobs();
        let res = dbscan(
            &pts,
            &DbscanConfig {
                eps: 0.5,
                min_pts: 100,
            },
        );
        assert_eq!(res.num_clusters, 0);
        assert_eq!(res.num_noise(), pts.len());
    }

    #[test]
    fn large_eps_merges_everything() {
        let pts = blobs();
        let res = dbscan(
            &pts,
            &DbscanConfig {
                eps: 1000.0,
                min_pts: 2,
            },
        );
        assert_eq!(res.num_clusters, 1);
        assert_eq!(res.num_noise(), 0);
    }

    #[test]
    fn centroids_match_blob_centers() {
        let pts = blobs();
        let res = dbscan(
            &pts,
            &DbscanConfig {
                eps: 0.5,
                min_pts: 4,
            },
        );
        let cents = res.centroids(&pts);
        assert_eq!(cents.len(), 3);
        // First blob centered at origin.
        assert!(cents[0][0].abs() < 0.01 && cents[0][1].abs() < 0.01);
    }

    #[test]
    fn empty_input() {
        let res = dbscan(&[], &DbscanConfig::default());
        assert_eq!(res.num_clusters, 0);
        assert!(res.labels.is_empty());
        assert!(res.centroids(&[]).is_empty());
    }

    #[test]
    fn sampled_matches_exact_on_small_input() {
        let pts = blobs();
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = DbscanConfig {
            eps: 0.5,
            min_pts: 4,
        };
        let exact = dbscan(&pts, &cfg);
        let sampled = dbscan_sampled(&pts, &cfg, 10_000, &mut rng);
        assert_eq!(exact.num_clusters, sampled.num_clusters);
    }

    #[test]
    fn sampled_recovers_blobs_from_large_input() {
        // 3 blobs of 400 points each; sample only 150.
        let mut rng = StdRng::seed_from_u64(42);
        let mut pts = Vec::new();
        let centers = [[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]];
        for c in centers {
            for k in 0..400 {
                let dx = ((k % 20) as f64 - 10.0) / 40.0;
                let dy = ((k / 20) as f64 - 10.0) / 40.0;
                pts.push(vec![c[0] + dx, c[1] + dy]);
            }
        }
        let cfg = DbscanConfig {
            eps: 0.6,
            min_pts: 5,
        };
        let res = dbscan_sampled(&pts, &cfg, 150, &mut rng);
        assert_eq!(res.num_clusters, 3);
        // Nearly every point should be assigned.
        assert!(
            res.num_noise() < pts.len() / 20,
            "noise: {}",
            res.num_noise()
        );
    }

    #[test]
    fn border_points_join_a_cluster() {
        // A dense core with a border point within eps of the core but with a
        // sparse own neighbourhood.
        let mut pts: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64 * 0.01]).collect();
        pts.push(vec![0.3]); // border: within eps of core points
        let res = dbscan(
            &pts,
            &DbscanConfig {
                eps: 0.3,
                min_pts: 4,
            },
        );
        assert_eq!(res.num_clusters, 1);
        assert_eq!(res.labels[6], Some(0));
    }
}
