//! DBSCAN (Ester, Kriegel, Sander, Xu — KDD 1996).
//!
//! The paper clusters segment weight vectors with DBSCAN because it (1)
//! needs no a-priori cluster count, (2) finds arbitrarily-shaped clusters
//! and (3) has a noise notion (Section 6). The production entry point is
//! [`dbscan_matrix`]: an exact engine over flat [`PointMatrix`] storage
//! that prunes region-query candidates with an L2-norm band
//! ([`NormIndex`]), aborts distance sums early ([`sq_dist_bounded`]),
//! evaluates every surviving candidate pair **once** (half-band symmetric
//! scans), fans the pair work out across workers balanced by estimated
//! pair count, and merges the clusters through one shared lock-free
//! union-find ([`AtomicDsu`]) — producing labels and cluster ids
//! **bit-identical** to the textbook sequential scan ([`dbscan_reference`])
//! for every thread count.
//!
//! The equivalence rests on the sequential algorithm's output being
//! order-canonical (see DESIGN.md "Clustering at scale"): clusters are the
//! connected components of the core-point eps-graph numbered by each
//! component's minimum core index, a border point takes the smallest such
//! cluster id among its in-eps cores, and everything else is noise — all
//! properties of the *point set*, not of any traversal order.
//!
//! [`dbscan_sampled`] scales past what even the pruned exact engine can
//! cluster the way the paper's "library for very large datasets" does: it
//! clusters a uniform sample exactly, then assigns every remaining point
//! to the cluster of the nearest sampled core point within `eps` (noise
//! otherwise). Both its passes run on the same banded parallel core.

use crate::points::{sq_dist_bounded, NormIndex, PointMatrix};
use crate::sq_dist;
use rand::seq::SliceRandom;
use rand::Rng;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::Instant;

/// DBSCAN parameters.
#[derive(Debug, Clone, Copy)]
pub struct DbscanConfig {
    /// Neighbourhood radius (Euclidean).
    pub eps: f64,
    /// Minimum neighbourhood size (including the point itself) for a core
    /// point.
    pub min_pts: usize,
}

impl Default for DbscanConfig {
    fn default() -> Self {
        // Calibrated for 28-dim segment weight vectors with entries in
        // [0, 1]; see the pipeline's cluster-count experiments (Table 3).
        DbscanConfig {
            eps: 1.0,
            min_pts: 8,
        }
    }
}

/// Work counters for one clustering run — the raw material for the
/// `offline/region_queries` / `offline/dist_evals` metrics and the
/// pruning-efficiency gauge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DbscanStats {
    /// Eps-neighbourhood scans performed (the engine runs two per point:
    /// core determination, then adjacency/border collection).
    pub region_queries: u64,
    /// Candidate pairs whose distance was actually evaluated (band
    /// survivors; the brute-force scan evaluates `n` per region query).
    /// The half-band engine evaluates each surviving unordered pair once,
    /// and its adjacency pass skips pairs whose endpoints are already in
    /// the same component — so in parallel runs this counter depends on
    /// scheduling (the labels never do).
    pub dist_evals: u64,
    /// Points pushed onto a BFS seed queue ([`dbscan_reference`] only;
    /// the union-find engine has no queue).
    pub enqueued: u64,
}

/// Clustering outcome: `labels[i]` is `Some(cluster)` or `None` for noise.
#[derive(Debug, Clone)]
pub struct DbscanResult {
    /// Per-point cluster assignment.
    pub labels: Vec<Option<usize>>,
    /// Number of clusters found.
    pub num_clusters: usize,
    /// Work counters for the run that produced this result.
    pub stats: DbscanStats,
}

impl DbscanResult {
    /// Mean vector of each cluster, in cluster-id order (the centroids of
    /// Fig. 3). Empty input yields an empty list.
    pub fn centroids(&self, points: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let dim = points.first().map_or(0, |p| p.len());
        self.centroids_of(points.len(), dim, |i| &points[i])
    }

    /// [`Self::centroids`] over flat storage.
    pub fn centroids_matrix(&self, points: &PointMatrix) -> Vec<Vec<f64>> {
        self.centroids_of(points.len(), points.dim(), |i| points.row(i))
    }

    fn centroids_of<'a>(
        &self,
        n: usize,
        dim: usize,
        row: impl Fn(usize) -> &'a [f64],
    ) -> Vec<Vec<f64>> {
        if n == 0 || self.num_clusters == 0 {
            return Vec::new();
        }
        let mut sums = vec![vec![0.0; dim]; self.num_clusters];
        let mut counts = vec![0usize; self.num_clusters];
        for (i, label) in self.labels.iter().enumerate() {
            if let Some(c) = *label {
                counts[c] += 1;
                for (s, v) in sums[c].iter_mut().zip(row(i)) {
                    *s += v;
                }
            }
        }
        for (sum, &count) in sums.iter_mut().zip(&counts) {
            if count > 0 {
                for s in sum.iter_mut() {
                    *s /= count as f64;
                }
            }
        }
        sums
    }

    /// Number of points labelled noise.
    pub fn num_noise(&self) -> usize {
        self.labels.iter().filter(|l| l.is_none()).count()
    }
}

/// Lock-free disjoint-set forest over `u32` slots, shared by every worker
/// of the adjacency pass. Union-by-minimum-root via compare-and-swap, find
/// with path halving.
///
/// Correctness rests on one invariant: **parent values only decrease**. A
/// union makes the larger root point at the smaller (`lo < hi`), and path
/// halving replaces `parent[x]` with its grandparent — already `≤` the old
/// parent — guarded by a CAS so a concurrent smaller write is never
/// overwritten. Monotone-decreasing parents mean the forest is acyclic at
/// every instant and every `find` terminates. `Relaxed` ordering suffices:
/// each slot is only ever CAS-transitioned through decreasing values (no
/// cross-slot ordering is relied on mid-run), and the thread join at the
/// end of the parallel pass publishes the final structure to the
/// sequential relabel. The forest *shape* depends on scheduling; the final
/// clustering never does — it reads only connectivity, which is the
/// transitive closure of the attempted unions regardless of order.
struct AtomicDsu {
    parent: Vec<AtomicU32>,
}

impl AtomicDsu {
    fn new(n: usize) -> Self {
        AtomicDsu {
            parent: (0..n as u32).map(AtomicU32::new).collect(),
        }
    }

    fn find(&self, mut x: u32) -> u32 {
        loop {
            let p = self.parent[x as usize].load(Ordering::Relaxed);
            if p == x {
                return x;
            }
            let g = self.parent[p as usize].load(Ordering::Relaxed);
            if g == p {
                return p;
            }
            // Path halving: x → grandparent. A failed CAS means another
            // thread already wrote an even smaller parent — keep it.
            let _ = self.parent[x as usize].compare_exchange(
                p,
                g,
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
            x = g;
        }
    }

    /// Whether `a` and `b` are currently in one component. A `true` is
    /// definitive (parent edges only ever come from real unions); a
    /// `false` may miss a union racing in on another thread, which at the
    /// call sites only costs one redundant distance evaluation.
    fn connected(&self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    fn union(&self, a: u32, b: u32) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        while ra != rb {
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            match self.parent[hi as usize].compare_exchange(
                hi,
                lo,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                // `hi` stopped being a root under us; chase the new roots.
                Err(_) => {
                    ra = self.find(hi);
                    rb = self.find(lo);
                }
            }
        }
    }
}

/// Contiguous per-worker index ranges covering `0..n`.
fn worker_ranges(n: usize, threads: usize) -> Vec<(usize, usize)> {
    let threads = forum_par::auto_threads(threads).min(n).max(1);
    let chunk = n.div_ceil(threads);
    (0..threads)
        .map(|w| (w * chunk, ((w + 1) * chunk).min(n)))
        .filter(|(lo, hi)| lo < hi)
        .collect()
}

/// Contiguous ranges covering `0..weights.len()` with approximately equal
/// total weight per range. The half-band pair scans need this: a
/// low-norm-rank point owns every band pair above it while the highest
/// rank owns none, so equal-*count* ranges would hand the first worker
/// roughly twice the distance work of the last.
fn weighted_ranges(weights: &[u64], threads: usize) -> Vec<(usize, usize)> {
    let n = weights.len();
    let threads = forum_par::auto_threads(threads).min(n).max(1);
    let total: u64 = weights.iter().sum();
    let per = total / threads as u64 + 1;
    let mut ranges = Vec::with_capacity(threads);
    let mut lo = 0usize;
    let mut acc = 0u64;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        if acc >= per && ranges.len() + 1 < threads {
            ranges.push((lo, i + 1));
            lo = i + 1;
            acc = 0;
        }
    }
    if lo < n {
        ranges.push((lo, n));
    }
    ranges
}

/// Exact DBSCAN over flat point storage, parallel across `threads` workers
/// (`0` = one per core). Output — labels *and* cluster numbering — is
/// bit-identical to [`dbscan_reference`] for every thread count.
///
/// Phases:
/// 1. **Core determination** (parallel, half-band): each unordered
///    candidate pair `(r, c)` with rank `r < c` is distance-checked once —
///    from the lower rank's side — and credited to both endpoints'
///    neighbour counts (the self-distance is checked explicitly so NaN
///    points still neighbour nothing); `core[i] = count ≥ min_pts`.
///    Workers own contiguous rank ranges balanced by half-band size, and
///    merge their per-point count vectors at the barrier.
/// 2. **Adjacency** (parallel, half-band): the same pair enumeration, now
///    into one *shared* lock-free forest. Pairs with no core endpoint are
///    skipped outright; core–core pairs already in one component skip the
///    distance arithmetic entirely (a skipped edge would connect points
///    that are already connected); surviving core–core eps-edges are
///    unioned and core–noncore eps-pairs collected as `(border, core)`.
/// 3. **Canonical relabel** (sequential, O(n·α)): scanning core points in
///    index order assigns each component its cluster id at the component's
///    minimum core index — exactly the id the sequential algorithm's outer
///    loop would have handed it. Border points then take the minimum
///    cluster id among their in-eps cores.
///
/// Half-band enumeration is exact even though the floating-point band
/// edges need not be symmetric: the band is a *necessary*-condition filter
/// whose slack covers norm rounding, so any true eps-pair lies inside both
/// endpoints' bands, and an edge-of-band candidate visible from only one
/// side fails the exact distance check from either.
pub fn dbscan_matrix(points: &PointMatrix, cfg: &DbscanConfig, threads: usize) -> DbscanResult {
    let started = Instant::now();
    let n = points.len();
    if n == 0 {
        return DbscanResult {
            labels: Vec::new(),
            num_clusters: 0,
            stats: DbscanStats::default(),
        };
    }
    let eps2 = cfg.eps * cfg.eps;
    let index = NormIndex::build(points);
    // Permute the rows into norm order once: a band is then a contiguous
    // run of ranks, so the hot scans below stream adjacent rows instead of
    // chasing `order[...]` indirections all over the original matrix —
    // the difference between cache-resident and DRAM-latency-bound once
    // the matrix outgrows L2. Phases 1–3a work entirely in rank space;
    // 3b maps back through the permutation. The per-pair arithmetic is
    // untouched, so labels stay bit-identical.
    let by_rank: Vec<usize> = index.order().iter().map(|&i| i as usize).collect();
    let sorted = points.gather(&by_rank);
    // Upper half-band sizes (plus the self check) double as the per-rank
    // work estimate for balancing the contiguous worker ranges.
    let half_width: Vec<u64> = (0..n)
        .map(|r| {
            let band = index.band_range(index.key_at(r), cfg.eps);
            band.end.saturating_sub(r + 1) as u64 + 1
        })
        .collect();
    let ranges = weighted_ranges(&half_width, threads);
    let workers = ranges.len();

    // Phase 1: symmetric half-band neighbour counts → core flags (rank
    // space). Each unordered pair is evaluated once and credited to both
    // endpoints; counts for ranks outside a worker's own range land in its
    // private count vector and merge at the barrier.
    let pass1 = forum_par::parallel_map(&ranges, workers, |&(lo, hi)| {
        let mut counts = vec![0u32; n];
        let mut dist_evals = 0u64;
        for r in lo..hi {
            let row = sorted.row(r);
            // Self-distance: 0 for finite rows (always ≤ eps²), NaN — and
            // therefore uncounted — for NaN rows, as in the full scan.
            dist_evals += 1;
            if sq_dist_bounded(row, row, eps2).is_some() {
                counts[r] += 1;
            }
            let band = index.band_range(index.key_at(r), cfg.eps);
            for c in (r + 1)..band.end {
                dist_evals += 1;
                if sq_dist_bounded(row, sorted.row(c), eps2).is_some() {
                    counts[r] += 1;
                    counts[c] += 1;
                }
            }
        }
        (counts, dist_evals)
    });
    let mut stats = DbscanStats {
        region_queries: n as u64,
        ..DbscanStats::default()
    };
    let mut totals = vec![0u32; n];
    for (counts, dist_evals) in pass1 {
        stats.dist_evals += dist_evals;
        for (t, c) in totals.iter_mut().zip(counts) {
            *t += c;
        }
    }
    let core: Vec<bool> = totals.iter().map(|&c| c as usize >= cfg.min_pts).collect();
    drop(totals);

    // Phase 2: half-band edges into one shared lock-free forest; border
    // pairs for non-core points. Only pairs with a core endpoint matter,
    // and already-connected core pairs skip the distance entirely.
    let dsu = AtomicDsu::new(n);
    let core_ref = &core;
    let dsu_ref = &dsu;
    let pass2 = forum_par::parallel_map(&ranges, workers, |&(lo, hi)| {
        let mut borders: Vec<(u32, u32)> = Vec::new();
        let mut dist_evals = 0u64;
        for r in lo..hi {
            let row = sorted.row(r);
            let r_core = core_ref[r];
            let band = index.band_range(index.key_at(r), cfg.eps);
            // `c` indexes the core flags, the matrix rows, and the DSU in
            // lockstep — a range loop is the clear spelling.
            #[allow(clippy::needless_range_loop)]
            for c in (r + 1)..band.end {
                let c_core = core_ref[c];
                if !r_core && !c_core {
                    continue;
                }
                if r_core && c_core && dsu_ref.connected(r as u32, c as u32) {
                    continue;
                }
                dist_evals += 1;
                if sq_dist_bounded(row, sorted.row(c), eps2).is_some() {
                    if r_core && c_core {
                        dsu_ref.union(r as u32, c as u32);
                    } else if r_core {
                        borders.push((c as u32, r as u32));
                    } else {
                        borders.push((r as u32, c as u32));
                    }
                }
            }
        }
        (borders, dist_evals)
    });
    stats.region_queries += n as u64;
    let mut border_lists: Vec<Vec<(u32, u32)>> = Vec::with_capacity(workers);
    for (borders, dist_evals) in pass2 {
        stats.dist_evals += dist_evals;
        border_lists.push(borders);
    }

    // Phase 3: canonical numbering — scanning cores in *original* index
    // order hands each component its id at the component's minimum core
    // index (rank order would number clusters by norm instead, breaking
    // bit-identity with the reference engine).
    let mut rank_of: Vec<u32> = vec![0; n];
    for (r, &i) in by_rank.iter().enumerate() {
        rank_of[i] = r as u32;
    }
    let mut labels: Vec<Option<usize>> = vec![None; n];
    let mut root_to_id: Vec<u32> = vec![u32::MAX; n];
    let mut num_clusters = 0usize;
    for i in 0..n {
        let r = rank_of[i];
        if core[r as usize] {
            let root = dsu.find(r) as usize;
            if root_to_id[root] == u32::MAX {
                root_to_id[root] = num_clusters as u32;
                num_clusters += 1;
            }
            labels[i] = Some(root_to_id[root] as usize);
        }
    }
    // Border points: minimum cluster id among in-eps cores (the first
    // cluster whose expansion would have reached them sequentially).
    for borders in border_lists {
        for (b, c) in borders {
            let id = root_to_id[dsu.find(c) as usize] as usize;
            let slot = &mut labels[by_rank[b as usize]];
            if slot.is_none_or(|cur| id < cur) {
                *slot = Some(id);
            }
        }
    }

    record_cluster_metrics(n, &stats, started);
    DbscanResult {
        labels,
        num_clusters,
        stats,
    }
}

/// Publishes one run's counters to the process-wide registry (no-op while
/// observability is disabled).
fn record_cluster_metrics(n: usize, stats: &DbscanStats, started: Instant) {
    let obs = forum_obs::Registry::global();
    if !obs.is_enabled() {
        return;
    }
    obs.record_duration("offline/cluster_ns", started.elapsed());
    obs.incr("offline/region_queries", stats.region_queries);
    obs.incr("offline/dist_evals", stats.dist_evals);
    // Pruning efficiency: share of the brute-force candidate pairs
    // (`region_queries × n`) the norm band eliminated before any distance
    // arithmetic ran.
    let brute = (stats.region_queries as f64) * (n as f64);
    if brute > 0.0 {
        let pct = 100.0 * (1.0 - stats.dist_evals as f64 / brute);
        obs.gauge("offline/cluster_prune_pct")
            .set(pct.clamp(0.0, 100.0).round() as i64);
    }
}

/// Exact DBSCAN over `points`.
///
/// Runs [`dbscan_matrix`] single-threaded; kept as the convenient
/// row-slice entry point.
///
/// ```
/// use forum_cluster::{dbscan, DbscanConfig};
/// let points = vec![
///     vec![0.0], vec![0.1], vec![0.2],     // one dense blob
///     vec![9.0], vec![9.1], vec![9.2],     // another
///     vec![50.0],                          // noise
/// ];
/// let result = dbscan(&points, &DbscanConfig { eps: 0.5, min_pts: 2 });
/// assert_eq!(result.num_clusters, 2);
/// assert_eq!(result.num_noise(), 1);
/// ```
pub fn dbscan(points: &[Vec<f64>], cfg: &DbscanConfig) -> DbscanResult {
    dbscan_matrix(&PointMatrix::from_rows(points), cfg, 1)
}

/// The textbook sequential DBSCAN: one brute-force region query per point,
/// breadth-first cluster expansion. Kept as the ground truth the engine is
/// verified against (tests and the `cluster_scale` benchmark) — its output
/// defines the canonical labels [`dbscan_matrix`] must reproduce.
///
/// The seed queue tracks an `in_queue` bitmap: `queue.extend(neighbours)`
/// used to re-enqueue points already queued, growing the queue to
/// O(n·|neighbourhood|) on dense clusters. Dropping duplicates cannot
/// change labels — a point's label is fixed at its *first* dequeue, and
/// re-processing a labelled, visited point is a no-op — so the bitmap only
/// bounds memory ([`DbscanStats::enqueued`] ≤ n per cluster).
pub fn dbscan_reference(points: &[Vec<f64>], cfg: &DbscanConfig) -> DbscanResult {
    let n = points.len();
    let eps2 = cfg.eps * cfg.eps;
    let mut labels: Vec<Option<usize>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut num_clusters = 0;
    let mut stats = DbscanStats::default();

    let neighbors = |i: usize, stats: &mut DbscanStats| -> Vec<usize> {
        stats.region_queries += 1;
        stats.dist_evals += n as u64;
        (0..n)
            .filter(|&j| sq_dist(&points[i], &points[j]) <= eps2)
            .collect()
    };

    // A point enqueued in any expansion is labelled by the time that
    // expansion drains, so the bitmap never needs resetting between
    // clusters: re-enqueueing an already-processed point is always a no-op.
    let mut in_queue = vec![false; n];
    for i in 0..n {
        if visited[i] {
            continue;
        }
        visited[i] = true;
        let nbrs = neighbors(i, &mut stats);
        if nbrs.len() < cfg.min_pts {
            continue; // provisionally noise; may become a border point later
        }
        let cluster = num_clusters;
        num_clusters += 1;
        labels[i] = Some(cluster);
        // Expand the cluster breadth-first.
        let mut queue: Vec<usize> = Vec::with_capacity(nbrs.len());
        for j in nbrs {
            if !in_queue[j] {
                in_queue[j] = true;
                stats.enqueued += 1;
                queue.push(j);
            }
        }
        let mut qi = 0;
        while qi < queue.len() {
            let j = queue[qi];
            qi += 1;
            if labels[j].is_none() {
                labels[j] = Some(cluster);
            }
            if !visited[j] {
                visited[j] = true;
                let jn = neighbors(j, &mut stats);
                if jn.len() >= cfg.min_pts {
                    for k in jn {
                        if !in_queue[k] {
                            in_queue[k] = true;
                            stats.enqueued += 1;
                            queue.push(k);
                        }
                    }
                }
            }
        }
    }
    DbscanResult {
        labels,
        num_clusters,
        stats,
    }
}

/// Scalable DBSCAN: exact clustering of a uniform sample of up to
/// `max_sample` points, then nearest-core-point assignment of the rest.
///
/// Runs [`dbscan_sampled_matrix`] single-threaded; kept as the convenient
/// row-slice entry point.
pub fn dbscan_sampled<R: Rng>(
    points: &[Vec<f64>],
    cfg: &DbscanConfig,
    max_sample: usize,
    rng: &mut R,
) -> DbscanResult {
    dbscan_sampled_matrix(&PointMatrix::from_rows(points), cfg, max_sample, 1, rng)
}

/// [`dbscan_sampled`] over flat storage with `threads` workers: the sample
/// is clustered by the exact parallel engine, sample cores are determined
/// with banded parallel region queries, and the remaining points are
/// assigned in parallel against a norm index over just the core points.
///
/// Points within `eps` of a sampled core point join that core's cluster
/// (nearest core wins; ties go to the earlier core in sample order, same
/// as the sequential scan); everything else is noise. With a sample that
/// covers the density modes, the assignment matches exact DBSCAN on all
/// but boundary points — and since `n ≤ max_sample` short-circuits into
/// [`dbscan_matrix`], a large enough `max_sample` makes it exact outright.
pub fn dbscan_sampled_matrix<R: Rng>(
    points: &PointMatrix,
    cfg: &DbscanConfig,
    max_sample: usize,
    threads: usize,
    rng: &mut R,
) -> DbscanResult {
    let n = points.len();
    if n <= max_sample {
        return dbscan_matrix(points, cfg, threads);
    }
    let mut indices: Vec<usize> = (0..n).collect();
    indices.shuffle(rng);
    indices.truncate(max_sample);
    let sample = points.gather(&indices);
    let sample_result = dbscan_matrix(&sample, cfg, threads);
    let mut stats = sample_result.stats;

    // Core points of the sample: points whose sample-neighbourhood reaches
    // min_pts (scaled down by the sampling ratio, at least 2).
    let eps2 = cfg.eps * cfg.eps;
    let scaled_min = ((cfg.min_pts * max_sample) as f64 / n as f64).ceil() as usize;
    let scaled_min = scaled_min.max(2);
    let sample_index = NormIndex::build(&sample);
    // As in `dbscan_matrix`: keep a norm-ordered copy so every band scan
    // streams contiguous rows. The per-pair arithmetic is identical, so
    // the flags (and with them the labels) don't change.
    let sample_by_rank: Vec<usize> = sample_index.order().iter().map(|&i| i as usize).collect();
    let sample_sorted = sample.gather(&sample_by_rank);
    let dist_evals = AtomicU64::new(0);
    let sample_ranges = worker_ranges(sample.len(), threads);
    let core_flags = forum_par::parallel_map(&sample_ranges, sample_ranges.len(), |&(lo, hi)| {
        let mut flags = Vec::with_capacity(hi - lo);
        let mut evals = 0u64;
        for si in lo..hi {
            if sample_result.labels[si].is_none() {
                flags.push(false);
                continue;
            }
            let row = sample.row(si);
            let band = sample_index.band_range(NormIndex::key_of(row), cfg.eps);
            let mut count = 0usize;
            for c in band {
                evals += 1;
                if sq_dist_bounded(row, sample_sorted.row(c), eps2).is_some() {
                    count += 1;
                }
            }
            flags.push(count >= scaled_min);
        }
        dist_evals.fetch_add(evals, Ordering::Relaxed);
        flags
    });
    stats.region_queries += sample.len() as u64;
    let mut cores: Vec<(u32, u32)> = Vec::new(); // (sample idx, cluster)
    for (si, is_core) in core_flags.into_iter().flatten().enumerate() {
        if is_core {
            cores.push((si as u32, sample_result.labels[si].unwrap() as u32));
        }
    }

    let mut labels = vec![None; n];
    let mut in_sample = vec![false; n];
    for (&orig, label) in indices.iter().zip(&sample_result.labels) {
        labels[orig] = *label;
        in_sample[orig] = true;
    }

    // Assignment pass: each remaining point takes the cluster of its
    // nearest in-eps core, ties broken toward the earlier core in sample
    // order (`(distance, core position)` lexicographic minimum — exactly
    // what a first-strict-minimum scan over `cores` produces).
    let core_points = sample.gather(&cores.iter().map(|&(si, _)| si as usize).collect::<Vec<_>>());
    let core_index = NormIndex::build(&core_points);
    // Norm-ordered copy again: the band walks contiguous rows; `p` stays
    // the core's *position* in `cores`, so the `(distance, position)`
    // tie-break — a minimum over the same candidate set, hence
    // scan-order independent — picks the same core as before.
    let core_by_rank: Vec<usize> = core_index.order().iter().map(|&p| p as usize).collect();
    let core_sorted = core_points.gather(&core_by_rank);
    let rest: Vec<u32> = (0..n as u32).filter(|&i| !in_sample[i as usize]).collect();
    let assigned = forum_par::parallel_map(&rest, threads, |&i| {
        let row = points.row(i as usize);
        let band = core_index.band_range(NormIndex::key_of(row), cfg.eps);
        let mut evals = 0u64;
        let mut best: Option<(f64, u32)> = None;
        for c in band {
            evals += 1;
            if let Some(d) = sq_dist_bounded(row, core_sorted.row(c), eps2) {
                let p = core_index.order()[c];
                if best.is_none_or(|(bd, bp)| d < bd || (d == bd && p < bp)) {
                    best = Some((d, p));
                }
            }
        }
        dist_evals.fetch_add(evals, Ordering::Relaxed);
        best.map(|(_, p)| cores[p as usize].1 as usize)
    });
    stats.region_queries += rest.len() as u64;
    stats.dist_evals += dist_evals.load(Ordering::Relaxed);
    for (&i, label) in rest.iter().zip(assigned) {
        labels[i as usize] = label;
    }
    DbscanResult {
        labels,
        num_clusters: sample_result.num_clusters,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Three tight blobs plus an outlier.
    fn blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        let centers = [[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]];
        for c in centers {
            for dx in [-0.1, 0.0, 0.1] {
                for dy in [-0.1, 0.0, 0.1] {
                    pts.push(vec![c[0] + dx, c[1] + dy]);
                }
            }
        }
        pts.push(vec![50.0, 50.0]); // outlier
        pts
    }

    /// A messier deterministic cloud: blobs with uneven density, a bridge
    /// of border points, and a few stray outliers.
    fn messy_cloud() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for k in 0..120u64 {
            let x = ((k * 2654435761) % 1000) as f64 / 250.0;
            let y = ((k * 40503) % 1000) as f64 / 250.0;
            let (cx, cy) = match k % 3 {
                0 => (0.0, 0.0),
                1 => (6.0, 1.0),
                _ => (3.0, 5.0),
            };
            pts.push(vec![cx + x, cy + y]);
        }
        pts.push(vec![100.0, 100.0]);
        pts.push(vec![-50.0, 20.0]);
        pts
    }

    #[test]
    fn finds_three_blobs_and_noise() {
        let pts = blobs();
        let res = dbscan(
            &pts,
            &DbscanConfig {
                eps: 0.5,
                min_pts: 4,
            },
        );
        assert_eq!(res.num_clusters, 3);
        assert_eq!(res.num_noise(), 1);
        assert_eq!(res.labels.last().unwrap(), &None);
    }

    #[test]
    fn points_in_same_blob_share_label() {
        let pts = blobs();
        let res = dbscan(
            &pts,
            &DbscanConfig {
                eps: 0.5,
                min_pts: 4,
            },
        );
        for chunk in res.labels[..27].chunks(9) {
            let first = chunk[0];
            assert!(first.is_some());
            assert!(chunk.iter().all(|&l| l == first));
        }
    }

    #[test]
    fn min_pts_larger_than_any_blob_means_all_noise() {
        let pts = blobs();
        let res = dbscan(
            &pts,
            &DbscanConfig {
                eps: 0.5,
                min_pts: 100,
            },
        );
        assert_eq!(res.num_clusters, 0);
        assert_eq!(res.num_noise(), pts.len());
    }

    #[test]
    fn large_eps_merges_everything() {
        let pts = blobs();
        let res = dbscan(
            &pts,
            &DbscanConfig {
                eps: 1000.0,
                min_pts: 2,
            },
        );
        assert_eq!(res.num_clusters, 1);
        assert_eq!(res.num_noise(), 0);
    }

    #[test]
    fn centroids_match_blob_centers() {
        let pts = blobs();
        let res = dbscan(
            &pts,
            &DbscanConfig {
                eps: 0.5,
                min_pts: 4,
            },
        );
        let cents = res.centroids(&pts);
        assert_eq!(cents.len(), 3);
        // First blob centered at origin.
        assert!(cents[0][0].abs() < 0.01 && cents[0][1].abs() < 0.01);
        // Flat storage produces the same centroids.
        let m = PointMatrix::from_rows(&pts);
        assert_eq!(res.centroids_matrix(&m), cents);
    }

    #[test]
    fn empty_input() {
        let res = dbscan(&[], &DbscanConfig::default());
        assert_eq!(res.num_clusters, 0);
        assert!(res.labels.is_empty());
        assert!(res.centroids(&[]).is_empty());
    }

    #[test]
    fn engine_matches_reference_on_fixed_clouds() {
        for pts in [blobs(), messy_cloud()] {
            let m = PointMatrix::from_rows(&pts);
            for cfg in [
                DbscanConfig {
                    eps: 0.5,
                    min_pts: 4,
                },
                DbscanConfig {
                    eps: 1.2,
                    min_pts: 3,
                },
                DbscanConfig {
                    eps: 0.05,
                    min_pts: 2,
                },
            ] {
                let reference = dbscan_reference(&pts, &cfg);
                for threads in [1usize, 2, 4, 8] {
                    let got = dbscan_matrix(&m, &cfg, threads);
                    assert_eq!(
                        got.labels, reference.labels,
                        "labels diverged at threads={threads} eps={}",
                        cfg.eps
                    );
                    assert_eq!(got.num_clusters, reference.num_clusters);
                }
            }
        }
    }

    #[test]
    fn engine_matches_reference_on_random_cloud() {
        // Bigger than the fixed clouds so the half-band pair scan crosses
        // worker boundaries and the shared forest sees real contention.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 1000.0
        };
        let mut pts = Vec::new();
        for k in 0..700 {
            let (cx, cy) = match k % 4 {
                0 => (0.0, 0.0),
                1 => (3.0, 0.5),
                2 => (1.5, 3.0),
                _ => (20.0, 20.0), // sparse far group → mostly noise
            };
            let spread = if k % 4 == 3 { 8.0 } else { 1.2 };
            pts.push(vec![cx + next() * spread, cy + next() * spread]);
        }
        let cfg = DbscanConfig {
            eps: 0.35,
            min_pts: 5,
        };
        let reference = dbscan_reference(&pts, &cfg);
        let m = PointMatrix::from_rows(&pts);
        for threads in [1usize, 2, 4, 8] {
            let got = dbscan_matrix(&m, &cfg, threads);
            assert_eq!(got.labels, reference.labels, "threads = {threads}");
            assert_eq!(got.num_clusters, reference.num_clusters);
        }
    }

    #[test]
    fn atomic_dsu_connects_components_under_contention() {
        let n = 4096u32;
        let dsu = AtomicDsu::new(n as usize);
        // Four threads racing to union the same chain plus strided edges:
        // heavy CAS contention, one final component.
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let dsu = &dsu;
                scope.spawn(move || {
                    for i in 0..n - 1 {
                        dsu.union(i, i + 1);
                        if i + t + 2 < n {
                            dsu.union(i, i + t + 2);
                        }
                    }
                });
            }
        });
        for i in 0..n {
            assert_eq!(dsu.find(i), 0, "point {i} not folded into root 0");
            // The monotone-parent invariant the lock-free scheme rests on.
            assert!(dsu.parent[i as usize].load(Ordering::Relaxed) <= i);
        }
    }

    #[test]
    fn weighted_ranges_cover_and_balance() {
        // Triangular weights (the half-band shape): ranges must partition
        // the index space and no range may hog the total weight.
        let weights: Vec<u64> = (0..1000u64).map(|i| 1000 - i).collect();
        for threads in [1usize, 2, 4, 8] {
            let ranges = weighted_ranges(&weights, threads);
            assert!(ranges.len() <= threads);
            let mut next = 0usize;
            for &(lo, hi) in &ranges {
                assert_eq!(lo, next);
                assert!(hi > lo);
                next = hi;
            }
            assert_eq!(next, weights.len());
            if threads > 1 && ranges.len() > 1 {
                let total: u64 = weights.iter().sum();
                for &(lo, hi) in &ranges {
                    let w: u64 = weights[lo..hi].iter().sum();
                    assert!(
                        w <= total / ranges.len() as u64 * 2 + weights[lo],
                        "range {lo}..{hi} holds {w} of {total}"
                    );
                }
            }
        }
    }

    #[test]
    fn engine_handles_nan_points_like_reference() {
        let mut pts = blobs();
        pts.push(vec![f64::NAN, 0.0]);
        pts.push(vec![0.0, f64::NAN]);
        let cfg = DbscanConfig {
            eps: 0.5,
            min_pts: 4,
        };
        let reference = dbscan_reference(&pts, &cfg);
        let got = dbscan_matrix(&PointMatrix::from_rows(&pts), &cfg, 4);
        assert_eq!(got.labels, reference.labels);
        assert_eq!(got.labels[pts.len() - 1], None);
    }

    #[test]
    fn reference_seed_queue_stays_bounded_on_dense_blob() {
        // A single blob where every point neighbours every other: the old
        // `queue.extend(jn)` made the queue grow to ~n² entries; with the
        // in_queue bitmap each point is enqueued at most once.
        let n = 200;
        let pts: Vec<Vec<f64>> = (0..n).map(|i| vec![(i as f64) * 1e-4]).collect();
        let res = dbscan_reference(
            &pts,
            &DbscanConfig {
                eps: 0.5,
                min_pts: 4,
            },
        );
        assert_eq!(res.num_clusters, 1);
        assert!(
            res.stats.enqueued <= n as u64,
            "queue blew up: {} enqueues for {n} points",
            res.stats.enqueued
        );
    }

    #[test]
    fn sampled_matches_exact_on_small_input() {
        let pts = blobs();
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = DbscanConfig {
            eps: 0.5,
            min_pts: 4,
        };
        let exact = dbscan(&pts, &cfg);
        let sampled = dbscan_sampled(&pts, &cfg, 10_000, &mut rng);
        assert_eq!(exact.num_clusters, sampled.num_clusters);
    }

    #[test]
    fn sampled_recovers_blobs_from_large_input() {
        // 3 blobs of 400 points each; sample only 150.
        let mut rng = StdRng::seed_from_u64(42);
        let mut pts = Vec::new();
        let centers = [[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]];
        for c in centers {
            for k in 0..400 {
                let dx = ((k % 20) as f64 - 10.0) / 40.0;
                let dy = ((k / 20) as f64 - 10.0) / 40.0;
                pts.push(vec![c[0] + dx, c[1] + dy]);
            }
        }
        let cfg = DbscanConfig {
            eps: 0.6,
            min_pts: 5,
        };
        let res = dbscan_sampled(&pts, &cfg, 150, &mut rng);
        assert_eq!(res.num_clusters, 3);
        // Nearly every point should be assigned.
        assert!(
            res.num_noise() < pts.len() / 20,
            "noise: {}",
            res.num_noise()
        );
    }

    #[test]
    fn sampled_is_thread_count_independent() {
        let mut pts = Vec::new();
        for k in 0..900u64 {
            let cx = (k % 3) as f64 * 8.0;
            let x = ((k * 131) % 97) as f64 / 60.0;
            let y = ((k * 37) % 89) as f64 / 60.0;
            pts.push(vec![cx + x, y]);
        }
        let cfg = DbscanConfig {
            eps: 0.7,
            min_pts: 6,
        };
        let m = PointMatrix::from_rows(&pts);
        let mut rng = StdRng::seed_from_u64(9);
        let baseline = dbscan_sampled_matrix(&m, &cfg, 200, 1, &mut rng);
        for threads in [2usize, 4, 8] {
            let mut rng = StdRng::seed_from_u64(9);
            let got = dbscan_sampled_matrix(&m, &cfg, 200, threads, &mut rng);
            assert_eq!(got.labels, baseline.labels, "threads = {threads}");
            assert_eq!(got.num_clusters, baseline.num_clusters);
        }
        // And the row-slice wrapper is the threads=1 case.
        let mut rng = StdRng::seed_from_u64(9);
        let wrapper = dbscan_sampled(&pts, &cfg, 200, &mut rng);
        assert_eq!(wrapper.labels, baseline.labels);
    }

    #[test]
    fn border_points_join_a_cluster() {
        // A dense core with a border point within eps of the core but with a
        // sparse own neighbourhood.
        let mut pts: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64 * 0.01]).collect();
        pts.push(vec![0.3]); // border: within eps of core points
        let res = dbscan(
            &pts,
            &DbscanConfig {
                eps: 0.3,
                min_pts: 4,
            },
        );
        assert_eq!(res.num_clusters, 1);
        assert_eq!(res.labels[6], Some(0));
    }

    #[test]
    fn engine_counts_pruning_work() {
        let pts = blobs();
        let res = dbscan_matrix(
            &PointMatrix::from_rows(&pts),
            &DbscanConfig {
                eps: 0.5,
                min_pts: 4,
            },
            2,
        );
        let n = pts.len() as u64;
        assert_eq!(res.stats.region_queries, 2 * n);
        // The blobs sit at distinct radii, so banding must beat brute force.
        assert!(res.stats.dist_evals < res.stats.region_queries * n);
        assert!(res.stats.dist_evals > 0);
    }
}
