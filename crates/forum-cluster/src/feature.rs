//! Segment weight vectors (Section 6, Eqs. 5 & 6).
//!
//! Clustering raw CM counts is ineffective (long segments dominate), so the
//! paper weights each of the 14 CM features twice:
//!
//! * **Type 1 (Eq. 5)** — strength *within the segment*: the feature's count
//!   divided by the total count of its CM in the segment.
//! * **Type 2 (Eq. 6)** — strength *within the post*: the feature's count in
//!   the segment divided by its count in the whole post — the portion of the
//!   post's occurrences that fall in this segment.
//!
//! The segment's representation is the 28-element concatenation of the two,
//! mirroring the feature vector `Fs[1..28]` of Fig. 3.

use forum_nlp::cm::{DistTables, CMS, NUM_FEATURES};

/// Dimensionality of a segment feature vector: two weights per CM feature.
pub const SEGMENT_FEATURE_DIM: usize = 2 * NUM_FEATURES;

/// Builds the 28-dimensional weight vector of a segment.
///
/// `segment` is the segment's distribution tables; `whole` the enclosing
/// document's. CMs absent from the segment (or post) contribute zero
/// weights rather than NaNs.
pub fn segment_features(segment: &DistTables, whole: &DistTables) -> Vec<f64> {
    let mut out = Vec::with_capacity(SEGMENT_FEATURE_DIM);
    // Type 1: within-segment relative strength (Eq. 5).
    for cm in CMS {
        let row = segment.row(cm);
        let total: u32 = row.iter().sum();
        for &v in row {
            out.push(if total == 0 {
                0.0
            } else {
                f64::from(v) / f64::from(total)
            });
        }
    }
    // Type 2: share of the whole post's occurrences (Eq. 6).
    for cm in CMS {
        let seg_row = segment.row(cm);
        let doc_row = whole.row(cm);
        for (&s, &d) in seg_row.iter().zip(doc_row) {
            out.push(if d == 0 {
                0.0
            } else {
                f64::from(s) / f64::from(d)
            });
        }
    }
    debug_assert_eq!(out.len(), SEGMENT_FEATURE_DIM);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use forum_nlp::cm::Cm;

    fn tables(tense: [u32; 3], subj: [u32; 3]) -> DistTables {
        DistTables {
            tense,
            subj,
            qneg: [0, 0, 1],
            pasact: [0, 1],
            pos: [1, 2, 0],
        }
    }

    #[test]
    fn dimension_is_28() {
        let t = tables([2, 3, 0], [1, 0, 0]);
        let f = segment_features(&t, &t);
        assert_eq!(f.len(), 28);
        assert_eq!(SEGMENT_FEATURE_DIM, 28);
    }

    #[test]
    fn type1_weights_are_within_cm_ratios() {
        let t = tables([2, 3, 0], [1, 0, 0]);
        let f = segment_features(&t, &t);
        // Tense row occupies features 0..3.
        assert!((f[0] - 0.4).abs() < 1e-12);
        assert!((f[1] - 0.6).abs() < 1e-12);
        assert_eq!(f[2], 0.0);
        // Subject: all mass on first person.
        let off = Cm::Subj.feature_offset();
        assert!((f[off] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn type2_weights_are_segment_share_of_post() {
        // Post has 5 past-tense verbs, 4 of them in this segment (the
        // paper's own example for Eq. 6).
        let seg = tables([0, 4, 0], [0, 0, 0]);
        let whole = tables([1, 5, 0], [2, 0, 0]);
        let f = segment_features(&seg, &whole);
        let type2_tense_past = NUM_FEATURES + 1; // second feature of tense block
        assert!((f[type2_tense_past] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn zero_cm_contributes_zero_not_nan() {
        let seg = DistTables::default();
        let whole = DistTables::default();
        let f = segment_features(&seg, &whole);
        assert!(f.iter().all(|v| v.is_finite()));
        assert!(f.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn full_segment_type2_is_all_ones_where_present() {
        let t = tables([2, 3, 0], [1, 0, 0]);
        let f = segment_features(&t, &t);
        // Segment == whole post: every present feature's type-2 weight is 1.
        for (i, &v) in f[NUM_FEATURES..].iter().enumerate() {
            let count = t.flatten()[i];
            if count > 0 {
                assert!((v - 1.0).abs() < 1e-12, "feature {i}");
            } else {
                assert_eq!(v, 0.0, "feature {i}");
            }
        }
    }

    #[test]
    fn type1_rows_sum_to_one_when_present() {
        let t = tables([2, 3, 1], [1, 2, 3]);
        let f = segment_features(&t, &t);
        let tense_sum: f64 = f[0..3].iter().sum();
        assert!((tense_sum - 1.0).abs() < 1e-12);
        let subj_off = Cm::Subj.feature_offset();
        let subj_sum: f64 = f[subj_off..subj_off + 3].iter().sum();
        assert!((subj_sum - 1.0).abs() < 1e-12);
    }
}
