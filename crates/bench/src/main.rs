//! `experiments` — regenerates every table and figure of the paper's
//! evaluation (Section 9) on the synthetic corpora.
//!
//! Usage: `cargo run --release -p bench --bin experiments -- <experiment>`
//!
//! Experiments (see DESIGN.md's experiment index):
//!   table2            annotator agreement on segmentation
//!   fig7              annotator label categories
//!   exp_cm_vs_terms   CM-based Tile vs term-based TextTiling (multWinDiff)
//!   fig8              border-selection mechanisms (borders/coherence/error)
//!   fig9              coherence & depth functions
//!   fig3              intention-cluster centroids
//!   table3            segment granularity before/after grouping
//!   table4            method comparison (mean precision) + Fig. 10 + Table 5
//!   table6            large-collection timings (StackOverflow profile)
//!   fig11             timing sweep over collection sizes
//!   qps               batch query throughput vs worker threads
//!   serve_scale       sharded pool under open-loop load: p50/p99 vs offered QPS
//!   cluster_scale     exact vs norm-pruned vs parallel DBSCAN at 10k-200k points
//!   store_scale       cold start, heap hydration vs mapped view, 10k-200k segments
//!   early_term        impact-ordered early termination vs exhaustive scans + TA smoke
//!   ingest_throughput live WAL-durable adds + compaction vs full rebuild
//!   ablate_top_n      Algorithm 2's n = 2k heuristic
//!   ablate_refinement segmentation refinement on/off
//!   ablate_weights    Eq. 6 weights on/off
//!   ablate_greedy     greedy voting vs single-pass greedy
//!   all               everything above at default scale
//!
//! Optional flags: `--posts N` scales collection sizes, `--queries N` the
//! query sample, `--seed N` the corpus seed, `--metrics-out P` a JSON-lines
//! path for the run's phase breakdowns (e.g. `BENCH_table6.jsonl`).

mod experiments;
mod util;

use util::Options;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Hidden re-exec mode used by store_scale: its positional operands
    // (mode, path, doc, k) must not reach the experiment-name loop.
    if args.first().map(String::as_str) == Some("store_scale_child") {
        experiments::store_scale::child(&args[1..]);
    }
    let (cmds, opts) = Options::parse(&args);
    if cmds.is_empty() {
        eprintln!(
            "usage: experiments [--posts N] [--queries N] [--seed N] \
             [--metrics-out P.jsonl] <experiment>..."
        );
        eprintln!("experiments: table2 fig7 exp_cm_vs_terms fig8 fig9 fig3 table3 table4");
        eprintln!("             table6 fig11 qps serve_scale cluster_scale store_scale early_term");
        eprintln!("             ingest_throughput");
        eprintln!("             ablate_top_n");
        eprintln!("             ablate_refinement");
        eprintln!("             ablate_weights");
        eprintln!("             ablate_greedy obs_overhead trace_overhead all");
        std::process::exit(2);
    }
    if opts.metrics_out.is_some() {
        forum_obs::Registry::global().set_enabled(true);
    }
    for cmd in &cmds {
        run(cmd, &opts);
    }
    if let Some(path) = &opts.metrics_out {
        let snapshot = forum_obs::Registry::global().snapshot();
        if let Err(e) = forum_obs::export::write_json_lines(std::path::Path::new(path), &snapshot) {
            eprintln!("error: could not write metrics to {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {} metrics to {path}", snapshot.metrics.len());
    }
}

fn run(cmd: &str, opts: &Options) {
    match cmd {
        "table2" => experiments::table2::run(opts),
        "datasets" => experiments::datasets::run(opts),
        "fig7" => experiments::fig7::run(opts),
        "exp_cm_vs_terms" => experiments::cm_vs_terms::run(opts),
        "fig8" => experiments::fig8::run(opts),
        "fig9" => experiments::fig9::run(opts),
        "fig3" => experiments::fig3::run(opts),
        "table3" => experiments::table3::run(opts),
        "table4" => experiments::table4::run(opts),
        "table6" => experiments::table6::run(opts),
        "fig11" => experiments::fig11::run(opts),
        "qps" => experiments::qps::run(opts),
        "serve_scale" => experiments::serve_scale::run(opts),
        "cluster_scale" => experiments::cluster_scale::run(opts),
        "store_scale" => experiments::store_scale::run(opts),
        "early_term" => experiments::early_term::run(opts),
        "ingest_throughput" => experiments::ingest::run(opts),
        "ablate_top_n" => experiments::ablations::top_n(opts),
        "ablate_refinement" => experiments::ablations::refinement(opts),
        "ablate_weights" => experiments::ablations::weights(opts),
        "ablate_greedy" => experiments::ablations::greedy_voting(opts),
        "ablate_weighted_sum" => experiments::ablations::weighted_sum(opts),
        "ablate_bm25" => experiments::ablations::bm25(opts),
        "exp_drift" => experiments::ablations::drift(opts),
        "ablate_combination" => experiments::ablations::combination(opts),
        "obs_overhead" => experiments::ablations::obs_overhead(opts),
        "trace_overhead" => experiments::ablations::trace_overhead(opts),
        "calibrate_greedy" => experiments::ablations::greedy_threshold_sweep(opts),
        "calibrate_dbscan" => experiments::ablations::dbscan_sweep(opts),
        "calibrate_tiling" => experiments::ablations::tiling_sweep(opts),
        "diag_intent" => experiments::ablations::diag_intent(opts),
        "diag_borders" => experiments::ablations::diag_borders(opts),
        "all" => {
            for c in [
                "datasets",
                "table2",
                "fig7",
                "exp_cm_vs_terms",
                "fig8",
                "fig9",
                "fig3",
                "table3",
                "table4",
                "table6",
                "fig11",
                "ablate_top_n",
                "ablate_refinement",
                "ablate_weights",
                "ablate_greedy",
                "ablate_weighted_sum",
                "ablate_bm25",
                "exp_drift",
                "ablate_combination",
            ] {
                run(c, opts);
            }
        }
        other => {
            eprintln!("unknown experiment: {other}");
            std::process::exit(2);
        }
    }
}
