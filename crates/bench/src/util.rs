//! Shared helpers for the experiments binary.

use forum_corpus::{Corpus, Domain, GenConfig};
use intentmatch::PostCollection;

/// Command-line options shared by all experiments.
#[derive(Debug, Clone)]
pub struct Options {
    /// Base collection size (experiments scale it as appropriate).
    pub posts: usize,
    /// Number of query posts for retrieval experiments.
    pub queries: usize,
    /// Corpus seed.
    pub seed: u64,
    /// When set, enable the process-wide metrics registry for the run and
    /// write a JSON-lines snapshot (per-phase histograms, counters,
    /// gauges) to this path on exit — e.g. `BENCH_table6.jsonl`.
    pub metrics_out: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            posts: 2000,
            queries: 60,
            seed: 20180417, // ICDE 2018 :-)
            metrics_out: None,
        }
    }
}

impl Options {
    /// Parses `[--posts N] [--queries N] [--seed N] [--metrics-out P] cmd...`.
    pub fn parse(args: &[String]) -> (Vec<String>, Options) {
        let mut opts = Options::default();
        let mut cmds = Vec::new();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--posts" => {
                    opts.posts = args[i + 1].parse().expect("--posts takes a number");
                    i += 2;
                }
                "--queries" => {
                    opts.queries = args[i + 1].parse().expect("--queries takes a number");
                    i += 2;
                }
                "--seed" => {
                    opts.seed = args[i + 1].parse().expect("--seed takes a number");
                    i += 2;
                }
                "--metrics-out" => {
                    opts.metrics_out =
                        Some(args.get(i + 1).expect("--metrics-out takes a path").clone());
                    i += 2;
                }
                cmd => {
                    cmds.push(cmd.to_string());
                    i += 1;
                }
            }
        }
        (cmds, opts)
    }

    /// Generates a corpus of `n` posts for `domain`.
    pub fn corpus(&self, domain: Domain, n: usize) -> Corpus {
        Corpus::generate(&GenConfig {
            domain,
            num_posts: n,
            seed: self.seed,
        })
    }

    /// Generates and parses a collection.
    pub fn collection(&self, domain: Domain, n: usize) -> (Corpus, PostCollection) {
        let corpus = self.corpus(domain, n);
        let coll = PostCollection::from_corpus(&corpus);
        (corpus, coll)
    }
}

/// Prints a section header.
pub fn header(title: &str) {
    println!();
    println!("================================================================");
    println!("{title}");
    println!("================================================================");
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Prints a simple aligned table: a header row and data rows.
pub fn print_table(columns: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = columns.iter().map(|c| c.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = columns.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}
