//! Table 6 — execution times on the large (StackOverflow-profile)
//! collection: average segmentation time per post, total segment-grouping
//! time, and average retrieval time.
//!
//! Paper (1.5M posts, 2.93M segments): avg segmentation 0.067 s/post,
//! grouping 3.18 min total, avg retrieval 2.9 ms. Absolute numbers are
//! hardware-bound; what should reproduce is the *profile*: per-post
//! segmentation cost flat, grouping minutes-scale via sampling, retrieval
//! in the low milliseconds even at 15x the small collection's size.

use crate::util::{header, print_table, Options};
use forum_corpus::Domain;
use intentmatch::{IntentPipeline, PipelineConfig, PostCollection};
use std::time::Instant;

pub fn run(opts: &Options) {
    header("Table 6 — Execution times (StackOverflow profile)");
    // The full dump is 1.5M posts; scale to what a test machine does in
    // minutes while keeping the 15x ratio to the Fig. 11 collection.
    let n = (opts.posts * 15).max(15_000);
    println!("collection: {n} posts (paper: 1.5M; same 15x ratio to the timing-sweep corpus)\n");
    let corpus = opts.corpus(Domain::Programming, n);

    // The paper runs this phase "in parallel parts"; so do we.
    let t = Instant::now();
    let coll = PostCollection::from_corpus_parallel(&corpus, 0);
    let parse_time = t.elapsed();

    let pipe = IntentPipeline::build(
        &coll,
        &PipelineConfig {
            threads: 0,
            ..Default::default()
        },
    );

    // Retrieval timing over a query sample.
    let queries = 200.min(n);
    let t = Instant::now();
    let mut total_hits = 0usize;
    for q in 0..queries {
        total_hits += pipe.top_k(&coll, q, 5).len();
    }
    let retrieval = t.elapsed() / queries as u32;

    let seg_per_post = (parse_time + pipe.timings.segmentation + pipe.timings.features) / n as u32;
    let rows = vec![vec![
        format!("{:.4} sec", seg_per_post.as_secs_f64()),
        format!("{:.2} min", pipe.timings.clustering.as_secs_f64() / 60.0),
        format!("{:.3} ms", retrieval.as_secs_f64() * 1e3),
    ]];
    print_table(
        &[
            "Avg Segmentation Time",
            "Total Segment Grouping",
            "Avg Retrieval Time",
        ],
        &rows,
    );
    println!(
        "\n(segmentation time includes parsing, POS tagging and CM annotation, as in the paper;"
    );
    println!(
        "clusters: {}, mean hits/query: {:.1})",
        pipe.num_clusters(),
        total_hits as f64 / queries as f64
    );
    println!("Paper: 0.067 sec | 3.18 min | 2.9 ms (on 1.5M posts / 2.93M segments).");
}
