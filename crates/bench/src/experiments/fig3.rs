//! Fig. 3 — the derived intention-cluster centroids.
//!
//! Prints the 28-dimensional centroid of every intention cluster DBSCAN
//! finds on the HP corpus, plus the all-segments mean, in the same layout
//! as the paper's figure: 14 type-1 rows (Eq. 5 weights) followed by 14
//! type-2 rows (Eq. 6 weights).

use crate::util::{header, print_table, Options};
use forum_corpus::Domain;
use forum_nlp::cm::{CM_FEATURES, NUM_FEATURES};
use intentmatch::{IntentPipeline, PipelineConfig};

pub fn run(opts: &Options) {
    header("Fig. 3 — Intention cluster centroids (HP Forum)");
    let (_, coll) = opts.collection(Domain::TechSupport, 1000.min(opts.posts));
    let pipe = IntentPipeline::build(&coll, &PipelineConfig::default());
    println!(
        "clusters: {} (paper: 4 for the HP dataset), noise segments: {}\n",
        pipe.num_clusters(),
        pipe.num_noise
    );

    // The "All" column: mean feature vector across all refined segments'
    // clusters weighted by size — approximated by the centroid mean.
    let k = pipe.num_clusters();
    let mut head = vec!["CM - Feature", "Type"];
    let names: Vec<String> = (0..k).map(|c| format!("I{c}")).collect();
    head.extend(names.iter().map(String::as_str));
    let mut rows = Vec::new();
    for row_idx in 0..2 * NUM_FEATURES {
        let (feature, ty) = if row_idx < NUM_FEATURES {
            (CM_FEATURES[row_idx], "Eq.5")
        } else {
            (CM_FEATURES[row_idx - NUM_FEATURES], "Eq.6")
        };
        let mut row = vec![feature.to_string(), ty.to_string()];
        for c in 0..k {
            row.push(format!("{:.2}", pipe.centroids[c][row_idx]));
        }
        rows.push(row);
    }
    print_table(&head, &rows);
    println!("\nAs in the paper's figure, clusters separate along interrogativity, tense and");
    println!("voice: one centroid is question-dominated (the request cluster), one past-tense");
    println!("(previous efforts), the rest present-tense context/description profiles.");
}
