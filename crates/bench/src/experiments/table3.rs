//! Table 3 — segment granularity before/after grouping (+ diagnostics).
use crate::util::{header, print_table, Options};
use forum_corpus::Domain;
use intentmatch::{IntentPipeline, PipelineConfig};

pub fn run(opts: &Options) {
    header("Table 3 — Segment Granularity (percentage of posts)");
    for domain in Domain::ALL {
        let (_, coll) = opts.collection(domain, opts.posts);
        let pipe = IntentPipeline::build(&coll, &PipelineConfig::default());
        let n = coll.len() as f64;
        let before = pipe.granularity_histogram(false, 8);
        let after = pipe.granularity_histogram(true, 8);
        println!(
            "\n[{}] clusters: {}, noise segments: {}",
            domain.name(),
            pipe.num_clusters(),
            pipe.num_noise
        );
        let mut rows = Vec::new();
        for i in 0..8 {
            rows.push(vec![
                format!("{}", i + 1),
                format!("{:.1}%", 100.0 * before[i] as f64 / n),
                format!("{:.1}%", 100.0 * after[i] as f64 / n),
            ]);
        }
        print_table(&["Segments", "Before grouping", "After grouping"], &rows);
    }
}
