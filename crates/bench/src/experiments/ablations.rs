//! Ablation experiments for the design choices DESIGN.md calls out, plus a
//! calibration sweep for the Greedy threshold.
use crate::util::{f3, header, print_table, Options};
use forum_corpus::Domain;
use forum_segment::metrics::mult_win_diff;
use forum_segment::strategies::{greedy_voting as run_greedy_voting, GreedyConfig};
use forum_text::Segmentation;

/// Shared helper: oracle precision of IntentIntent-MR under a pipeline
/// configuration (no rater noise, so ablations measure the method itself).
fn intent_precision(
    opts: &Options,
    domain: Domain,
    cfg: &intentmatch::PipelineConfig,
    n_override: Option<usize>,
) -> f64 {
    use intentmatch::IntentPipeline;
    let (corpus, coll) = opts.collection(domain, opts.posts);
    let pipe = IntentPipeline::build(&coll, cfg);
    let k = 5;
    let queries = opts.queries.min(corpus.len());
    let mut total = 0.0;
    for q in 0..queries {
        let list = match n_override {
            Some(n) => pipe.top_k_with_n(&coll, q, k, n),
            None => pipe.top_k(&coll, q, k),
        };
        if list.is_empty() {
            continue;
        }
        let hits = list
            .iter()
            .filter(|&&(d, _)| corpus.related(q, d as usize))
            .count();
        total += hits as f64 / list.len() as f64;
    }
    total / queries as f64
}

/// Ablation: Algorithm 2's per-intention list length n (paper: n = 2k).
pub fn top_n(opts: &Options) {
    header("Ablation — per-intention list length n (k = 5; paper picks n = 2k)");
    let mut rows = Vec::new();
    for n in [2usize, 5, 10, 20, 40] {
        let mut row = vec![format!(
            "n = {n}{}",
            if n == 10 { " (2k, default)" } else { "" }
        )];
        for domain in Domain::ALL {
            let p = intent_precision(opts, domain, &Default::default(), Some(n));
            row.push(f3(p));
        }
        rows.push(row);
    }
    print_table(&["n", "HP Forum", "TripAdvisor", "StackOverflow"], &rows);
    println!(
        "\nSmall n favors single-intention stars; large n favors multi-list presence (Sec. 7)."
    );
}

/// Ablation: segmentation refinement on/off (Section 6).
pub fn refinement(opts: &Options) {
    header("Ablation — segmentation refinement (concatenate same-cluster segments)");
    let mut rows = Vec::new();
    for (label, skip) in [
        ("with refinement (paper)", false),
        ("without refinement", true),
    ] {
        let mut row = vec![label.to_string()];
        for domain in Domain::ALL {
            let cfg = intentmatch::PipelineConfig {
                skip_refinement: skip,
                ..Default::default()
            };
            row.push(f3(intent_precision(opts, domain, &cfg, None)));
        }
        rows.push(row);
    }
    print_table(
        &["Configuration", "HP Forum", "TripAdvisor", "StackOverflow"],
        &rows,
    );
}

/// Ablation: drop the Eq. 6 (whole-post share) weights from the segment
/// feature vectors.
pub fn weights(opts: &Options) {
    header("Ablation — segment weight types (Eq. 5 only vs Eq. 5 + Eq. 6)");
    let mut rows = Vec::new();
    for (label, t1only) in [("both weight types (paper)", false), ("type-1 only", true)] {
        let mut row = vec![label.to_string()];
        for domain in Domain::ALL {
            let cfg = intentmatch::PipelineConfig {
                type1_weights_only: t1only,
                ..Default::default()
            };
            row.push(f3(intent_precision(opts, domain, &cfg, None)));
        }
        rows.push(row);
    }
    print_table(
        &["Configuration", "HP Forum", "TripAdvisor", "StackOverflow"],
        &rows,
    );
}

/// Ablation: Greedy with per-CM voting vs a single all-CM greedy pass.
pub fn greedy_voting(opts: &Options) {
    use forum_segment::strategies::Strategy;
    header("Ablation — Greedy voting (per-CM runs) vs single-pass Greedy");
    let mut rows = Vec::new();
    for (label, strat) in [
        (
            "Greedy with per-CM voting (paper)",
            Strategy::GreedyVoting(GreedyConfig::default()),
        ),
        (
            "single-pass Greedy",
            Strategy::Greedy(GreedyConfig::default()),
        ),
    ] {
        let mut row = vec![label.to_string()];
        for domain in Domain::ALL {
            let cfg = intentmatch::PipelineConfig {
                strategy: strat,
                ..Default::default()
            };
            row.push(f3(intent_precision(opts, domain, &cfg, None)));
        }
        rows.push(row);
    }
    print_table(
        &["Strategy", "HP Forum", "TripAdvisor", "StackOverflow"],
        &rows,
    );
}

/// Ablation: weighted vs uniform combination of per-intention lists
/// (Section 7's weighted-sum extension).
pub fn weighted_sum(opts: &Options) {
    header("Ablation — weighted vs uniform combination of intention lists");
    let mut rows = Vec::new();
    for (label, weighted) in [
        ("IDF-weighted sum (this implementation)", true),
        ("uniform sum (Algorithm 2 verbatim)", false),
    ] {
        let mut row = vec![label.to_string()];
        for domain in Domain::ALL {
            let cfg = intentmatch::PipelineConfig {
                weighted_combination: weighted,
                ..Default::default()
            };
            row.push(f3(intent_precision(opts, domain, &cfg, None)));
        }
        rows.push(row);
    }
    print_table(
        &["Combination", "HP Forum", "TripAdvisor", "StackOverflow"],
        &rows,
    );
}

/// Sweep the greedy threshold against ground-truth segmentations.
pub fn greedy_threshold_sweep(opts: &Options) {
    header("Calibration — Greedy threshold sweep (vs ground truth)");
    for domain in [Domain::TechSupport, Domain::Travel] {
        let (corpus, coll) = opts.collection(domain, 300.min(opts.posts));
        println!("\n[{}]", domain.name());
        let mut rows = Vec::new();
        for (m, kd) in [
            (4, 0.02),
            (4, 0.04),
            (4, 0.06),
            (4, 0.08),
            (4, 0.12),
            (4, 0.16),
            (4, 0.24),
            (3, 0.04),
            (3, 0.08),
            (3, 0.16),
            (0, 0.02),
            (0, 0.04),
            (0, 0.08),
        ] {
            // m == 0 encodes plain (non-voting) greedy over all CMs.
            let cfg = GreedyConfig {
                voting_majority: m.max(1),
                keep_depth: kd,
                ..Default::default()
            };
            let mut err = 0.0;
            let mut segs = 0.0;
            let mut n = 0.0;
            for (i, post) in corpus.posts.iter().enumerate() {
                if post.num_sentences < 2 {
                    continue;
                }
                let gt = Segmentation::from_borders(post.num_sentences, post.gt_borders.clone());
                let hyp = if m == 0 {
                    forum_segment::strategies::greedy(&coll.docs[i], &cfg)
                } else {
                    run_greedy_voting(&coll.docs[i], &cfg)
                };
                err += mult_win_diff(&[gt], &hyp);
                segs += hyp.num_segments() as f64;
                n += 1.0;
            }
            let gt_mean = corpus
                .posts
                .iter()
                .map(|p| p.num_segments() as f64)
                .sum::<f64>()
                / corpus.len() as f64;
            rows.push(vec![
                format!("maj{m}/{kd:.2}"),
                f3(err / n),
                f3(segs / n),
                f3(gt_mean),
            ]);
        }
        print_table(
            &["maj/depth", "multWinDiff", "mean segs", "gt mean segs"],
            &rows,
        );
    }
}

/// Sweep DBSCAN parameters: cluster count, noise and intention purity.
pub fn dbscan_sweep(opts: &Options) {
    use intentmatch::{IntentPipeline, PipelineConfig};
    header("Calibration — DBSCAN (eps, min_pts) sweep");
    for domain in [Domain::TechSupport, Domain::Travel, Domain::Programming] {
        let (corpus, coll) = opts.collection(domain, 600.min(opts.posts));
        println!("\n[{}]", domain.name());
        let mut rows = Vec::new();
        for (eps, min_pts) in [
            (0.6, 8),
            (0.8, 8),
            (1.0, 8),
            (1.2, 8),
            (1.4, 8),
            (1.0, 16),
            (1.2, 16),
            (1.4, 16),
            (1.6, 16),
            (1.8, 16),
            (2.0, 16),
        ] {
            let cfg = PipelineConfig {
                dbscan: forum_cluster::DbscanConfig { eps, min_pts },
                ..Default::default()
            };
            let pipe = IntentPipeline::build(&coll, &cfg);
            // Purity: per refined segment, majority ground-truth intention of
            // its sentences; a cluster's purity is its majority-kind share.
            let mut cluster_counts: Vec<
                std::collections::HashMap<forum_corpus::IntentionKind, usize>,
            > = vec![Default::default(); pipe.num_clusters()];
            for (d, segs) in pipe.doc_segments.iter().enumerate() {
                let post = &corpus.posts[d];
                // per-sentence gt intention
                let mut sent_kind = Vec::with_capacity(post.num_sentences);
                let mut seg_i = 0;
                for s in 0..post.num_sentences {
                    if seg_i < post.gt_borders.len() && s >= post.gt_borders[seg_i] {
                        seg_i += 1;
                    }
                    sent_kind.push(post.segment_intentions[seg_i]);
                }
                for rs in segs {
                    let mut counts: std::collections::HashMap<_, usize> = Default::default();
                    for &(a, b) in &rs.ranges {
                        for &kind in sent_kind.iter().take(b).skip(a) {
                            *counts.entry(kind).or_insert(0) += 1;
                        }
                    }
                    if let Some((&kind, _)) = counts.iter().max_by_key(|(_, &c)| c) {
                        *cluster_counts[rs.cluster].entry(kind).or_insert(0) += 1;
                    }
                }
            }
            let mut pure = 0usize;
            let mut total = 0usize;
            for c in &cluster_counts {
                let t: usize = c.values().sum();
                let m = c.values().max().copied().unwrap_or(0);
                pure += m;
                total += t;
            }
            let total_segs: usize = pipe.doc_segments.iter().map(Vec::len).sum();
            rows.push(vec![
                format!("{eps:.1}/{min_pts}"),
                pipe.num_clusters().to_string(),
                format!(
                    "{:.1}%",
                    100.0 * pipe.num_noise as f64 / total_segs.max(1) as f64
                ),
                format!("{:.1}%", 100.0 * pure as f64 / total.max(1) as f64),
            ]);
        }
        print_table(&["eps/minPts", "clusters", "noise", "purity"], &rows);
    }
}

/// Diagnose the IntentIntent pipeline: is the query's request segment
/// isolated, and which clusters carry the precision?
pub fn diag_intent(opts: &Options) {
    use intentmatch::{IntentPipeline, PipelineConfig};
    header("Diagnostics — request-segment isolation and per-cluster precision");
    for domain in [Domain::TechSupport, Domain::Travel, Domain::Programming] {
        let (corpus, coll) = opts.collection(domain, opts.posts);
        for (m, kd) in [(3u32, 0.04f64), (4, 0.10), (4, 0.12), (4, 0.16), (4, 0.20)] {
            let pipe = IntentPipeline::build(
                &coll,
                &PipelineConfig {
                    strategy: forum_segment::strategies::Strategy::GreedyVoting(GreedyConfig {
                        voting_majority: m,
                        keep_depth: kd,
                        ..Default::default()
                    }),
                    ..Default::default()
                },
            );
            println!(
                "\n== {} maj {} kd {} clusters: {}",
                domain.name(),
                m,
                kd,
                pipe.num_clusters()
            );

            let nq = opts.queries.min(corpus.len());
            let mut req_isolated = 0usize;
            let mut full_prec = 0.0;
            let mut req_prec = 0.0;
            let mut ctx_prec = 0.0;
            let mut req_cluster_hist = vec![0usize; pipe.num_clusters()];
            let mut confusion = [0usize; 4];
            let mut related_avail = 0usize;
            let mut related_total = 0usize;
            let mut n_prec = [0.0f64; 4];
            for q in 0..nq {
                let post = &corpus.posts[q];
                // First sentence of the gt request segment.
                let req_start = if post.request_segment == 0 {
                    0
                } else {
                    post.gt_borders[post.request_segment - 1]
                };
                let req_end = post
                    .gt_borders
                    .get(post.request_segment)
                    .copied()
                    .unwrap_or(post.num_sentences);
                // Which refined segment holds req_start?
                let Some(seg) = pipe.doc_segments[q].iter().find(|s| {
                    s.ranges
                        .iter()
                        .any(|&(a, b)| req_start >= a && req_start < b)
                }) else {
                    continue;
                };
                req_cluster_hist[seg.cluster] += 1;
                // Isolation: fraction of the refined segment's sentences inside the gt request range.
                let total: usize = seg.ranges.iter().map(|&(a, b)| b - a).sum();
                let inside: usize = seg
                    .ranges
                    .iter()
                    .map(|&(a, b)| {
                        let lo = a.max(req_start);
                        let hi = b.min(req_end);
                        hi.saturating_sub(lo)
                    })
                    .sum();
                if inside * 2 > total {
                    req_isolated += 1;
                }
                // Precision of the request cluster's own list vs the others.
                let prec_of = |list: &[(u32, f64)]| -> f64 {
                    if list.is_empty() {
                        return 0.0;
                    }
                    list.iter()
                        .filter(|&&(d, _)| corpus.related(q, d as usize))
                        .count() as f64
                        / list.len() as f64
                };
                // How many related posts have their own request in this cluster?
                for &r in &corpus.related_set(q) {
                    let rp = &corpus.posts[r];
                    let r_start = if rp.request_segment == 0 {
                        0
                    } else {
                        rp.gt_borders[rp.request_segment - 1]
                    };
                    if pipe.doc_segments[r].iter().any(|s2| {
                        s2.cluster == seg.cluster
                            && s2.ranges.iter().any(|&(a, b)| r_start >= a && r_start < b)
                    }) {
                        related_avail += 1;
                    }
                    related_total += 1;
                }
                let req_list = pipe.single_intention_top_n(&coll, q, seg.cluster, 5);
                req_prec += prec_of(&req_list);
                for &(d, _) in &req_list {
                    let cand = &corpus.posts[d as usize];
                    let me = &corpus.posts[q];
                    let key = match (cand.problem == me.problem, cand.focus == me.focus) {
                        (true, true) => 0usize,
                        (true, false) => 1,
                        (false, true) => 2,
                        (false, false) => 3,
                    };
                    confusion[key] += 1;
                }
                let mut ctx_lists = 0.0;
                let mut ctx_sum = 0.0;
                for s in &pipe.doc_segments[q] {
                    if s.cluster == seg.cluster {
                        continue;
                    }
                    let l = pipe.single_intention_top_n(&coll, q, s.cluster, 5);
                    if !l.is_empty() {
                        ctx_sum += prec_of(&l);
                        ctx_lists += 1.0;
                    }
                }
                if ctx_lists > 0.0 {
                    ctx_prec += ctx_sum / ctx_lists;
                }
                full_prec += prec_of(&pipe.top_k(&coll, q, 5));
                for (slot, n) in [2usize, 5, 10, 20].iter().enumerate() {
                    n_prec[slot] += prec_of(&pipe.top_k_with_n(&coll, q, 5, *n));
                }
            }
            let n = nq as f64;
            println!("request segment majority-isolated: {}/{}", req_isolated, nq);
            println!("request-cluster histogram: {req_cluster_hist:?}");
            println!(
                "mean precision: full algo2 {:.3} | request cluster {:.3} | context clusters {:.3}",
                full_prec / n,
                req_prec / n,
                ctx_prec / n
            );
            println!("request-list confusion [P+F+, P+F-, P-F+, P-F-]: {confusion:?}");
            println!(
                "related posts with request in query's cluster: {related_avail}/{related_total}"
            );
            println!(
                "full precision by per-cluster n: n=2 {:.3} | n=5 {:.3} | n=10 {:.3} | n=20 {:.3}",
                n_prec[0] / n,
                n_prec[1] / n,
                n_prec[2] / n,
                n_prec[3] / n
            );
        }
    }
}

/// Border-level diagnosis: does Greedy find the borders around the request
/// segment, and how pure are raw segments?
pub fn diag_borders(opts: &Options) {
    use forum_segment::strategies::Strategy;
    header("Diagnostics — border recall around request segments");
    let (corpus, coll) = opts.collection(Domain::TechSupport, 400.min(opts.posts));
    let strat = Strategy::GreedyVoting(Default::default());
    let mut req_border_found = 0usize;
    let mut req_border_total = 0usize;
    let mut all_found = 0usize;
    let mut all_total = 0usize;
    let mut raw_isolated = 0usize;
    let mut nq = 0usize;
    for (i, post) in corpus.posts.iter().enumerate() {
        if post.num_segments() < 2 {
            continue;
        }
        nq += 1;
        let seg = strat.run(&coll.docs[i]);
        for (bi, &b) in post.gt_borders.iter().enumerate() {
            all_total += 1;
            let hit =
                seg.has_border(b) || (b > 1 && seg.has_border(b - 1)) || seg.has_border(b + 1);
            if hit {
                all_found += 1;
            }
            let adjacent_to_request = bi + 1 == post.request_segment || bi == post.request_segment;
            if adjacent_to_request {
                req_border_total += 1;
                if hit {
                    req_border_found += 1;
                }
            }
        }
        // Raw isolation: the detected segment containing the request start is majority-request.
        let req_start = if post.request_segment == 0 {
            0
        } else {
            post.gt_borders[post.request_segment - 1]
        };
        let req_end = post
            .gt_borders
            .get(post.request_segment)
            .copied()
            .unwrap_or(post.num_sentences);
        let s = seg.segment_of(req_start.min(post.num_sentences - 1));
        let inside = s.end.min(req_end).saturating_sub(s.first.max(req_start));
        if inside * 2 > s.len() {
            raw_isolated += 1;
        }
    }
    println!("posts: {nq}");
    println!("border recall (±1): all {all_found}/{all_total}, request-adjacent {req_border_found}/{req_border_total}");
    println!("raw request segment majority-isolated: {raw_isolated}/{nq}");
}

/// Calibration: sweep block size / threshold for both tiling variants.
pub fn tiling_sweep(opts: &Options) {
    use forum_segment::strategies::{tile, TileConfig};
    use forum_segment::texttiling::{texttiling, TextTilingConfig};
    use forum_segment::CmDoc;
    use forum_text::{document::DocId, Document};
    header("Calibration — tiling parameters (terms vs CM features)");
    for domain in [Domain::TechSupport, Domain::Travel] {
        let corpus = opts.corpus(domain, 300.min(opts.posts));
        println!("\n[{}]", domain.name());
        let mut rows = Vec::new();
        for block in [1usize, 2, 3] {
            for std_coeff in [0.2f64, 0.5, 0.8] {
                let mut err_t = 0.0;
                let mut err_c = 0.0;
                let mut bt = 0.0;
                let mut bc = 0.0;
                let mut n = 0.0;
                for (i, post) in corpus.posts.iter().enumerate() {
                    if post.num_sentences < 2 {
                        continue;
                    }
                    let doc = Document::parse_clean(DocId(i as u32), &post.text);
                    let refs = vec![forum_text::Segmentation::from_borders(
                        post.num_sentences,
                        post.gt_borders.clone(),
                    )];
                    let ht = texttiling(
                        &doc,
                        &TextTilingConfig {
                            block_size: block,
                            std_coeff,
                        },
                    );
                    let cmdoc = CmDoc::new(doc);
                    let hc = tile(
                        &cmdoc,
                        &TileConfig {
                            block_size: block,
                            std_coeff,
                        },
                    );
                    err_t += forum_segment::metrics::mult_win_diff(&refs, &ht);
                    err_c += forum_segment::metrics::mult_win_diff(&refs, &hc);
                    bt += ht.borders().len() as f64;
                    bc += hc.borders().len() as f64;
                    n += 1.0;
                }
                rows.push(vec![
                    format!("b{block}/c{std_coeff}"),
                    f3(err_t / n),
                    f3(bt / n),
                    f3(err_c / n),
                    f3(bc / n),
                ]);
            }
        }
        print_table(
            &["cfg", "terms err", "terms borders", "CM err", "CM borders"],
            &rows,
        );
    }
}

/// Ablation: the paper's Eq. 8 weighting vs Okapi BM25 inside the
/// per-cluster indices (Section 7 positions its scheme "somewhere between
/// the original [TF/IDF] and the BM25").
pub fn bm25(opts: &Options) {
    header("Ablation — per-cluster term weighting: paper's Eq. 8 vs Okapi BM25");
    let mut rows = Vec::new();
    for (label, scheme) in [
        (
            "Eq. 8 TF/IDF variant (paper)",
            forum_index::WeightingScheme::PaperTfIdf,
        ),
        (
            "Okapi BM25 (k1=1.2, b=0.75)",
            forum_index::WeightingScheme::bm25(),
        ),
    ] {
        let mut row = vec![label.to_string()];
        for domain in Domain::ALL {
            let cfg = intentmatch::PipelineConfig {
                weighting: scheme,
                ..Default::default()
            };
            row.push(f3(intent_precision(opts, domain, &cfg, None)));
        }
        rows.push(row);
    }
    print_table(
        &["Weighting", "HP Forum", "TripAdvisor", "StackOverflow"],
        &rows,
    );
}

/// Extra experiment: intention drift over time. The paper compared the
/// intentions of two consecutive StackOverflow years and "noticed no
/// significant changes"; here two independently-generated batches play the
/// two years, and the matched-centroid distance is compared against the
/// spread between different intentions within one batch.
pub fn drift(opts: &Options) {
    use intentmatch::{IntentPipeline, PipelineConfig};
    header("Intention drift across corpus batches (paper: two StackOverflow years)");
    let n = opts.posts.max(500);
    let build = |seed: u64| {
        let corpus = forum_corpus::Corpus::generate(&forum_corpus::GenConfig {
            domain: Domain::Programming,
            num_posts: n,
            seed,
        });
        let coll = intentmatch::PostCollection::from_corpus(&corpus);
        IntentPipeline::build(&coll, &PipelineConfig::default())
    };
    let year1 = build(opts.seed);
    let year2 = build(opts.seed ^ 0xDEAD_BEEF);
    println!(
        "year-1 clusters: {}, year-2 clusters: {}",
        year1.num_clusters(),
        year2.num_clusters()
    );
    // Greedy one-to-one matching of year-2 centroids to year-1 centroids.
    let mut pairs: Vec<(usize, usize, f64)> = Vec::new();
    for (i, a) in year1.centroids.iter().enumerate() {
        for (j, b) in year2.centroids.iter().enumerate() {
            pairs.push((i, j, forum_cluster::dist(a, b)));
        }
    }
    pairs.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap());
    let mut used1 = vec![false; year1.num_clusters()];
    let mut used2 = vec![false; year2.num_clusters()];
    let mut matched = Vec::new();
    for (i, j, d) in pairs {
        if !used1[i] && !used2[j] {
            used1[i] = true;
            used2[j] = true;
            matched.push((i, j, d));
        }
    }
    // Reference scale: distances between *different* intentions of year 1.
    let mut inter = Vec::new();
    for (i, a) in year1.centroids.iter().enumerate() {
        for b in year1.centroids.iter().skip(i + 1) {
            inter.push(forum_cluster::dist(a, b));
        }
    }
    let mean_inter = inter.iter().sum::<f64>() / inter.len().max(1) as f64;
    let mut rows = Vec::new();
    for (i, j, d) in &matched {
        rows.push(vec![
            format!("I{i} <-> I{j}'"),
            f3(*d),
            format!("{:.0}%", 100.0 * d / mean_inter),
        ]);
    }
    print_table(
        &[
            "matched pair",
            "centroid distance",
            "% of inter-intention spread",
        ],
        &rows,
    );
    let mean_drift = matched.iter().map(|&(_, _, d)| d).sum::<f64>() / matched.len().max(1) as f64;
    println!(
        "\nmean matched drift {:.3} vs mean inter-intention distance {:.3} ({:.0}%)",
        mean_drift,
        mean_inter,
        100.0 * mean_drift / mean_inter
    );
    println!("As in the paper, intentions are stable across batches: matched centroids sit");
    println!("far closer to each other than distinct intentions do.");
}

/// Ablation: Algorithm 2's top-n truncation vs the exact weighted-sum
/// top-k via Fagin's threshold algorithm (Section 7's cited alternative).
pub fn combination(opts: &Options) {
    use intentmatch::{exact_top_k, IntentPipeline, PipelineConfig};
    header("Ablation — Algorithm 2 (top-n lists) vs exact top-k (threshold algorithm)");
    let mut rows = Vec::new();
    for domain in Domain::ALL {
        let (corpus, coll) = opts.collection(domain, opts.posts);
        let pipe = IntentPipeline::build(&coll, &PipelineConfig::default());
        let queries = opts.queries.min(corpus.len());
        let mut p_topn = 0.0;
        let mut p_exact = 0.0;
        let mut overlap = 0.0;
        for q in 0..queries {
            let a = pipe.top_k(&coll, q, 5);
            let b = exact_top_k(&coll, &pipe, q, 5);
            let prec = |list: &[(u32, f64)]| {
                if list.is_empty() {
                    return 0.0;
                }
                list.iter()
                    .filter(|&&(d, _)| corpus.related(q, d as usize))
                    .count() as f64
                    / list.len() as f64
            };
            p_topn += prec(&a);
            p_exact += prec(&b);
            let sa: std::collections::HashSet<u32> = a.iter().map(|&(d, _)| d).collect();
            let sb: std::collections::HashSet<u32> = b.iter().map(|&(d, _)| d).collect();
            if !sa.is_empty() || !sb.is_empty() {
                overlap += sa.intersection(&sb).count() as f64 / sa.union(&sb).count() as f64;
            }
        }
        let n = queries as f64;
        rows.push(vec![
            domain.name().to_string(),
            f3(p_topn / n),
            f3(p_exact / n),
            f3(overlap / n),
        ]);
    }
    print_table(
        &["Dataset", "top-n (Alg. 2)", "exact (TA)", "list Jaccard"],
        &rows,
    );
    println!("\nThe paper chose top-n with n = 2k; the exact aggregation rarely changes the");
    println!("top-5 because high-scoring documents already crack some per-intention top-n.");
}

/// Observability: instrumentation overhead of the always-present forum-obs
/// hooks, measured as the same offline build with the process-wide registry
/// disabled (the default — one relaxed atomic load per hook) vs enabled
/// (full counters, histograms, and spans). The forum-obs acceptance gate is
/// < 5% overhead on the segmentation phase.
pub fn obs_overhead(opts: &Options) {
    use intentmatch::{IntentPipeline, PipelineConfig, PostCollection};
    use std::time::Duration;
    header("Observability — forum-obs overhead (registry disabled vs enabled)");
    let obs = forum_obs::Registry::global();
    let was_enabled = obs.is_enabled();
    let corpus = opts.corpus(Domain::TechSupport, 600.min(opts.posts));
    let coll = PostCollection::from_corpus(&corpus);
    let cfg = PipelineConfig::default();
    const REPS: usize = 5;
    // Best-of-REPS per mode: the minimum is the least noisy estimator for
    // a deterministic computation under scheduler jitter.
    let mut best = [(Duration::MAX, Duration::MAX); 2];
    for (mode, enabled) in [(0usize, false), (1, true)] {
        obs.set_enabled(enabled);
        for _ in 0..REPS {
            let pipe = IntentPipeline::build(&coll, &cfg);
            best[mode].0 = best[mode].0.min(pipe.timings.segmentation);
            best[mode].1 = best[mode].1.min(pipe.timings.total());
        }
    }
    obs.set_enabled(was_enabled);
    let pct = |on: Duration, off: Duration| (on.as_secs_f64() / off.as_secs_f64() - 1.0) * 100.0;
    let seg = pct(best[1].0, best[0].0);
    let total = pct(best[1].1, best[0].1);
    print_table(
        &[
            "registry",
            "segmentation (best of 5)",
            "full build (best of 5)",
        ],
        &[
            vec![
                "disabled".to_string(),
                format!("{:?}", best[0].0),
                format!("{:?}", best[0].1),
            ],
            vec![
                "enabled".to_string(),
                format!("{:?}", best[1].0),
                format!("{:?}", best[1].1),
            ],
            vec![
                "overhead".to_string(),
                format!("{seg:+.2}%"),
                format!("{total:+.2}%"),
            ],
        ],
    );
    let verdict = if seg < 5.0 { "PASS" } else { "FAIL" };
    println!("\nsegmentation-phase overhead {seg:+.2}% vs the < 5% gate: {verdict}");
    println!("(phase spans cost two clock reads per phase; the per-worker hook fires once");
    println!("per chunk, so per-document costs are untouched.)");

    // The serving-side read path: what one /metrics scrape costs. Populate
    // a realistic registry (the build above already recorded the offline
    // phases; add a spread of latency observations), then time snapshotting
    // with percentile estimation and the Prometheus text render.
    obs.set_enabled(true);
    for i in 0..10_000u64 {
        obs.record("serve/online_query_ns", (i % 997) * 1_000 + 120);
    }
    let mut best_snap = Duration::MAX;
    let mut best_render = Duration::MAX;
    let mut samples = 0usize;
    for _ in 0..REPS {
        let t = std::time::Instant::now();
        let snap = obs.snapshot();
        // Percentiles are computed per histogram at read time; include them
        // in the snapshot cost like the JSON export does.
        let mut acc = 0.0f64;
        for m in &snap.metrics {
            if let forum_obs::MetricValue::Histogram(h) = &m.value {
                acc += h.p50_est() + h.p90_est() + h.p99_est();
            }
        }
        std::hint::black_box(acc);
        best_snap = best_snap.min(t.elapsed());
        let t = std::time::Instant::now();
        let text = forum_obs::prometheus::render(&snap);
        best_render = best_render.min(t.elapsed());
        samples = forum_obs::prometheus::validate_exposition(&text).unwrap_or(0);
    }
    obs.set_enabled(was_enabled);
    println!("\nscrape path (best of {REPS}): snapshot+percentiles {best_snap:?}, ");
    println!("prometheus render {best_render:?} ({samples} samples) — read-side only,");
    println!("never on the query or ingest hot path.");

    // The background sampler (PR 9): a thread scraping the registry into
    // in-process time-series on a short period while the single-threaded
    // query loop runs. Modes are interleaved inside each rep so clock
    // drift and cache warmth hit both equally; the gate is < 1% because
    // the sampler never touches the query path — it only reads the same
    // atomics the handlers bump.
    use forum_obs::json::Json;
    use forum_obs::{Sampler, TimeSeries};
    use intentmatch::QueryEngine;
    use std::sync::Arc;
    use std::time::Instant;
    obs.set_enabled(true);
    let pipe = IntentPipeline::build(&coll, &cfg);
    let engine = QueryEngine::new(&coll, &pipe).with_threads(1);
    let queries = opts.queries.min(coll.len()).max(1);
    const SREPS: usize = 7;
    let run_queries = |passes: usize| {
        for _ in 0..passes {
            for q in 0..queries {
                std::hint::black_box(engine.try_top_k(q, 5).expect("query must not panic"));
            }
        }
    };
    // Size each timed segment to ~40 ms so a 1% difference is well above
    // timer and scheduler noise, whatever the corpus size.
    let warmup = Instant::now();
    run_queries(1);
    let per_pass = warmup.elapsed().max(Duration::from_micros(1));
    let passes = (Duration::from_millis(40).as_nanos() / per_pass.as_nanos()).max(1) as usize;
    let mut best_off = Duration::MAX;
    let mut best_on = Duration::MAX;
    let mut sampler_samples = 0u64;
    for rep in 0..SREPS {
        // Alternate which mode goes first so warmth and drift cancel.
        for leg in 0..2 {
            let sampled = (rep + leg) % 2 == 1;
            if sampled {
                let ts = Arc::new(TimeSeries::new());
                let sampler = Sampler::builder(Duration::from_millis(1)).spawn(ts);
                let t = Instant::now();
                run_queries(passes);
                best_on = best_on.min(t.elapsed());
                sampler_samples += sampler.samples_taken();
            } else {
                let t = Instant::now();
                run_queries(passes);
                best_off = best_off.min(t.elapsed());
            }
        }
    }
    obs.set_enabled(was_enabled);
    let sampler_pct = pct(best_on, best_off);
    println!(
        "\nsampler overhead over {queries} queries (best of {SREPS}, interleaved): \
         off {best_off:?}, on {best_on:?} ({sampler_pct:+.2}%, {sampler_samples} \
         background samples taken)"
    );
    let sampler_verdict = if sampler_pct < 1.0 { "PASS" } else { "FAIL" };
    println!("sampler overhead {sampler_pct:+.2}% vs the < 1% gate: {sampler_verdict}");

    let report = Json::obj()
        .with("experiment", "obs_overhead")
        .with("posts", coll.len() as u64)
        .with("queries", queries as u64)
        .with("registry_segmentation_overhead_pct", seg)
        .with("registry_total_overhead_pct", total)
        .with("snapshot_ns", best_snap.as_nanos() as u64)
        .with("render_ns", best_render.as_nanos() as u64)
        .with("exposition_samples", samples as u64)
        .with("sampler_off_ns", best_off.as_nanos() as u64)
        .with("sampler_on_ns", best_on.as_nanos() as u64)
        .with("sampler_overhead_pct", sampler_pct)
        .with("sampler_background_samples", sampler_samples)
        .with("sampler_gate_pct", 1.0)
        .with("sampler_verdict", sampler_verdict);
    let path = "BENCH_obs.json";
    match std::fs::write(path, format!("{report}\n")) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("error: could not write {path}: {e}"),
    }
}

/// Observability: per-query overhead of request tracing, measured on the
/// online path — the engine's sequential Algorithm 2 scan with no trace vs
/// with a full [`forum_obs::Trace`] lifecycle (begin, `engine/algo2` span
/// with cost counters, record into a sampling [`forum_obs::TraceStore`]).
/// The tentpole's acceptance gate is < 5% p50 per-query overhead with
/// sampling enabled, and rankings must be bit-identical either way.
pub fn trace_overhead(opts: &Options) {
    use forum_obs::{Trace, TraceStore};
    use intentmatch::{IntentPipeline, PipelineConfig, PostCollection, QueryEngine};
    use std::time::{Duration, Instant};
    header("Observability — request-tracing overhead (no trace vs sampled traces)");
    let corpus = opts.corpus(Domain::TechSupport, 600.min(opts.posts));
    let coll = PostCollection::from_corpus(&corpus);
    let pipe = IntentPipeline::build(&coll, &PipelineConfig::default());
    let engine = QueryEngine::new(&coll, &pipe).with_threads(1);
    let queries = opts.queries.min(coll.len());
    // A local store, configured like a production server: bounded rings,
    // 1-in-16 sampling, slow log armed but never tripped here.
    let store = TraceStore::new(256, 64);
    store.set_sample_every(16);

    // Bit-identity gate first: tracing must never move a result bit.
    for q in 0..queries {
        let untraced = engine.try_top_k(q, 5).expect("query must not panic");
        let mut t = Trace::begin("query", None);
        let traced = engine
            .try_top_k_traced(q, 5, Some(&mut t))
            .expect("query must not panic");
        store.record(t);
        let identical = untraced.len() == traced.len()
            && untraced
                .iter()
                .zip(&traced)
                .all(|(a, b)| a.0 == b.0 && a.1.to_bits() == b.1.to_bits());
        assert!(identical, "query {q}: tracing changed the ranking");
    }

    const REPS: usize = 7;
    let median = |mut v: Vec<Duration>| -> Duration {
        v.sort_unstable();
        v[v.len() / 2]
    };
    // Best-of-REPS p50 per mode, with the modes interleaved inside each
    // rep so clock-frequency drift and cache warmth hit both equally (a
    // sequential off-then-on layout charges all late-run throttling to the
    // traced mode). The minimum median is the least noisy estimator for a
    // deterministic computation under scheduler jitter.
    let mut best = [Duration::MAX; 2];
    for _ in 0..REPS {
        for (mode, traced) in [(0usize, false), (1, true)] {
            let mut lat = Vec::with_capacity(queries);
            for q in 0..queries {
                let started = Instant::now();
                if traced {
                    let mut t = Trace::begin("query", None);
                    std::hint::black_box(engine.try_top_k_traced(q, 5, Some(&mut t)).unwrap());
                    store.record(t);
                } else {
                    std::hint::black_box(engine.try_top_k(q, 5).unwrap());
                }
                lat.push(started.elapsed());
            }
            best[mode] = best[mode].min(median(lat));
        }
    }
    let pct = (best[1].as_secs_f64() / best[0].as_secs_f64() - 1.0) * 100.0;
    print_table(
        &["tracing", "per-query p50 (best of 7)"],
        &[
            vec!["off".to_string(), format!("{:?}", best[0])],
            vec!["on (1-in-16 sample)".to_string(), format!("{:?}", best[1])],
            vec!["overhead".to_string(), format!("{pct:+.2}%")],
        ],
    );
    let verdict = if pct < 5.0 { "PASS" } else { "FAIL" };
    println!("\nper-query p50 overhead {pct:+.2}% vs the < 5% gate: {verdict}");
    println!(
        "({} queries over {} posts; cost counters ride the scan unconditionally —",
        queries,
        coll.len()
    );
    println!("the traced path only adds span clock reads and one sampled ring insert.)");
}
