//! The paper's "Datasets" description (Section 9): average post size in
//! content terms, percentage of unique terms, and (ours) ground-truth
//! segments per post, for each synthetic corpus.
//!
//! Paper: HP 93 terms / 2.3% unique; TripAdvisor 195 / 3.2%; StackOverflow
//! 79 / 2.5%. The generator targets the *relations* (travel longest,
//! programming shortest, unique terms a small single-digit percentage —
//! "the used vocabulary is limited").

use crate::util::{header, print_table, Options};
use forum_corpus::stats::corpus_stats;
use forum_corpus::Domain;

pub fn run(opts: &Options) {
    header("Datasets — corpus statistics (Section 9 description)");
    let mut rows = Vec::new();
    for domain in Domain::ALL {
        let corpus = opts.corpus(domain, opts.posts);
        let s = corpus_stats(&corpus);
        rows.push(vec![
            domain.name().to_string(),
            s.num_posts.to_string(),
            format!("{:.1}", s.avg_terms_per_post),
            format!("{:.2}%", s.unique_term_pct),
            format!("{:.2}", s.avg_segments_per_post),
        ]);
    }
    print_table(
        &[
            "Dataset",
            "Posts",
            "Avg terms/post",
            "Unique terms",
            "GT segments/post",
        ],
        &rows,
    );
    println!(
        "\nPaper: HP 93 terms / 2.3% unique; TripAdvisor 195 / 3.2%; StackOverflow 79 / 2.5%."
    );
    println!("Human-annotated segments/post: 4.2 (HP) and 5.2 (TripAdvisor).");
}
