//! Online early termination: impact-ordered postings vs the exhaustive
//! scan, proven bit-identical and measured.
//!
//! Each term's postings carry quantized upper bounds on their Eq. 8/9
//! contribution; the index walks a term in descending-bound order and
//! stops the list once its remaining bound cannot displace the current
//! top-n floor (see DESIGN.md "Early termination"). This experiment
//! replays every segment scan of a real pipeline build twice — pruned and
//! through the exhaustive oracle — asserts the rankings identical scan by
//! scan, and reports how much posting work termination saved. It then
//! smoke-tests the TA combiner ([`intentmatch::exact_top_k`]), whose
//! prefix pages ride the same pruned scans: the top-k run must be a
//! prefix of the top-2k run, scores and order included.
//!
//! Results land in `BENCH_early_term.json`; CI runs this small as the
//! `fagin_smoke` step with the assertions on.

use crate::util::{f3, header, print_table, Options};
use forum_corpus::Domain;
use forum_index::{ScanCosts, ScoreScratch, SegmentIndex};
use forum_obs::json::Json;
use intentmatch::pipeline::segment_terms;
use intentmatch::{exact_top_k, IntentPipeline, PipelineConfig};
use std::time::Instant;

/// One Algorithm-1 scan of the online path: a query document's segment
/// against its intention cluster's index, the query document excluded.
struct Scan {
    cluster: usize,
    query: Vec<(String, u32)>,
    exclude: u32,
}

pub fn run(opts: &Options) {
    header("early_term: impact-ordered early termination vs exhaustive scans");

    let (_, coll) = opts.collection(Domain::TechSupport, opts.posts);
    println!("building pipeline over {} posts…", coll.len());
    let pipe = IntentPipeline::build(&coll, &PipelineConfig::default());
    let scheme = pipe.weighting;
    for c in &pipe.clusters {
        assert!(
            c.index.has_impacts(),
            "freshly built cluster index is missing its impact sidecar"
        );
    }

    let k = 5usize;
    let n = 2 * k; // Algorithm 2's n = 2k heuristic — the production depth
    let mut scans = Vec::new();
    for q in 0..coll.len() {
        for seg in &pipe.doc_segments[q] {
            let terms = segment_terms(&coll, q, seg);
            if terms.is_empty() {
                continue;
            }
            scans.push(Scan {
                cluster: seg.cluster,
                query: SegmentIndex::query_from_terms(&terms),
                exclude: q as u32,
            });
        }
    }
    println!(
        "replaying {} segment scans at n = {n} (k = {k}), pruned vs exhaustive…",
        scans.len()
    );

    let mut scratch = ScoreScratch::new();

    let started = Instant::now();
    let pruned: Vec<Vec<(u32, f64)>> = scans
        .iter()
        .map(|s| {
            pipe.clusters[s.cluster].index.top_owners_with_scratch(
                &s.query,
                n,
                scheme,
                Some(s.exclude),
                &mut scratch,
            )
        })
        .collect();
    let pruned_s = started.elapsed().as_secs_f64();
    let pruned_costs = scratch.costs.take();

    let started = Instant::now();
    let exhaustive: Vec<Vec<(u32, f64)>> = scans
        .iter()
        .map(|s| {
            pipe.clusters[s.cluster].index.top_owners_exhaustive(
                &s.query,
                n,
                scheme,
                Some(s.exclude),
                &mut scratch,
            )
        })
        .collect();
    let exhaustive_s = started.elapsed().as_secs_f64();
    let exhaustive_costs = scratch.costs.take();

    for ((p, e), s) in pruned.iter().zip(&exhaustive).zip(&scans) {
        assert_eq!(
            p, e,
            "pruned ranking diverges from the exhaustive oracle \
             (cluster {}, excluded owner {})",
            s.cluster, s.exclude
        );
    }

    let scanned_reduction_pct = if exhaustive_costs.postings_scanned > 0 {
        100.0
            * (1.0
                - pruned_costs.postings_scanned as f64 / exhaustive_costs.postings_scanned as f64)
    } else {
        0.0
    };
    let cost_row = |label: &str, secs: f64, c: &ScanCosts| {
        vec![
            label.to_string(),
            format!("{secs:.3}s"),
            c.postings_scanned.to_string(),
            c.early_exits.to_string(),
            c.candidates_pruned.to_string(),
        ]
    };
    print_table(
        &["path", "wall", "postings scanned", "early exits", "pruned"],
        &[
            cost_row("pruned", pruned_s, &pruned_costs),
            cost_row("exhaustive", exhaustive_s, &exhaustive_costs),
        ],
    );
    println!(
        "postings scanned reduced {}% over {} scans; every ranking identical",
        f3(scanned_reduction_pct),
        scans.len()
    );

    // TA smoke: the exact top-k must be a prefix — documents, scores and
    // order — of the exact top-2k, and the deepening machinery inside
    // (exact prefix pages over the same pruned scans) must not disturb it.
    let fagin_queries = opts.queries.min(coll.len());
    let started = Instant::now();
    for q in 0..fagin_queries {
        let top_k = exact_top_k(&coll, &pipe, q, k);
        let top_2k = exact_top_k(&coll, &pipe, q, 2 * k);
        assert_eq!(
            top_k.as_slice(),
            &top_2k[..top_k.len().min(top_2k.len())],
            "TA top-{k} is not a prefix of top-{} for query {q}",
            2 * k
        );
        assert!(top_2k.len() >= top_k.len());
    }
    let fagin_s = started.elapsed().as_secs_f64();
    println!(
        "fagin: {fagin_queries} queries × (top-{k} ⊑ top-{}) verified in {fagin_s:.3}s",
        2 * k
    );

    let costs_json = |c: &ScanCosts, secs: f64| {
        Json::obj()
            .with("seconds", secs)
            .with("postings_scanned", c.postings_scanned)
            .with("early_exits", c.early_exits)
            .with("candidates_pruned", c.candidates_pruned)
            .with("heap_displacements", c.heap_displacements)
    };
    let report = Json::obj()
        .with("experiment", "early_term")
        .with("posts", coll.len())
        .with("scans", scans.len())
        .with("k", k)
        .with("n", n)
        .with("pruned", costs_json(&pruned_costs, pruned_s))
        .with("exhaustive", costs_json(&exhaustive_costs, exhaustive_s))
        .with("postings_scanned_reduction_pct", scanned_reduction_pct)
        .with("rankings_identical", true)
        .with(
            "fagin",
            Json::obj()
                .with("queries", fagin_queries)
                .with("seconds", fagin_s)
                .with("prefix_stable", true),
        )
        .with("seed", opts.seed);
    let path = "BENCH_early_term.json";
    match std::fs::write(path, format!("{report}\n")) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("error: could not write {path}: {e}"),
    }
}
