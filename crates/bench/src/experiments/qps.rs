//! Online throughput: batch QPS of the [`intentmatch::QueryEngine`] over
//! thread counts, with bit-identity against the sequential path.
//!
//! The paper's Section 9.2.4 serves its 1.5M-post deployment online; this
//! experiment measures the serving side on the synthetic corpus — queries
//! per second at 1/2/4/8 workers, the parallel speedup, and per-query
//! latency percentiles — and verifies that every batch result equals
//! [`intentmatch::IntentPipeline::top_k`] exactly.

use crate::util::{header, print_table, Options};
use forum_corpus::Domain;
use intentmatch::{IntentPipeline, PipelineConfig, QueryEngine};
use std::time::Instant;

/// Repeats each query set enough to give the timer something to chew on.
const ROUNDS: usize = 3;

pub fn run(opts: &Options) {
    header("QPS: batch query throughput vs worker threads");

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("hardware: {cores} core(s) available — speedup is bounded by this");

    let (_, coll) = opts.collection(Domain::TechSupport, opts.posts);
    println!("building pipeline over {} posts…", coll.len());
    let pipe = IntentPipeline::build(&coll, &PipelineConfig::default());

    // Every document queries once per round, round-robin shuffled so
    // adjacent chunks don't share cache-warm clusters unrealistically.
    let mut queries: Vec<usize> = (0..coll.len()).collect();
    queries.sort_by_key(|q| (q % 7, *q));
    let k = 5;

    // Sequential reference, also used for the bit-identity check.
    let expected: Vec<Vec<(u32, f64)>> = queries.iter().map(|&q| pipe.top_k(&coll, q, k)).collect();

    // Per-query latency percentiles on the sequential path.
    let mut lat_ns: Vec<u64> = queries
        .iter()
        .map(|&q| {
            let t = Instant::now();
            std::hint::black_box(pipe.top_k(&coll, q, k));
            t.elapsed().as_nanos() as u64
        })
        .collect();
    lat_ns.sort_unstable();
    let pct = |p: f64| lat_ns[((lat_ns.len() - 1) as f64 * p) as usize] as f64 / 1_000.0;
    println!(
        "sequential per-query latency: p50 {:.0} µs, p99 {:.0} µs ({} queries)",
        pct(0.50),
        pct(0.99),
        lat_ns.len()
    );

    let mut rows = Vec::new();
    let mut base_qps = 0.0;
    for threads in [1usize, 2, 4, 8] {
        let engine = QueryEngine::new(&coll, &pipe).with_threads(threads);
        let started = Instant::now();
        let mut last = Vec::new();
        for _ in 0..ROUNDS {
            last = engine.top_k_batch(&queries, k);
        }
        let elapsed = started.elapsed();
        assert_eq!(
            last, expected,
            "batch results at {threads} thread(s) diverge from sequential"
        );
        let qps = (queries.len() * ROUNDS) as f64 / elapsed.as_secs_f64();
        if threads == 1 {
            base_qps = qps;
        }
        rows.push(vec![
            threads.to_string(),
            format!("{:.0}", qps),
            format!("{:.2}x", qps / base_qps.max(1e-9)),
            format!("{:?}", elapsed / ROUNDS as u32),
            "identical".to_string(),
        ]);
    }
    print_table(
        &["threads", "QPS", "speedup", "batch wall", "vs sequential"],
        &rows,
    );
    println!(
        "({} queries x {ROUNDS} rounds per row; results asserted bit-identical)",
        queries.len()
    );
}
