//! Fig. 11 — execution-time comparison over collection sizes (HP profile):
//! (a) total segmentation time, (b) clustering / segment-grouping time,
//! (c) average retrieval time per method.
//!
//! Paper observations to reproduce: IntentIntent-MR's segmentation costs
//! ~60% more than sentence splitting (border selection on top of CM
//! annotation) while Content-MR's is cheapest (no POS tagging); clustering
//! is fast because segments are 28 numeric features; FullText retrieval is
//! fastest (single index), LDA slowest (no index), and the MR methods sit
//! close together in between.

use crate::util::{header, print_table, Options};
use forum_corpus::Domain;
use intentmatch::{MethodKind, PostCollection};
use std::time::Instant;

pub fn run(opts: &Options) {
    header("Fig. 11 — Execution times vs collection size (HP Forum profile)");
    let sizes = [opts.posts / 10, opts.posts / 3, opts.posts];
    // (a) + (b): build-phase timings for the intention pipeline.
    let mut rows_build = Vec::new();
    // (c): average retrieval latency per method.
    let mut rows_retrieval = Vec::new();
    for &n in &sizes {
        let n = n.max(50);
        let corpus = opts.corpus(Domain::TechSupport, n);
        let t = Instant::now();
        let coll = PostCollection::from_corpus(&corpus);
        let parse = t.elapsed();

        let pipe = intentmatch::IntentPipeline::build(&coll, &Default::default());
        rows_build.push(vec![
            n.to_string(),
            format!("{:.2}s", (parse + pipe.timings.segmentation).as_secs_f64()),
            format!("{:.2}s", pipe.timings.features.as_secs_f64()),
            format!("{:.2}s", pipe.timings.clustering.as_secs_f64()),
            format!("{:.2}s", pipe.timings.indexing.as_secs_f64()),
        ]);

        let mut row = vec![n.to_string()];
        let queries = 50.min(n);
        for kind in MethodKind::ALL {
            let m = kind.build(&coll, opts.seed);
            let t = Instant::now();
            for q in 0..queries {
                let _ = m.top_k(q, 5);
            }
            let avg = t.elapsed() / queries as u32;
            row.push(format!("{:.3}ms", avg.as_secs_f64() * 1e3));
        }
        rows_retrieval.push(row);
    }
    println!("\n(a)+(b) offline phases of IntentIntent-MR");
    print_table(
        &[
            "posts",
            "parse+segment",
            "features",
            "clustering",
            "indexing",
        ],
        &rows_build,
    );
    println!("\n(c) average retrieval time per query");
    print_table(
        &[
            "posts",
            "LDA",
            "FullText",
            "Content-MR",
            "SentIntent-MR",
            "IntentIntent-MR",
        ],
        &rows_retrieval,
    );
    println!("\nPaper: FullText fastest (<0.14ms at 100k), LDA slowest (1.33ms, no index),");
    println!("MR methods close together; retrieval grows sublinearly with collection size.");
}
