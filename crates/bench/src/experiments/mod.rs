//! One module per reproduced table/figure.

pub mod ablations;
pub mod cluster_scale;
pub mod cm_vs_terms;
pub mod datasets;
pub mod early_term;
pub mod fig11;
pub mod fig3;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod ingest;
pub mod qps;
pub mod serve_scale;
pub mod store_scale;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table6;
