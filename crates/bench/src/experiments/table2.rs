//! Table 2 — inter-annotator agreement on the segmentation task.
//!
//! Paper reference (HP / TripAdvisor): ±10 chars 0.20/64% and 0.35/71%;
//! ±25 chars 0.41/71% and 0.44/75%; ±40 chars 0.68/77% and 0.71/83%
//! (κ / observed agreement). The simulated panel reproduces the qualitative
//! pattern: agreement rises steeply with the offset tolerance and κ shows
//! substantially-better-than-chance agreement.

use crate::util::{f3, header, print_table, Options};
use forum_corpus::annotator::{annotate_with_panel, AnnotatorProfile};
use forum_corpus::Domain;
use forum_segment::agreement::{border_fleiss_kappa, observed_agreement, Annotation};

pub fn run(opts: &Options) {
    header("Table 2 — User agreement on the segmentation task");
    // The paper's study: 500 posts from the support forum, 100 from the
    // travel forum, 30 annotators.
    let panel = AnnotatorProfile::panel(30);
    let mut rows = Vec::new();
    for offset in [10usize, 25, 40] {
        let mut row = vec![format!("±{offset} chars")];
        for (domain, n_posts) in [(Domain::TechSupport, 500), (Domain::Travel, 100)] {
            let corpus = opts.corpus(domain, n_posts.min(opts.posts));
            let spec = domain.spec();
            let mut kappa_sum = 0.0;
            let mut agree_sum = 0.0;
            let mut n = 0.0;
            for (i, post) in corpus.posts.iter().enumerate() {
                let sims = annotate_with_panel(post, spec, &panel, opts.seed ^ (i as u64));
                let anns: Vec<Annotation> = sims
                    .iter()
                    .map(|a| Annotation::new(a.border_offsets.clone()))
                    .collect();
                kappa_sum += border_fleiss_kappa(&anns, offset, post.text.len());
                agree_sum += observed_agreement(&anns, offset);
                n += 1.0;
            }
            row.push(format!(
                "{}/{:.0}%",
                f3(kappa_sum / n),
                100.0 * agree_sum / n
            ));
        }
        rows.push(row);
    }
    print_table(
        &[
            "Offset",
            "HP Forum (kappa/agree)",
            "TripAdvisor (kappa/agree)",
        ],
        &rows,
    );
    println!(
        "\nPaper: ±10 0.20/64% | 0.35/71%;  ±25 0.41/71% | 0.44/75%;  ±40 0.68/77% | 0.71/83%"
    );
    println!(
        "Annotators: 30 simulated; segments/post mean ~4.2 (HP) and ~5.2 (Trip), as in the study."
    );
}
