//! Offline clustering at scale: exact vs norm-pruned vs parallel DBSCAN.
//!
//! The paper's offline stage clusters every segment vector once per
//! rebuild (Section 6); at StackOverflow scale that is hundreds of
//! thousands of 28-dimensional points, and the textbook O(n²) scan
//! dominates the build. This experiment times three engines on the same
//! synthetic segment vectors:
//!
//!   reference  the seed's sequential BFS DBSCAN (full n² distance scan)
//!   pruned     `dbscan_matrix` at 1 thread (norm-band + early-abort)
//!   parallel   `dbscan_matrix` with auto threads (one worker per core)
//!
//! Labels are asserted bit-identical across all engines at every size,
//! and the speedups land in `BENCH_cluster.json`:
//!
//!   speedup_pruned    reference time / pruned x1 time — `null` when the
//!                     reference engine was skipped (no baseline ran, so
//!                     there is no number to report)
//!   speedup_parallel  pruned x1 time / parallel time — how much the fan
//!                     out buys over one thread of the *same* engine,
//!                     bounded by the core count reported alongside
//!
//! The reference engine is skipped above [`MAX_REFERENCE_POINTS`] points
//! where the quadratic scan stops being a reasonable thing to wait for;
//! its fields are `null` there, never a sentinel that could be mistaken
//! for a measurement.

use crate::util::{f3, header, print_table, Options};
use forum_cluster::{dbscan_matrix, dbscan_reference, DbscanConfig, DbscanResult, PointMatrix};
use forum_obs::json::Json;
use std::time::Instant;

/// Largest size at which the quadratic reference engine still runs.
const MAX_REFERENCE_POINTS: usize = 50_000;

/// Feature dimensionality of a segment vector (CM weights + structure).
const DIM: usize = forum_cluster::SEGMENT_FEATURE_DIM;

/// SplitMix64 — a tiny deterministic generator so the bench does not pull
/// a random-number dependency into the experiments binary.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Synthetic segment vectors: Gaussian-ish blobs around `centers` cluster
/// centres, each centre scaled by a factor in `[0.2, 2.6]` so the cloud
/// has genuine L2-norm spread for the norm-band index to exploit — real
/// segment vectors vary in norm with segment length the same way.
fn synthetic_segments(n: usize, centers: usize, seed: u64) -> PointMatrix {
    let mut rng = SplitMix64(seed);
    let mut centroids = Vec::with_capacity(centers);
    for _ in 0..centers {
        let scale = 0.2 + 2.4 * rng.next_f64();
        let c: Vec<f64> = (0..DIM).map(|_| scale * rng.next_f64()).collect();
        centroids.push(c);
    }
    let mut points = PointMatrix::with_dim(DIM);
    let mut row = vec![0.0; DIM];
    for i in 0..n {
        let c = &centroids[i % centers];
        for (d, slot) in row.iter_mut().enumerate() {
            // Sum of three uniforms, centred: cheap bell-shaped noise.
            let noise = rng.next_f64() + rng.next_f64() + rng.next_f64() - 1.5;
            *slot = c[d] + 0.05 * noise;
        }
        points.push(&row);
    }
    points
}

fn timed(f: impl FnOnce() -> DbscanResult) -> (DbscanResult, f64) {
    let started = Instant::now();
    let result = f();
    (result, started.elapsed().as_secs_f64())
}

pub fn run(opts: &Options) {
    header("cluster_scale: exact vs pruned vs parallel DBSCAN");

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("hardware: {cores} core(s) available — parallel speedup is bounded by this");

    // `--posts N` caps the sweep (CI smoke passes `--posts 10000`); the
    // sweep always includes at least the 10k size.
    let cap = opts.posts.max(10_000);
    let sizes: Vec<usize> = [10_000usize, 50_000, 200_000]
        .into_iter()
        .filter(|&s| s <= cap)
        .collect();
    let cfg = DbscanConfig {
        eps: 0.30,
        min_pts: 8,
    };
    println!(
        "sweep: {sizes:?} points, dim {DIM}, eps {}, min_pts {}",
        cfg.eps, cfg.min_pts
    );

    let mut rows = Vec::new();
    let mut size_reports = Vec::new();
    for &n in &sizes {
        let points = synthetic_segments(n, 24, opts.seed);

        let reference = (n <= MAX_REFERENCE_POINTS).then(|| {
            let rows: Vec<Vec<f64>> = points.to_rows();
            timed(|| dbscan_reference(&rows, &cfg))
        });
        let (pruned, pruned_s) = timed(|| dbscan_matrix(&points, &cfg, 1));
        // `0` = auto: one worker per available core, however many this
        // machine actually has — a hard-coded worker count oversubscribes
        // small machines and undersells big ones.
        let (parallel, parallel_s) = timed(|| dbscan_matrix(&points, &cfg, 0));

        assert_eq!(
            pruned.labels, parallel.labels,
            "parallel labels diverge from single-thread at {n} points"
        );
        if let Some((ref reference, _)) = reference {
            assert_eq!(
                reference.labels, pruned.labels,
                "pruned labels diverge from the reference engine at {n} points"
            );
        }

        // Fraction of the full n² distance matrix the pruned engine
        // actually evaluated — the norm band plus early abort at work.
        let eval_ratio = pruned.stats.dist_evals as f64 / (n as f64 * n as f64);
        let speedup_pruned = reference
            .as_ref()
            .map(|&(_, reference_s)| reference_s / pruned_s.max(1e-9));
        let speedup_parallel = pruned_s / parallel_s.max(1e-9);
        rows.push(vec![
            n.to_string(),
            pruned.num_clusters.to_string(),
            reference
                .as_ref()
                .map_or_else(|| "skipped".to_string(), |&(_, s)| format!("{s:.2}s")),
            format!("{pruned_s:.2}s"),
            format!("{parallel_s:.2}s"),
            speedup_pruned.map_or_else(|| "-".to_string(), |s| format!("{s:.2}x")),
            format!("{:.2}x", speedup_parallel),
            f3(eval_ratio),
        ]);
        size_reports.push(
            Json::obj()
                .with("points", n)
                .with("clusters", pruned.num_clusters)
                .with("noise", pruned.num_noise())
                .with(
                    "reference_s",
                    reference
                        .as_ref()
                        .map_or(Json::Null, |&(_, s)| Json::from(s)),
                )
                .with("pruned_s", pruned_s)
                .with("parallel_s", parallel_s)
                .with(
                    "speedup_pruned",
                    speedup_pruned.map_or(Json::Null, Json::from),
                )
                .with("speedup_parallel", speedup_parallel)
                .with("dist_eval_ratio", eval_ratio)
                .with("labels_identical", true),
        );
    }

    print_table(
        &[
            "points",
            "clusters",
            "reference",
            "pruned x1",
            "parallel auto",
            "speedup vs ref",
            "speedup vs x1",
            "dist evals/n²",
        ],
        &rows,
    );
    println!("(speedup vs ref is '-' where the quadratic reference was skipped — no");
    println!(" baseline ran; speedup vs x1 compares the same engine at 1 vs {cores} worker(s);");
    println!(" labels asserted bit-identical across every engine and thread count)");

    let report = Json::obj()
        .with("experiment", "cluster_scale")
        .with("dim", DIM)
        .with("eps", cfg.eps)
        .with("min_pts", cfg.min_pts)
        .with("cores", cores)
        .with("seed", opts.seed)
        .with("sizes", size_reports);
    let path = "BENCH_cluster.json";
    match std::fs::write(path, format!("{report}\n")) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("error: could not write {path}: {e}"),
    }
}
