//! Table 4 (mean precision of the five methods, + gain over FullText),
//! Table 5 (test-corpus description) and Fig. 10 (distribution of
//! per-list precision).
//!
//! Paper reference points: HP Forum — LDA 0.01, FullText 0.16, Content-MR
//! 0.065, SentIntent-MR 0.16, IntentIntent-MR 0.26 (gain +10pp);
//! TripAdvisor — 0.21 / 0.53 / 0.27 / 0.45 / 0.65 (+12pp); StackOverflow —
//! FullText 0.161 vs IntentIntent-MR 0.262 (+10.1pp), with 28.6% fewer
//! zero-true-positive lists.

use crate::util::{f3, header, print_table, Options};
use forum_corpus::oracle::RaterPanel;
use forum_corpus::Domain;
use intentmatch::{evaluate_method, EvalConfig, MethodKind};

pub fn run(opts: &Options) {
    header("Table 4 — Comparison of Methods (Mean Precision)");
    let mut rows = Vec::new();
    type MethodCurves = Vec<(&'static str, Vec<f64>)>;
    let mut fig10: Vec<(Domain, MethodCurves)> = Vec::new();
    let mut table5: Vec<Vec<String>> = Vec::new();

    for domain in Domain::ALL {
        // StackOverflow: the paper only ran the two strongest methods.
        let methods: &[MethodKind] = if domain == Domain::Programming {
            &[MethodKind::FullText, MethodKind::IntentIntentMr]
        } else {
            &MethodKind::ALL
        };
        let (corpus, coll) = opts.collection(domain, opts.posts);
        let panel = RaterPanel::new(3, 0.02, opts.seed ^ 0xA5A5);
        let cfg = EvalConfig {
            num_queries: opts.queries,
            k: 5,
        };

        let mut row = vec![domain.name().to_string()];
        let mut fulltext_p = f64::NAN;
        let mut intent_p = f64::NAN;
        let mut dists = Vec::new();
        let mut total_pairs = 0usize;
        for kind in MethodKind::ALL {
            if !methods.contains(&kind) {
                row.push("-".to_string());
                continue;
            }
            let m = kind.build(&coll, opts.seed);
            let eval = evaluate_method(m.as_ref(), &corpus, &panel, &cfg);
            row.push(f3(eval.mean_precision));
            total_pairs += eval.pairs;
            if kind == MethodKind::FullText {
                fulltext_p = eval.mean_precision;
            }
            if kind == MethodKind::IntentIntentMr {
                intent_p = eval.mean_precision;
            }
            dists.push((kind.name(), eval.per_query.clone()));
        }
        row.push(format!("{:+.1}pp", 100.0 * (intent_p - fulltext_p)));
        rows.push(row);
        fig10.push((domain, dists));

        // Table 5 row: post pairs judged, evaluations, rater agreement.
        let m = MethodKind::FullText.build(&coll, opts.seed);
        let lists: Vec<(usize, Vec<u32>)> = (0..cfg.num_queries.min(corpus.len()))
            .map(|q| (q, m.top_k(q, 5).into_iter().map(|(d, _)| d).collect()))
            .collect();
        let kappa = intentmatch::eval::rater_agreement(&corpus, &panel, &lists);
        table5.push(vec![
            domain.name().to_string(),
            corpus.len().to_string(),
            methods.len().to_string(),
            total_pairs.to_string(),
            (total_pairs * panel.len()).to_string(),
            f3(kappa),
        ]);
    }

    print_table(
        &[
            "Dataset",
            "LDA",
            "FullText",
            "Content-MR",
            "SentIntent-MR",
            "IntentIntent-MR",
            "Gain",
        ],
        &rows,
    );
    println!(
        "\nPaper: HP 0.01/0.16/0.065/0.16/0.26 (+10pp); Trip 0.21/0.53/0.27/0.45/0.65 (+12pp); SO -/0.161/-/-/0.262 (+10.1pp)"
    );

    header("Table 5 — Test-Corpus Description");
    print_table(
        &[
            "Dataset",
            "Posts",
            "Methods",
            "Post pairs",
            "Evaluations",
            "Rater kappa",
        ],
        &table5,
    );
    println!("\nPaper kappa: 0.87 (HP), 0.81 (Trip), 0.794 (SO)");

    header("Fig. 10 — Distribution of per-list precision");
    for (domain, dists) in fig10 {
        println!(
            "\n[{}] lists by precision bucket (0, (0,.2], (.2,.4], (.4,.6], (.6,.8], (.8,1])",
            domain.name()
        );
        let mut rows = Vec::new();
        for (name, per_query) in dists {
            let mut buckets = [0usize; 6];
            for &p in &per_query {
                let b = if p == 0.0 {
                    0
                } else {
                    1 + (((p - 1e-9) / 0.2) as usize).min(4)
                };
                buckets[b] += 1;
            }
            rows.push(
                std::iter::once(name.to_string())
                    .chain(buckets.iter().map(|b| b.to_string()))
                    .collect(),
            );
        }
        print_table(
            &["Method", "0", "<=0.2", "<=0.4", "<=0.6", "<=0.8", "<=1.0"],
            &rows,
        );
    }
}
