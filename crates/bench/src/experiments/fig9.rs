//! Fig. 9 — error under different coherence/depth functions.
//!
//! The paper compares cosine dissimilarity, Euclidean distance, Manhattan
//! distance (as depth functions) and richness (as a coherence function)
//! against Shannon diversity, measuring for each configuration the share of
//! posts whose error decreases / stays / increases relative to the
//! unsegmented baseline, and the mean error change. Shannon diversity
//! reduces the error the most (79.9% of posts improved, −0.24 average).

use crate::experiments::cm_vs_terms::annotations_to_references;
use crate::util::{f3, header, print_table, Options};
use forum_corpus::annotator::{annotate_with_panel, AnnotatorProfile};
use forum_corpus::Domain;
use forum_segment::metrics::mult_win_diff;
use forum_segment::scoring::{CoherenceFn, DepthFn, ScoreConfig};
use forum_segment::strategies::greedy_voting;
use forum_segment::texttiling::{texttiling, TextTilingConfig};
use forum_segment::CmDoc;
use forum_text::{document::DocId, Document};

pub fn run(opts: &Options) {
    header("Fig. 9 — Coherence and depth functions (HP Forum sample)");
    let panel = AnnotatorProfile::panel(8);
    let corpus = opts.corpus(Domain::TechSupport, 400.min(opts.posts));
    let spec = Domain::TechSupport.spec();

    // Each configuration gets a deep-border guard on its own depth scale
    // (Eq. 3 depths live in [0, ~0.3]; cosine dissimilarity in [0, 1];
    // Euclidean/Manhattan on the L1-normalized 14-vectors in [0, ~1.4]).
    let configs: [(&str, ScoreConfig, f64); 5] = [
        (
            "Cos.Sim.",
            ScoreConfig {
                depth: DepthFn::CosineDissimilarity,
                ..Default::default()
            },
            0.45,
        ),
        (
            "Eucl.Dist.",
            ScoreConfig {
                depth: DepthFn::Euclidean,
                ..Default::default()
            },
            0.35,
        ),
        (
            "Manh.Dist.",
            ScoreConfig {
                depth: DepthFn::Manhattan,
                ..Default::default()
            },
            0.75,
        ),
        (
            "Richness",
            ScoreConfig {
                coherence: CoherenceFn::Richness,
                ..Default::default()
            },
            0.04,
        ),
        ("Shan.Div.", ScoreConfig::default(), 0.04),
    ];

    let mut rows = Vec::new();
    for (name, score, guard) in configs {
        let mut decrease = 0usize;
        let mut same = 0usize;
        let mut increase = 0usize;
        let mut delta = 0.0;
        let mut n = 0.0;
        for (i, post) in corpus.posts.iter().enumerate() {
            if post.num_sentences < 2 {
                continue;
            }
            let doc = Document::parse_clean(DocId(i as u32), &post.text);
            let anns = annotate_with_panel(post, spec, &panel, opts.seed ^ (i as u64));
            let refs = annotations_to_references(&doc, &anns);
            // Baseline: the term-based thematic segmentation (Section
            // 9.1.2.A's reference point for "error reduction").
            let base = mult_win_diff(&refs, &texttiling(&doc, &TextTilingConfig::default()));
            let cmdoc = CmDoc::new(doc);
            let mut cfg = crate::experiments::cm_vs_terms::segmentation_calibrated_greedy();
            cfg.score = score;
            cfg.keep_depth = guard;
            let hyp = greedy_voting(&cmdoc, &cfg);
            let err = mult_win_diff(&refs, &hyp);
            let d = err - base;
            if d < -1e-9 {
                decrease += 1;
            } else if d > 1e-9 {
                increase += 1;
            } else {
                same += 1;
            }
            delta += d;
            n += 1.0;
        }
        rows.push(vec![
            name.to_string(),
            format!("{:.1}%", 100.0 * decrease as f64 / n),
            format!("{:.1}%", 100.0 * same as f64 / n),
            format!("{:.1}%", 100.0 * increase as f64 / n),
            f3(delta / n),
        ]);
    }
    print_table(
        &[
            "Function",
            "Error decrease",
            "No change",
            "Error increase",
            "Avg change",
        ],
        &rows,
    );
    println!("\nPaper: Cos 68%/19%/11.5% -0.18; Eucl 64.7%/8.1%/29.8% -0.22; Manh 43.4%/10.7%/45.8% -0.13;");
    println!("       Richness 46.8%/11.5%/41.8% -0.17; Shannon 79.9%/15.5%/4.7% -0.24 (best).");
}
