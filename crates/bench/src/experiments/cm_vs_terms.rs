//! Section 9.1.2.A — intention representation: CM features vs term-based.
//!
//! The paper compares Hearst's term-based TextTiling against the *Tile*
//! strategy, which uses the same border-selection mechanism but represents
//! the document by its CM features. Reported result: Tile reduces the mean
//! multWinDiff error by 18% on the HP Forum sample (0.64 → 0.46) and by
//! 26% on TripAdvisor.

use crate::util::{f3, header, print_table, Options};
use forum_corpus::annotator::{annotate_with_panel, AnnotatorProfile};
use forum_corpus::Domain;
use forum_segment::metrics::mult_win_diff;
use forum_segment::strategies::{greedy_voting, tile, GreedyConfig, TileConfig};
use forum_segment::texttiling::{texttiling, TextTilingConfig};
use forum_segment::CmDoc;
use forum_text::{document::DocId, Document, Segmentation};

/// The Greedy configuration calibrated for *segmentation quality* (vs the
/// retrieval-tuned default): a simple-majority vote and a small depth
/// guard track human granularity best (see `calibrate_greedy`).
pub fn segmentation_calibrated_greedy() -> GreedyConfig {
    GreedyConfig {
        voting_majority: 3,
        keep_depth: 0.04,
        ..Default::default()
    }
}

/// Converts simulated annotations (char offsets) into sentence-level
/// reference segmentations for a document.
pub fn annotations_to_references(
    doc: &Document,
    annotations: &[forum_corpus::annotator::SimulatedAnnotation],
) -> Vec<Segmentation> {
    let n = doc.num_sentences();
    annotations
        .iter()
        .map(|a| {
            let mut borders: Vec<usize> = a
                .border_offsets
                .iter()
                .filter_map(|&off| {
                    // Snap the char offset to the nearest sentence start.
                    (1..n).min_by_key(|&s| doc.sentence_start_offset(s).abs_diff(off))
                })
                .filter(|&s| s >= 1 && s < n)
                .collect();
            borders.sort_unstable();
            borders.dedup();
            Segmentation::from_borders(n.max(1), borders)
        })
        .collect()
}

pub fn run(opts: &Options) {
    header("Sec. 9.1.2.A — CM-based Tile vs term-based TextTiling (multWinDiff)");
    let panel = AnnotatorProfile::panel(8);
    let mut rows = Vec::new();
    for (domain, n_posts) in [(Domain::TechSupport, 500), (Domain::Travel, 100)] {
        let corpus = opts.corpus(domain, n_posts.min(opts.posts));
        let spec = domain.spec();
        let mut err_terms = 0.0;
        let mut err_tile = 0.0;
        let mut err_greedy = 0.0;
        let mut n = 0.0;
        let greedy_cfg = segmentation_calibrated_greedy();
        for (i, post) in corpus.posts.iter().enumerate() {
            if post.num_sentences < 2 {
                continue;
            }
            let doc = Document::parse_clean(DocId(i as u32), &post.text);
            let anns = annotate_with_panel(post, spec, &panel, opts.seed ^ (i as u64));
            let refs = annotations_to_references(&doc, &anns);
            let hyp_terms = texttiling(&doc, &TextTilingConfig::default());
            let cmdoc = CmDoc::new(doc);
            let hyp_tile = tile(&cmdoc, &TileConfig::default());
            let hyp_greedy = greedy_voting(&cmdoc, &greedy_cfg);
            err_terms += mult_win_diff(&refs, &hyp_terms);
            err_tile += mult_win_diff(&refs, &hyp_tile);
            err_greedy += mult_win_diff(&refs, &hyp_greedy);
            n += 1.0;
        }
        let t = err_terms / n;
        let c = err_tile / n;
        let g = err_greedy / n;
        rows.push(vec![
            domain.name().to_string(),
            f3(t),
            format!("{} ({:+.0}%)", f3(c), 100.0 * (c - t) / t),
            format!("{} ({:+.0}%)", f3(g), 100.0 * (g - t) / t),
        ]);
    }
    print_table(
        &[
            "Dataset",
            "TextTiling (terms)",
            "Tile (CM, same mechanism)",
            "Greedy (CM, intention-based)",
        ],
        &rows,
    );
    println!("\nPaper: Tile on CMs reduced error by 18% (HP) / 26% (Trip) vs term TextTiling.");
    println!("On the synthetic corpora the mechanism-controlled swap is near parity (template");
    println!("sentences lack real lexical noise); the full CM border selection shows the gain.");
}
