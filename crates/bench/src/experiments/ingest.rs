//! Ingest throughput: WAL-durable live adds against a frozen intention
//! model, compaction cost, and how both compare to the full offline
//! rebuild they replace.
//!
//! Three numbers matter for the live subsystem's pitch:
//!
//! * adds/second through [`forum_ingest::LiveStore::add`] — each one is
//!   segmented, centroid-assigned, fsync'd to the WAL, and published;
//! * compaction wall time — folding the accumulated delta into a fresh
//!   snapshot with recomputed TF/IDF statistics;
//! * the same growth done the pre-live way — a full pipeline rebuild over
//!   the union — which is what every single `add` subcommand invocation
//!   used to amortize.
//!
//! The run asserts the serving invariant along the way: after compaction
//! the epoch path answers bit-identically to the offline engine.

use crate::util::{header, print_table, Options};
use forum_corpus::{Domain, GenConfig};
use forum_ingest::{IngestConfig, LiveStore};
use intentmatch::{store, IntentPipeline, PipelineConfig, QueryEngine};
use std::time::Instant;

pub fn run(opts: &Options) {
    header("ingest_throughput: live adds + compaction vs full rebuild");

    let base_posts = opts.posts.max(50);
    let added_posts = (base_posts / 5).max(20);
    let (_, coll) = opts.collection(Domain::TechSupport, base_posts);
    println!(
        "building base pipeline over {} posts ({} to ingest)…",
        coll.len(),
        added_posts
    );
    let build_started = Instant::now();
    let pipe = IntentPipeline::build(&coll, &PipelineConfig::default());
    let base_build = build_started.elapsed();

    let dir = std::env::temp_dir().join(format!("bench-ingest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let store_path = dir.join("bench.imp");
    store::save(&store_path, &coll, &pipe).expect("save base snapshot");

    let added = forum_corpus::Corpus::generate(&GenConfig {
        domain: Domain::TechSupport,
        num_posts: added_posts,
        seed: opts.seed + 1,
    });

    let mut live = LiveStore::open(
        &store_path,
        PipelineConfig::default(),
        IngestConfig::default(),
    )
    .expect("open live store");
    let ingest_started = Instant::now();
    for p in &added.posts {
        live.add(&p.text).expect("ingest post");
    }
    let ingest_wall = ingest_started.elapsed();

    let compact_started = Instant::now();
    live.compact().expect("compact");
    let compact_wall = compact_started.elapsed();

    // The pre-live alternative: rebuild the whole pipeline over the union.
    let union_texts: Vec<String> = coll
        .docs
        .iter()
        .map(|d| d.doc.text.clone())
        .chain(added.posts.iter().map(|p| p.text.clone()))
        .collect();
    let union_coll = intentmatch::PostCollection::from_raw_texts(&union_texts);
    let rebuild_started = Instant::now();
    let union_pipe = IntentPipeline::build(&union_coll, &PipelineConfig::default());
    let rebuild_wall = rebuild_started.elapsed();
    drop(union_pipe);

    // Serving invariant: the compacted epoch answers exactly like the
    // offline engine over the reloaded snapshot.
    let (rcoll, rpipe) = store::load(&store_path).expect("reload compacted snapshot");
    let epoch = live.current();
    assert!(!epoch.has_pending());
    let engine = QueryEngine::new(&rcoll, &rpipe);
    let sample: Vec<usize> = (0..rcoll.len()).step_by(7).collect();
    for &q in &sample {
        assert_eq!(
            epoch.top_k(q as u32, 5),
            engine.top_k(q, 5),
            "epoch vs engine diverged at query {q}"
        );
    }

    let per_add = ingest_wall / added_posts.max(1) as u32;
    let rate = added_posts as f64 / ingest_wall.as_secs_f64().max(1e-9);
    print_table(
        &["phase", "wall", "per post", "notes"],
        &[
            vec![
                "base build".into(),
                format!("{base_build:?}"),
                format!("{:?}", base_build / base_posts.max(1) as u32),
                format!("{base_posts} posts, offline"),
            ],
            vec![
                "ingest".into(),
                format!("{ingest_wall:?}"),
                format!("{per_add:?}"),
                format!("{rate:.0} adds/s, fsync per record"),
            ],
            vec![
                "compact".into(),
                format!("{compact_wall:?}"),
                "-".into(),
                format!("{} posts folded, TF/IDF recomputed", added_posts),
            ],
            vec![
                "full rebuild".into(),
                format!("{rebuild_wall:?}"),
                format!("{:?}", rebuild_wall / union_texts.len().max(1) as u32),
                format!("{} posts, what `add` re-ran each call", union_texts.len()),
            ],
        ],
    );
    println!(
        "(ingest+compact {:?} vs rebuild {rebuild_wall:?}; {} sample queries asserted \
         bit-identical epoch vs engine)",
        ingest_wall + compact_wall,
        sample.len()
    );
    std::fs::remove_dir_all(&dir).ok();
}
