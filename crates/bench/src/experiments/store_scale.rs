//! Cold-start cost of the two store layouts: hydrate-everything (the
//! heap engine over `store::load`) vs the zero-copy mapped view
//! (`intentmatch::StoreView`).
//!
//! The v1 loader's startup is O(file): every section decodes into heap
//! structures before the first query can run. The v2 mapped view opens
//! in O(touched pages) — header, section directory, cluster metadata —
//! and materializes per-cluster indexes lazily on first consultation, so
//! "process start → first ranking" touches only the handful of sections
//! one query consults.
//!
//! Each measurement runs in a **fresh subprocess** (this binary re-execs
//! itself in `store_scale_child` mode) so load time and RSS are not
//! polluted by the parent's corpora or by a previously warmed allocator.
//! Both modes read the same store file through the same warm OS page
//! cache; the comparison isolates the format's decode work, not disk.
//!
//! The child prints its ranking with f64 score bits so the parent can
//! assert heap and mapped results are **bit-identical** across process
//! boundaries, and its `VmRSS` after the first query so the report shows
//! resident memory bounded by the touched sections rather than the whole
//! store. `BENCH_store.json` captures the sweep.

use crate::util::{header, print_table, Options};
use forum_corpus::Domain;
use forum_obs::json::Json;
use intentmatch::pipeline::QueryScratch;
use intentmatch::{store, IntentPipeline, PipelineConfig, PostCollection, StoreView};
use std::path::Path;
use std::time::Instant;

/// Target refined-segment counts for the sweep (the paper's index unit).
const TARGET_SEGMENTS: [usize; 3] = [10_000, 50_000, 200_000];

/// Posts used to estimate segments-per-post before sizing the corpora.
/// Small corpora over-estimate the ratio (the generator's long multi-part
/// posts dominate early), so probe at a size where it has stabilized.
const PROBE_POSTS: usize = 2_000;

/// Resident set size in KiB from `/proc/self/status` (0 when the
/// platform has no procfs — the field is then reported as `null`).
fn rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmRSS:"))
        .and_then(|rest| rest.trim().strip_suffix("kB"))
        .and_then(|n| n.trim().parse().ok())
        .unwrap_or(0)
}

/// One `(doc, score)` pair in a form that survives JSON round-trips
/// exactly: the score as its IEEE-754 bit pattern in hex.
fn ranking_token(doc: u32, score: f64) -> String {
    format!("{doc}:{:016x}", score.to_bits())
}

/// Child mode: `store_scale_child <heap|mapped> <store> <doc> <k>`.
/// Measures load and first-query latency in a fresh address space and
/// prints exactly one JSON line on stdout.
pub fn child(args: &[String]) -> ! {
    let [mode, store_path, doc, k] = args else {
        eprintln!("usage: experiments store_scale_child <heap|mapped> <store> <doc> <k>");
        std::process::exit(2);
    };
    let doc: usize = doc.parse().expect("doc must be a number");
    let k: usize = k.parse().expect("k must be a number");
    let path = Path::new(store_path);

    let started = Instant::now();
    let (load_ns, first_query_ns, ranking) = match mode.as_str() {
        "heap" => {
            let (coll, pipe) = store::load(path).expect("store loads");
            let load_ns = started.elapsed().as_nanos() as u64;
            let q = Instant::now();
            let hits = pipe.top_k(&coll, doc, k);
            (load_ns, q.elapsed().as_nanos() as u64, hits)
        }
        "mapped" => {
            let view = StoreView::open(path).expect("store opens mapped");
            let load_ns = started.elapsed().as_nanos() as u64;
            let q = Instant::now();
            let mut scratch = QueryScratch::new();
            let hits = view.top_k(doc, k, &mut scratch).expect("mapped query");
            (load_ns, q.elapsed().as_nanos() as u64, hits)
        }
        other => {
            eprintln!("unknown store_scale_child mode {other:?}");
            std::process::exit(2);
        }
    };
    let report = Json::obj()
        .with("mode", mode.as_str())
        .with("load_ns", load_ns)
        .with("first_query_ns", first_query_ns)
        .with("rss_kb", rss_kb())
        .with(
            "ranking",
            Json::Arr(
                ranking
                    .iter()
                    .map(|&(d, s)| Json::Str(ranking_token(d, s)))
                    .collect(),
            ),
        );
    println!("{report}");
    std::process::exit(0);
}

/// Runs one child measurement and parses its JSON line.
fn measure(mode: &str, store_path: &Path, doc: usize, k: usize) -> Json {
    let exe = std::env::current_exe().expect("own executable path");
    let out = std::process::Command::new(exe)
        .args([
            "store_scale_child",
            mode,
            store_path.to_str().expect("store path is UTF-8"),
            &doc.to_string(),
            &k.to_string(),
        ])
        .output()
        .expect("spawn store_scale_child");
    assert!(
        out.status.success(),
        "{mode} child failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("child stdout is UTF-8");
    Json::parse(stdout.trim()).expect("child prints one JSON line")
}

fn as_u64(j: &Json, key: &str) -> u64 {
    j.get(key).and_then(Json::as_u64).expect(key)
}

fn ms(ns: u64) -> String {
    format!("{:.1}ms", ns as f64 / 1e6)
}

pub fn run(opts: &Options) {
    header("store_scale: cold start, heap hydration vs zero-copy mapped view");

    // Estimate refined segments per post once, then size each corpus to
    // hit the target segment counts.
    let probe = opts.corpus(Domain::TechSupport, PROBE_POSTS);
    let probe_coll = PostCollection::from_corpus(&probe);
    let build_cfg = PipelineConfig {
        threads: 0, // the offline build may use every core; children are serial
        ..PipelineConfig::default()
    };
    let probe_pipe = IntentPipeline::build(&probe_coll, &build_cfg);
    let probe_segments: usize = probe_pipe.doc_segments.iter().map(Vec::len).sum();
    let segs_per_post = probe_segments as f64 / PROBE_POSTS as f64;
    println!(
        "probe: {PROBE_POSTS} posts -> {probe_segments} refined segments ({segs_per_post:.2}/post)"
    );

    // `--posts N` caps the sweep by segment count (CI smoke passes
    // `--posts 10000`); the sweep always includes the 10k size.
    let cap = opts.posts.max(10_000);
    let sizes: Vec<usize> = TARGET_SEGMENTS.into_iter().filter(|&s| s <= cap).collect();
    let dir = std::env::temp_dir().join(format!("intentmatch-store-scale-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let k = 5usize;

    let mut rows = Vec::new();
    let mut size_reports = Vec::new();
    // Refined after every build: each corpus's actual ratio predicts the
    // next, larger size better than the probe does.
    let mut ratio = segs_per_post;
    for &target in &sizes {
        let posts = ((target as f64 / ratio).ceil() as usize).max(PROBE_POSTS);
        let corpus = opts.corpus(Domain::TechSupport, posts);
        let coll = PostCollection::from_corpus(&corpus);
        let build_started = Instant::now();
        let pipe = IntentPipeline::build(&coll, &build_cfg);
        let build_s = build_started.elapsed().as_secs_f64();
        let segments: usize = pipe.doc_segments.iter().map(Vec::len).sum();
        ratio = segments as f64 / posts as f64;
        let store_path = dir.join(format!("scale-{target}.imp"));
        store::save(&store_path, &coll, &pipe).expect("save store");
        let store_bytes = std::fs::metadata(&store_path).map(|m| m.len()).unwrap_or(0);
        println!(
            "built {posts} posts -> {segments} segments, {} clusters, \
             {:.1} MiB store, build {build_s:.1}s",
            pipe.num_clusters(),
            store_bytes as f64 / (1024.0 * 1024.0),
        );

        // Query the middle document — an arbitrary but deterministic
        // choice that consults a typical number of clusters.
        let doc = posts / 2;
        let heap = measure("heap", &store_path, doc, k);
        let mapped = measure("mapped", &store_path, doc, k);
        assert_eq!(
            heap.get("ranking"),
            mapped.get("ranking"),
            "heap and mapped rankings must be bit-identical at {segments} segments"
        );

        let heap_cold = as_u64(&heap, "load_ns") + as_u64(&heap, "first_query_ns");
        let mapped_cold = as_u64(&mapped, "load_ns") + as_u64(&mapped, "first_query_ns");
        let speedup = heap_cold as f64 / mapped_cold.max(1) as f64;
        let heap_rss = as_u64(&heap, "rss_kb");
        let mapped_rss = as_u64(&mapped, "rss_kb");
        rows.push(vec![
            segments.to_string(),
            format!("{:.1}MiB", store_bytes as f64 / (1024.0 * 1024.0)),
            ms(as_u64(&heap, "load_ns")),
            ms(mapped_cold),
            format!("{speedup:.1}x"),
            format!("{}MiB", heap_rss / 1024),
            format!("{}MiB", mapped_rss / 1024),
        ]);
        let side = |j: &Json| {
            Json::obj()
                .with("load_ns", as_u64(j, "load_ns"))
                .with("first_query_ns", as_u64(j, "first_query_ns"))
                .with(
                    "rss_kb",
                    match as_u64(j, "rss_kb") {
                        0 => Json::Null, // no procfs on this platform
                        v => Json::from(v),
                    },
                )
        };
        size_reports.push(
            Json::obj()
                .with("target_segments", target)
                .with("posts", posts)
                .with("segments", segments)
                .with("clusters", pipe.num_clusters())
                .with("store_bytes", store_bytes)
                .with("build_s", build_s)
                .with("heap", side(&heap))
                .with("mapped", side(&mapped))
                .with("cold_start_speedup", speedup)
                .with(
                    "rss_ratio",
                    if mapped_rss > 0 {
                        Json::from(heap_rss as f64 / mapped_rss as f64)
                    } else {
                        Json::Null
                    },
                )
                .with("rankings_identical", true),
        );
    }

    print_table(
        &[
            "segments",
            "store",
            "heap load",
            "mapped cold",
            "speedup",
            "heap RSS",
            "mapped RSS",
        ],
        &rows,
    );
    println!("(cold = process start -> first ranking in a fresh subprocess; both modes");
    println!(" read the same file through a warm page cache, so the gap is decode work;");
    println!(" rankings asserted bit-identical between heap and mapped in every run)");

    let report = Json::obj()
        .with("experiment", "store_scale")
        .with("k", k)
        .with("seed", opts.seed)
        .with("segments_per_post", segs_per_post)
        .with("sizes", size_reports);
    let path = "BENCH_store.json";
    match std::fs::write(path, format!("{report}\n")) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("error: could not write {path}: {e}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}
