//! Fig. 7 — the annotators' free-form labels, grouped into categories.
//!
//! The paper's qualitative finding: labels describe *why* the author wrote
//! a segment (goals), not what it talks about (topics). The simulated
//! annotators draw labels from per-intention pools; this experiment
//! tabulates the label vocabulary observed per intention category, i.e.
//! regenerates Fig. 7's category → labels listing.

use crate::util::{header, Options};
use forum_corpus::annotator::{annotate_with_panel, AnnotatorProfile};
use forum_corpus::Domain;
use std::collections::{BTreeMap, BTreeSet};

pub fn run(opts: &Options) {
    header("Fig. 7 — Annotator labels grouped into goal categories");
    let panel = AnnotatorProfile::panel(10);
    for domain in [Domain::TechSupport, Domain::Travel] {
        let corpus = opts.corpus(domain, 150.min(opts.posts));
        let spec = domain.spec();
        // intention name -> set of labels actually produced
        let mut seen: BTreeMap<&'static str, BTreeSet<String>> = BTreeMap::new();
        for (i, post) in corpus.posts.iter().enumerate() {
            let anns = annotate_with_panel(post, spec, &panel, opts.seed ^ (i as u64));
            for ann in &anns {
                for (label, kind) in ann.labels.iter().zip(&ann.label_kinds) {
                    seen.entry(kind.name()).or_default().insert(label.clone());
                }
            }
        }
        println!("\n[{}]", domain.name());
        for (kind, labels) in seen {
            let ls: Vec<&str> = labels.iter().map(String::as_str).collect();
            println!("  {kind}: {}", ls.join(", "));
        }
    }
    println!("\nAs in the paper, labels describe the author's goal (help request, previous trial,");
    println!(
        "reason for selecting) rather than the topic, and cluster into 6-8 categories per domain."
    );
}
