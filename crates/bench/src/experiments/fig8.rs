//! Fig. 8 — comparison of the border-selection mechanisms:
//! (a) average number of borders per post, (b) mean segment coherence,
//! (c) multWinDiff error vs the (simulated) human segmentations.
//!
//! Paper findings: Tile over-segments slightly, Greedy returns fewer
//! borders than humans, StepbyStep way more; Tile and Greedy produce the
//! most coherent segments after the humans and the lowest error, with
//! Greedy approximating human segmentations best.

use crate::experiments::cm_vs_terms::annotations_to_references;
use crate::util::{f3, header, print_table, Options};
use forum_corpus::annotator::{annotate_with_panel, AnnotatorProfile};
use forum_corpus::Domain;
use forum_segment::metrics::mult_win_diff;
use forum_segment::scoring::ScoreConfig;
use forum_segment::strategies::{mean_segment_coherence, Strategy};
use forum_segment::CmDoc;
use forum_text::{document::DocId, Document};

pub fn run(opts: &Options) {
    header("Fig. 8 — Border selection mechanisms");
    let panel = AnnotatorProfile::panel(8);
    let score = ScoreConfig::default();
    for (domain, n_posts) in [(Domain::TechSupport, 400), (Domain::Travel, 100)] {
        let corpus = opts.corpus(domain, n_posts.min(opts.posts));
        let spec = domain.spec();
        let strategies = [
            Strategy::Tile(Default::default()),
            Strategy::StepByStep(score),
            Strategy::GreedyVoting(
                crate::experiments::cm_vs_terms::segmentation_calibrated_greedy(),
            ),
        ];
        let mut borders = vec![0.0f64; strategies.len() + 1];
        let mut coherence = vec![0.0f64; strategies.len() + 1];
        let mut error = vec![0.0f64; strategies.len()];
        let mut n = 0.0;
        for (i, post) in corpus.posts.iter().enumerate() {
            if post.num_sentences < 2 {
                continue;
            }
            let doc = Document::parse_clean(DocId(i as u32), &post.text);
            let anns = annotate_with_panel(post, spec, &panel, opts.seed ^ (i as u64));
            let refs = annotations_to_references(&doc, &anns);
            let cmdoc = CmDoc::new(doc);
            for (si, strat) in strategies.iter().enumerate() {
                let hyp = strat.run(&cmdoc);
                borders[si] += hyp.borders().len() as f64;
                coherence[si] += mean_segment_coherence(&cmdoc, &hyp, &score);
                error[si] += mult_win_diff(&refs, &hyp);
            }
            // Human row: average over the simulated annotators.
            let h = strategies.len();
            borders[h] +=
                refs.iter().map(|r| r.borders().len() as f64).sum::<f64>() / refs.len() as f64;
            coherence[h] += refs
                .iter()
                .map(|r| mean_segment_coherence(&cmdoc, r, &score))
                .sum::<f64>()
                / refs.len() as f64;
            n += 1.0;
        }
        println!("\n[{}]", domain.name());
        let mut rows = Vec::new();
        for (si, strat) in strategies.iter().enumerate() {
            rows.push(vec![
                strat.name().to_string(),
                f3(borders[si] / n),
                f3(coherence[si] / n),
                f3(error[si] / n),
            ]);
        }
        rows.push(vec![
            "Human".to_string(),
            f3(borders[strategies.len()] / n),
            f3(coherence[strategies.len()] / n),
            "-".to_string(),
        ]);
        print_table(
            &[
                "Mechanism",
                "(a) avg borders",
                "(b) coherence",
                "(c) multWinDiff",
            ],
            &rows,
        );
    }
    println!("\nPaper: StepbyStep returns far more borders; Tile slightly more and Greedy fewer");
    println!("than humans; Tile and Greedy have the lowest error, Greedy closest to humans.");
}
