//! Serving tier under load: open-loop offered QPS against the sharded
//! [`forum_ingest::ShardServeApp`] on a [`forum_shard::PoolServer`],
//! reading p50/p99 and the shed count from the `/metrics` histograms.
//!
//! The claim under test is the admission-control design's: under
//! overload, tail latency is bounded by the **deadline** (expired
//! requests shed with `503 Retry-After` before they execute), not by the
//! queue depth — a deep queue without deadlines would let p99 grow to
//! `depth × service_time`. The experiment drives three open-loop arrival
//! rates (light / moderate / overload) for a fixed window each, resets
//! the metrics registry between levels, and reads the per-level
//! `serve/request_total_ns` histogram (admission → response, queue wait
//! included — the same distribution `/metrics` exposes) plus
//! `serve/shed_total`.
//!
//! The synthetic CI store answers in microseconds, so a per-request
//! service-time floor (`PAD`) models the multi-millisecond scans of
//! production-sized stores; one worker makes nominal capacity
//! `1 / PAD`, putting overload within reach of a socket-level client.
//!
//! Results land in `BENCH_serve.json`. CI runs this small and fails if
//! shedding never engages under overload or the overload p99 exceeds
//! `4 × deadline` (log₂ bucket resolution plus scheduling slack).

use crate::util::{header, print_table, Options};
use forum_corpus::Domain;
use forum_ingest::{wal_path_for, IngestConfig, LiveStore, ShardServeApp, ShardServeConfig};
use forum_obs::json::Json;
use forum_obs::Registry;
use forum_shard::PoolServer;
use intentmatch::{store, IntentPipeline, PipelineConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Service-time floor per request: models a production-sized scan on the
/// microsecond-fast synthetic store, and pins nominal capacity at
/// `1 / PAD` per worker so the offered-QPS levels mean something.
const PAD: Duration = Duration::from_millis(5);

/// Admission deadline: the bound the overload p99 is held to.
const DEADLINE: Duration = Duration::from_millis(100);

/// Deliberately deep queue: deep enough that draining it fully
/// (`QUEUE_DEPTH × PAD` = 1.28 s) would blow far past the deadline — so a
/// bounded overload p99 can only come from deadline shedding, not from
/// the queue being too short to hurt.
const QUEUE_DEPTH: usize = 256;

/// Offered load as a fraction of nominal capacity, per level.
const LEVELS: [(&str, f64); 3] = [("light", 0.25), ("moderate", 0.6), ("overload", 3.0)];

/// Open-loop window per level.
const WINDOW: Duration = Duration::from_secs(2);

pub fn run(opts: &Options) {
    header("serve_scale: offered QPS vs latency and shedding on the sharded pool");

    let registry = Registry::global();
    registry.set_enabled(true);

    let dir = std::env::temp_dir().join(format!("bench-serve-scale-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let store_path = dir.join("serve_scale.imp");

    let (_, coll) = opts.collection(Domain::TechSupport, opts.posts);
    println!("building pipeline over {} posts…", coll.len());
    let pipe = IntentPipeline::build(&coll, &PipelineConfig::default());
    store::save(&store_path, &coll, &pipe).expect("save store");
    let num_docs = coll.len();

    let live = LiveStore::open(
        &store_path,
        PipelineConfig::default(),
        IngestConfig::default(),
    )
    .expect("open live store");
    let shards = 2;
    let app = ShardServeApp::new(
        live.handle(),
        wal_path_for(&store_path),
        ShardServeConfig {
            shards,
            ..ShardServeConfig::default()
        },
    );

    let workers = 1;
    let server = PoolServer::bind("127.0.0.1:0")
        .expect("bind")
        .with_workers(workers)
        .with_queue_depth(QUEUE_DEPTH)
        .with_deadline(DEADLINE);
    let addr = server.local_addr().expect("local addr");
    app.set_stopper(server.stopper().expect("stopper"));
    let handler_app = app.clone();
    let join = std::thread::spawn(move || {
        server.run(Arc::new(move |req: &forum_obs::serve::Request| {
            // The service-time floor: occupy the worker the way a
            // production-sized scan would, then answer for real.
            std::thread::sleep(PAD);
            handler_app.handle(req)
        }))
    });

    // Warm up: the first exchanges pay for lazy allocations and page-ins.
    for q in 0..3u64 {
        exchange(addr, q % num_docs as u64);
    }

    let capacity = workers as f64 / PAD.as_secs_f64();
    println!(
        "pool: {shards} shard(s), {workers} worker(s), queue {QUEUE_DEPTH}, \
         deadline {DEADLINE:?}, service floor {PAD:?} (nominal capacity {capacity:.0}/s)"
    );

    let mut rows = Vec::new();
    let mut level_reports = Vec::new();
    let mut overload_ok = true;
    for (name, fraction) in LEVELS {
        let offered = capacity * fraction;
        let interval = Duration::from_secs_f64(1.0 / offered);
        registry.reset();

        // Open loop: arrivals fire on the clock regardless of completions
        // — exactly the regime where a closed-loop client would silently
        // self-throttle and hide the overload.
        let started = Instant::now();
        let mut clients = Vec::new();
        let mut sent = 0u64;
        while started.elapsed() < WINDOW {
            let due = started + interval * sent as u32;
            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            let doc = (sent * 17) % num_docs as u64;
            clients.push(std::thread::spawn(move || exchange(addr, doc)));
            sent += 1;
        }
        let mut served = 0u64;
        let mut shed_seen = 0u64;
        for c in clients {
            match c.join().expect("client thread") {
                200 => served += 1,
                503 => shed_seen += 1,
                _ => {}
            }
        }

        let snapshot = registry.snapshot();
        let shed = snapshot.counter("serve/shed_total");
        let (p50_ms, p99_ms) = snapshot
            .histogram("serve/request_total_ns")
            .map(|h| (h.p50_est() / 1e6, h.p99_est() / 1e6))
            .unwrap_or((0.0, 0.0));
        let bound_ms = 4.0 * DEADLINE.as_secs_f64() * 1e3;
        let bounded = p99_ms <= bound_ms;
        if name == "overload" {
            overload_ok = bounded && shed > 0;
        }

        rows.push(vec![
            name.to_string(),
            format!("{offered:.0}"),
            sent.to_string(),
            served.to_string(),
            shed.to_string(),
            format!("{p50_ms:.1}"),
            format!("{p99_ms:.1}"),
            if bounded { "yes" } else { "NO" }.to_string(),
        ]);
        level_reports.push(
            Json::obj()
                .with("level", name)
                .with("offered_qps", offered)
                .with("sent", sent)
                .with("served", served)
                .with("shed", shed)
                .with("shed_seen_by_clients", shed_seen)
                .with("p50_ms", p50_ms)
                .with("p99_ms", p99_ms)
                .with("bounded", bounded),
        );
    }

    print_table(
        &[
            "level",
            "QPS",
            "sent",
            "served",
            "shed",
            "p50 ms",
            "p99 ms",
            "p99<=4xDL",
        ],
        &rows,
    );
    println!(
        "(each level runs an open {WINDOW:?} window; p50/p99 from the per-level\n \
         serve_request_total_ns histogram — admission to response, queue wait included;\n \
         full queue drain would take {:?}, the deadline is {DEADLINE:?})",
        PAD * QUEUE_DEPTH as u32
    );

    // Clean shutdown drains whatever the last window left behind.
    let (status, _) = shutdown(addr);
    assert_eq!(status, 200, "shutdown must answer");
    join.join().expect("server thread");

    let report = Json::obj()
        .with("experiment", "serve_scale")
        .with("posts", num_docs as u64)
        .with("shards", shards as u64)
        .with("workers", workers as u64)
        .with("queue_depth", QUEUE_DEPTH as u64)
        .with("deadline_ms", DEADLINE.as_millis() as u64)
        .with("service_floor_ms", PAD.as_millis() as u64)
        .with("window_ms", WINDOW.as_millis() as u64)
        .with("seed", opts.seed)
        .with("levels", Json::Arr(level_reports));
    let path = "BENCH_serve.json";
    match std::fs::write(path, format!("{report}\n")) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("error: could not write {path}: {e}"),
    }

    std::fs::remove_file(&store_path).ok();
    std::fs::remove_file(wal_path_for(&store_path)).ok();

    assert!(
        overload_ok,
        "overload must shed (shed_total > 0) with p99 bounded by 4x the deadline — \
         see the table above"
    );
}

/// One `GET /query` over a fresh connection; returns the status code.
fn exchange(addr: SocketAddr, doc: u64) -> u16 {
    let go = || -> std::io::Result<u16> {
        let mut stream = TcpStream::connect(addr)?;
        write!(
            stream,
            "GET /query?doc={doc}&k=5 HTTP/1.1\r\nHost: b\r\n\r\n"
        )?;
        let mut out = String::new();
        stream.read_to_string(&mut out)?;
        Ok(out
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0))
    };
    go().unwrap_or(0)
}

fn shutdown(addr: SocketAddr) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"POST /shutdown HTTP/1.1\r\nHost: b\r\nContent-Length: 0\r\n\r\n")
        .expect("write");
    let mut out = String::new();
    stream.read_to_string(&mut out).ok();
    let status = out
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = out
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}
