//! Criterion micro-benches for the retrieval layer: index building,
//! per-cluster top-n scoring, full Algorithm 2 matching, and the baselines —
//! the costs behind Fig. 11(c) and Table 6.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use forum_corpus::{Corpus, Domain, GenConfig};
use intentmatch::{
    FullTextMatcher, IntentPipeline, Matcher, MethodKind, PipelineConfig, PostCollection,
};

fn setup(posts: usize) -> (Corpus, PostCollection) {
    let corpus = Corpus::generate(&GenConfig {
        domain: Domain::TechSupport,
        num_posts: posts,
        seed: 19,
    });
    let coll = PostCollection::from_corpus(&corpus);
    (corpus, coll)
}

fn bench_build(c: &mut Criterion) {
    let (_, coll) = setup(400);
    let mut g = c.benchmark_group("build");
    g.sample_size(10);
    g.bench_function("intent_pipeline_400posts", |b| {
        b.iter(|| black_box(IntentPipeline::build(&coll, &PipelineConfig::default())));
    });
    g.bench_function("fulltext_index_400posts", |b| {
        b.iter(|| black_box(FullTextMatcher::build(&coll)));
    });
    g.finish();
}

fn bench_queries(c: &mut Criterion) {
    let (_, coll) = setup(1000);
    let pipeline = IntentPipeline::build(&coll, &PipelineConfig::default());
    let fulltext = FullTextMatcher::build(&coll);
    let mut g = c.benchmark_group("retrieval");
    g.bench_function("intent_top5", |b| {
        let mut q = 0;
        b.iter(|| {
            q = (q + 1) % 200;
            black_box(pipeline.top_k(&coll, q, 5))
        });
    });
    g.bench_function("fulltext_top5", |b| {
        let mut q = 0;
        b.iter(|| {
            q = (q + 1) % 200;
            black_box(fulltext.top_k(q, 5))
        });
    });
    g.finish();
}

fn bench_method_builds(c: &mut Criterion) {
    let (_, coll) = setup(200);
    let mut g = c.benchmark_group("method_build_200posts");
    g.sample_size(10);
    for kind in [MethodKind::ContentMr, MethodKind::SentIntentMr] {
        g.bench_function(kind.name(), |b| {
            b.iter(|| {
                let m = kind.build(&coll, 3);
                black_box(m.top_k(0, 5))
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_build, bench_queries, bench_method_builds);
criterion_main!(benches);
