//! Criterion micro-benches for the text and segmentation layers: the hot
//! paths behind Fig. 11(a) (per-post segmentation cost) and the Fig. 8
//! strategy comparison.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use forum_corpus::{Corpus, Domain, GenConfig};
use forum_nlp::cm::annotate_document;
use forum_segment::scoring::ScoreConfig;
use forum_segment::strategies::{greedy_voting, step_by_step, tile, GreedyConfig, TileConfig};
use forum_segment::texttiling::{texttiling, TextTilingConfig};
use forum_segment::CmDoc;
use forum_text::{document::DocId, Document};

fn sample_posts(n: usize) -> Vec<String> {
    Corpus::generate(&GenConfig {
        domain: Domain::TechSupport,
        num_posts: n,
        seed: 7,
    })
    .posts
    .into_iter()
    .map(|p| p.text)
    .collect()
}

fn bench_text_pipeline(c: &mut Criterion) {
    let texts = sample_posts(64);
    let mut g = c.benchmark_group("text");
    g.bench_function("parse_document", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % texts.len();
            black_box(Document::parse_clean(DocId(0), &texts[i]))
        });
    });
    let docs: Vec<Document> = texts
        .iter()
        .map(|t| Document::parse_clean(DocId(0), t))
        .collect();
    g.bench_function("cm_annotation", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % docs.len();
            black_box(annotate_document(&docs[i]))
        });
    });
    g.bench_function("stemmer", |b| {
        b.iter(|| {
            for w in ["installation", "degraded", "performance", "compatibility"] {
                black_box(forum_text::stem::stem(w));
            }
        });
    });
    g.finish();
}

fn bench_strategies(c: &mut Criterion) {
    let texts = sample_posts(64);
    let cmdocs: Vec<CmDoc> = texts
        .iter()
        .map(|t| CmDoc::new(Document::parse_clean(DocId(0), t)))
        .collect();
    let mut g = c.benchmark_group("segmentation");
    g.bench_function("tile", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % cmdocs.len();
            black_box(tile(&cmdocs[i], &TileConfig::default()))
        });
    });
    g.bench_function("step_by_step", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % cmdocs.len();
            black_box(step_by_step(&cmdocs[i], &ScoreConfig::default()))
        });
    });
    g.bench_function("greedy_voting", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % cmdocs.len();
            black_box(greedy_voting(&cmdocs[i], &GreedyConfig::default()))
        });
    });
    let docs: Vec<Document> = texts
        .iter()
        .map(|t| Document::parse_clean(DocId(0), t))
        .collect();
    g.bench_function("texttiling_terms", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % docs.len();
            black_box(texttiling(&docs[i], &TextTilingConfig::default()))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_text_pipeline, bench_strategies);
criterion_main!(benches);
