//! Criterion micro-benches for segment grouping: feature vectors, DBSCAN
//! (exact and sampled) and k-means — the costs behind Fig. 11(b).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use forum_cluster::{dbscan, dbscan_sampled, kmeans, segment_features, DbscanConfig, KMeansConfig};
use forum_corpus::{Corpus, Domain, GenConfig};
use forum_segment::CmDoc;
use forum_text::{document::DocId, Document};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Real segment weight vectors from a generated corpus.
fn segment_vectors(posts: usize) -> Vec<Vec<f64>> {
    let corpus = Corpus::generate(&GenConfig {
        domain: Domain::TechSupport,
        num_posts: posts,
        seed: 11,
    });
    let mut out = Vec::new();
    for (i, p) in corpus.posts.iter().enumerate() {
        let cmdoc = CmDoc::new(Document::parse_clean(DocId(i as u32), &p.text));
        let whole = cmdoc.whole();
        let seg = forum_segment::strategies::sentences_baseline(&cmdoc);
        for s in seg.segments() {
            out.push(segment_features(&cmdoc.segment_tables(s), &whole));
        }
    }
    out
}

fn bench_features(c: &mut Criterion) {
    let corpus = Corpus::generate(&GenConfig {
        domain: Domain::TechSupport,
        num_posts: 32,
        seed: 3,
    });
    let cmdocs: Vec<CmDoc> = corpus
        .posts
        .iter()
        .enumerate()
        .map(|(i, p)| CmDoc::new(Document::parse_clean(DocId(i as u32), &p.text)))
        .collect();
    c.bench_function("features/segment_features", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % cmdocs.len();
            let d = &cmdocs[i];
            black_box(segment_features(&d.tables(0, d.num_units()), &d.whole()))
        });
    });
}

fn bench_clustering(c: &mut Criterion) {
    let mut g = c.benchmark_group("clustering");
    g.sample_size(10);
    for &n_posts in &[100usize, 400] {
        let vectors = segment_vectors(n_posts);
        g.bench_with_input(
            BenchmarkId::new("dbscan_exact", vectors.len()),
            &vectors,
            |b, v| {
                b.iter(|| {
                    black_box(dbscan(
                        v,
                        &DbscanConfig {
                            eps: 0.7,
                            min_pts: 16,
                        },
                    ))
                });
            },
        );
    }
    let big = segment_vectors(1500);
    g.bench_with_input(
        BenchmarkId::new("dbscan_sampled", big.len()),
        &big,
        |b, v| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(5);
                black_box(dbscan_sampled(
                    v,
                    &DbscanConfig {
                        eps: 0.7,
                        min_pts: 40,
                    },
                    2000,
                    &mut rng,
                ))
            });
        },
    );
    let medium = segment_vectors(400);
    g.bench_function("kmeans_k5", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(9);
            black_box(kmeans(
                &medium,
                &KMeansConfig {
                    k: 5,
                    ..Default::default()
                },
                &mut rng,
            ))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_features, bench_clustering);
criterion_main!(benches);
