//! Epoch-swapped serving state for live ingestion.
//!
//! A serving process holds one [`EpochHandle`]; every query clones the
//! current [`LiveEpoch`] `Arc` and evaluates against that immutable view.
//! Writers build the next epoch off to the side and [`EpochHandle::publish`]
//! it in one pointer swap — a reader sees either the state before a write
//! batch or the state after it, never a half-applied batch.
//!
//! An epoch is a frozen **base** (the last compacted
//! collection + pipeline, shared by `Arc` across epochs) plus a **delta**:
//! documents ingested since the last compaction, their per-cluster
//! [`DeltaIndex`] units, and tombstones for deletions and updates. The
//! query path ([`LiveEpoch::top_k`]) mirrors the offline engine's
//! Algorithm 1 + 2 combination exactly — same scan, same float-operation
//! order — so an epoch with an empty delta is bit-identical to
//! [`intentmatch::QueryEngine`] over the base.

use forum_index::{DeltaIndex, ScanCosts, ScoreScratch, SegmentIndex};
use forum_obs::{Trace, TraceCosts};
use intentmatch::pipeline::{
    cluster_weight_for_terms, query_cluster_groups, ranges_terms, RefinedSegment,
};
use intentmatch::{IntentPipeline, PostCollection};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// The last compacted state: what `intentmatch::store` persists.
#[derive(Debug)]
pub struct BaseState {
    /// The parsed, CM-annotated posts of the snapshot.
    pub collection: PostCollection,
    /// The built pipeline over them.
    pub pipeline: IntentPipeline,
}

impl BaseState {
    /// Number of documents in the compacted snapshot.
    pub fn len(&self) -> usize {
        self.collection.len()
    }

    /// Whether the snapshot holds no documents.
    pub fn is_empty(&self) -> bool {
        self.collection.is_empty()
    }
}

/// One document ingested since the last compaction, fully processed: parsed,
/// CM-annotated, segmented, and its segments assigned to existing intention
/// clusters. Everything compaction and serving need is precomputed here so
/// neither ever re-runs the NLP phases.
#[derive(Debug, Clone)]
pub struct DeltaDoc {
    /// Document id (continues the base id space; an update reuses the
    /// updated document's id).
    pub id: u32,
    /// The parsed, annotated document.
    pub doc: forum_segment::CmDoc,
    /// Its raw (pre-refinement) segmentation.
    pub raw_seg: forum_text::Segmentation,
    /// Refined segments, one per assigned cluster, sorted by first range —
    /// the same shape `IntentPipeline::doc_segments` holds.
    pub refined: Vec<RefinedSegment>,
    /// The normalized terms of each refined segment (parallel to
    /// `refined`).
    pub terms: Vec<Vec<String>>,
}

/// Everything ingested since the last compaction.
#[derive(Debug, Clone)]
pub struct DeltaState {
    /// Pending documents, sorted by id.
    pub docs: Vec<DeltaDoc>,
    /// One delta index per intention cluster (parallel to the base
    /// pipeline's clusters).
    pub deltas: Vec<DeltaIndex>,
    /// Ids that are dead everywhere: deleted documents.
    pub deleted: HashSet<u32>,
    /// Base ids whose *base* units are dead because the document was
    /// updated — the live version is the same-id entry in `docs`.
    pub superseded: HashSet<u32>,
    /// The next id a fresh add receives.
    pub next_id: u32,
}

impl DeltaState {
    /// An empty delta over `num_clusters` clusters, with fresh ids starting
    /// at `next_id` (the compacted collection's length).
    pub fn new(num_clusters: usize, next_id: u32) -> Self {
        DeltaState {
            docs: Vec::new(),
            deltas: vec![DeltaIndex::new(); num_clusters],
            deleted: HashSet::new(),
            superseded: HashSet::new(),
            next_id,
        }
    }

    /// Whether anything is pending (documents, deletions, or updates).
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty() && self.deleted.is_empty() && self.superseded.is_empty()
    }

    /// The pending delta document with this id, if any.
    pub fn doc(&self, id: u32) -> Option<&DeltaDoc> {
        self.docs
            .binary_search_by_key(&id, |d| d.id)
            .ok()
            .map(|i| &self.docs[i])
    }

    /// Total pending units across all cluster deltas.
    pub fn num_units(&self) -> usize {
        self.deltas.iter().map(DeltaIndex::num_units).sum()
    }
}

/// One immutable serving view: a shared base plus the delta as of some
/// write. Queries run against an epoch without any locking.
#[derive(Debug)]
pub struct LiveEpoch {
    /// The compacted snapshot (shared across epochs until a compaction
    /// replaces it).
    pub base: Arc<BaseState>,
    /// Pending writes applied on top of the base.
    pub delta: DeltaState,
    /// Base owners whose units must not surface: deleted ∪ superseded,
    /// restricted to base ids. Precomputed once per epoch.
    base_tombstones: HashSet<u32>,
    /// Monotone epoch counter, bumped by every publish.
    pub epoch: u64,
}

impl LiveEpoch {
    /// Builds an epoch view over `base` + `delta`.
    pub fn new(base: Arc<BaseState>, delta: DeltaState, epoch: u64) -> Self {
        let base_len = base.len() as u32;
        let base_tombstones = delta
            .deleted
            .iter()
            .chain(delta.superseded.iter())
            .copied()
            .filter(|&id| id < base_len)
            .collect();
        LiveEpoch {
            base,
            delta,
            base_tombstones,
            epoch,
        }
    }

    /// One past the highest assigned document id.
    pub fn num_docs(&self) -> usize {
        self.delta.next_id as usize
    }

    /// Number of documents that currently exist (assigned and not deleted).
    pub fn num_live_docs(&self) -> usize {
        self.num_docs() - self.delta.deleted.len()
    }

    /// Whether `id` names a live document.
    pub fn is_live(&self, id: u32) -> bool {
        id < self.delta.next_id && !self.delta.deleted.contains(&id)
    }

    /// Whether the epoch has uncompacted writes.
    pub fn has_pending(&self) -> bool {
        !self.delta.is_empty()
    }

    /// The (cleaned) text of a live document — from the delta if added or
    /// updated since the last compaction, else from the base.
    pub fn doc_text(&self, id: u32) -> Option<&str> {
        if !self.is_live(id) {
            return None;
        }
        if let Some(dd) = self.delta.doc(id) {
            return Some(&dd.doc.doc.text);
        }
        self.base
            .collection
            .docs
            .get(id as usize)
            .map(|d| d.doc.text.as_str())
    }

    /// The consulted clusters of query document `q`, as
    /// `(cluster, query terms)` in first-appearance order — from the delta
    /// if `q` was added or updated since the last compaction, else from the
    /// base. `None` if `q` does not name a live document.
    ///
    /// Public so the shard-parallel serving tier (`forum-shard`) can
    /// partition a query's cluster groups across shard scanners while this
    /// type keeps the single scan implementation.
    pub fn query_groups(&self, q: u32) -> Option<Vec<(usize, Vec<String>)>> {
        if !self.is_live(q) {
            return None;
        }
        if let Some(dd) = self.delta.doc(q) {
            return Some(
                dd.refined
                    .iter()
                    .zip(&dd.terms)
                    .map(|(s, t)| (s.cluster, t.clone()))
                    .collect(),
            );
        }
        let base = &*self.base;
        Some(
            query_cluster_groups(&base.pipeline.doc_segments, q as usize)
                .into_iter()
                .map(|g| {
                    let terms = ranges_terms(&base.collection, q as usize, &g.ranges);
                    (g.cluster, terms)
                })
                .collect(),
        )
    }

    /// The top-k documents related to live document `q` (Algorithm 2 with
    /// the paper's `n = 2k`).
    pub fn top_k(&self, q: u32, k: usize) -> Vec<(u32, f64)> {
        self.top_k_with_n(q, k, 2 * k)
    }

    /// Algorithm 1 + 2 over base and delta with an explicit per-intention
    /// list length `n`.
    ///
    /// Per consulted cluster: the base scan excludes tombstoned owners
    /// (exactly — see [`SegmentIndex::top_owners_excluding`]), the delta
    /// scan scores pending units under the base's frozen statistics, and
    /// the two lists merge under the engine's (score desc, owner asc)
    /// order before truncation to `n`. Base and delta owner sets are
    /// disjoint by construction (an updated document's base units are
    /// tombstoned), so the merged truncation is the true top-`n` over live
    /// documents. With an empty delta this collapses to the exact scan the
    /// batch engine runs — bit-identical scores.
    pub fn top_k_with_n(&self, q: u32, k: usize, n: usize) -> Vec<(u32, f64)> {
        self.top_k_with_n_traced(q, k, n, None)
    }

    /// [`top_k_with_n`] recording `live/base_scan` and `live/delta_scan`
    /// spans into `trace` when one is supplied — each span's duration is
    /// the wall time *accumulated* across every consulted cluster, and its
    /// costs are the summed scan-work counters for that side of the merge.
    /// Scores are bit-identical with or without a trace: the counters ride
    /// out-of-band next to the exact same float operations.
    pub fn top_k_with_n_traced(
        &self,
        q: u32,
        k: usize,
        n: usize,
        trace: Option<&mut Trace>,
    ) -> Vec<(u32, f64)> {
        forum_obs::Registry::global().incr("ingest/live_queries", 1);
        let Some(groups) = self.query_groups(q) else {
            return Vec::new();
        };
        let mut scratch = ScoreScratch::new();
        let mut acc: HashMap<u32, f64> = HashMap::new();
        let timing = trace.is_some();
        let mut clusters_routed = 0u64;
        let (mut base_ns, mut delta_ns) = (0u64, 0u64);
        let mut delta_costs = ScanCosts::default();
        for (cluster, terms) in &groups {
            let Some(scan) = self.scan_cluster_filtered(
                *cluster,
                terms,
                q,
                n,
                None,
                timing,
                &mut scratch,
                &mut delta_costs,
            ) else {
                continue;
            };
            clusters_routed += 1;
            base_ns += scan.base_ns;
            delta_ns += scan.delta_ns;
            for (owner, score) in scan.hits {
                *acc.entry(owner).or_insert(0.0) += scan.weight * score;
            }
        }
        let mut out: Vec<(u32, f64)> = acc.into_iter().collect();
        out.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("scores are finite")
                .then(a.0.cmp(&b.0))
        });
        out.truncate(k);
        if let Some(t) = trace {
            let base_costs = scratch.costs.take();
            t.push_span_ns(
                "live/base_scan",
                0,
                base_ns,
                TraceCosts {
                    clusters_routed,
                    postings_scanned: base_costs.postings_scanned,
                    candidates_pruned: base_costs.candidates_pruned,
                    heap_displacements: base_costs.heap_displacements,
                    early_exits: base_costs.early_exits,
                    ..TraceCosts::default()
                },
            );
            t.push_span_ns(
                "live/delta_scan",
                0,
                delta_ns,
                TraceCosts {
                    postings_scanned: delta_costs.postings_scanned,
                    candidates_pruned: delta_costs.candidates_pruned,
                    heap_displacements: delta_costs.heap_displacements,
                    early_exits: delta_costs.early_exits,
                    ..TraceCosts::default()
                },
            );
        }
        out
    }

    /// One consulted cluster's merged base + delta scan for query `q` —
    /// the per-cluster body of [`LiveEpoch::top_k_with_n_traced`],
    /// extracted so the shard-parallel serving tier runs *this exact
    /// code* per shard: sharded results are bit-identical to the
    /// single-scanner loop by construction, not by re-implementation.
    ///
    /// Returns `None` when the cluster contributes nothing (empty terms
    /// or non-positive combination weight). `filter` is the per-tenant
    /// visibility hook threaded into both the base postings scan and the
    /// frozen delta scan; `timing` populates `base_ns`/`delta_ns` for
    /// trace spans. `delta_costs` accumulates the delta side's work
    /// counters (base-side counters land in `scratch.costs`).
    #[allow(clippy::too_many_arguments)]
    pub fn scan_cluster_filtered(
        &self,
        cluster: usize,
        terms: &[String],
        q: u32,
        n: usize,
        filter: Option<forum_index::DocFilter>,
        timing: bool,
        scratch: &mut ScoreScratch,
        delta_costs: &mut ScanCosts,
    ) -> Option<ClusterScan> {
        if terms.is_empty() {
            return None;
        }
        let base = &*self.base;
        let scheme = base.pipeline.weighting;
        let weighted = base.pipeline.weighted_combination;
        let index = &base.pipeline.clusters[cluster].index;
        let weight = if weighted {
            cluster_weight_for_terms(index, terms)
        } else {
            1.0
        };
        if weight <= 0.0 {
            return None;
        }
        let no_tombstones = HashSet::new();
        let query = SegmentIndex::query_from_terms(terms);
        let base_start = timing.then(Instant::now);
        let mut hits = index.top_owners_excluding_filtered(
            &query,
            n,
            scheme,
            Some(q),
            &self.base_tombstones,
            filter,
            scratch,
        );
        let base_ns = base_start.map_or(0, |t0| t0.elapsed().as_nanos() as u64);
        // A full base page gives the delta scan a floor: its n-th
        // score is exact, so a pending unit whose upper bound falls
        // strictly below it can never survive the merged truncation.
        // (Ties are kept — the merge breaks them by owner id.)
        let floor = (hits.len() == n).then(|| hits[n - 1].1);
        let delta_start = timing.then(Instant::now);
        let delta_hits = self.delta.deltas[cluster].top_owners_frozen_filtered(
            index,
            &query,
            Some(q),
            &no_tombstones,
            filter,
            floor,
            delta_costs,
        );
        let delta_ns = delta_start.map_or(0, |t0| t0.elapsed().as_nanos() as u64);
        if !delta_hits.is_empty() {
            hits.extend(delta_hits);
            hits.sort_unstable_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .expect("scores are finite")
                    .then(a.0.cmp(&b.0))
            });
            hits.truncate(n);
        }
        Some(ClusterScan {
            weight,
            hits,
            base_ns,
            delta_ns,
        })
    }
}

/// One cluster's contribution to a query: the Eq. 6 combination weight and
/// the merged base + delta top-n, plus the scan's wall time split when
/// timing was requested.
#[derive(Debug, Clone)]
pub struct ClusterScan {
    /// The cluster's Algorithm 2 combination weight (squared mean IDF of
    /// the query's distinct terms in this cluster, or 1.0 unweighted).
    pub weight: f64,
    /// The merged `(owner, score)` top-n, (score desc, owner asc).
    pub hits: Vec<(u32, f64)>,
    /// Base-scan wall time in nanoseconds (0 unless timing requested).
    pub base_ns: u64,
    /// Delta-scan wall time in nanoseconds (0 unless timing requested).
    pub delta_ns: u64,
}

/// The swap point between writers and readers: an `Arc`-of-epoch behind a
/// lock held only for the duration of a pointer clone or store.
#[derive(Debug)]
pub struct EpochHandle {
    inner: RwLock<Arc<LiveEpoch>>,
}

impl EpochHandle {
    /// A handle serving `epoch`.
    pub fn new(epoch: Arc<LiveEpoch>) -> Self {
        EpochHandle {
            inner: RwLock::new(epoch),
        }
    }

    /// The current serving epoch. The returned `Arc` stays valid (and
    /// immutable) however many publishes happen after.
    pub fn current(&self) -> Arc<LiveEpoch> {
        self.inner.read().expect("epoch lock poisoned").clone()
    }

    /// Atomically replaces the serving epoch. In-flight readers keep their
    /// old `Arc`; new readers see `epoch`.
    pub fn publish(&self, epoch: Arc<LiveEpoch>) {
        forum_obs::Registry::global()
            .gauge("ingest/epoch")
            .set(epoch.epoch as i64);
        forum_obs::EventLog::global().emit(
            "epoch_swap",
            forum_obs::json::Json::obj()
                .with("epoch", epoch.epoch)
                .with("num_docs", epoch.num_docs() as u64)
                .with("pending_units", epoch.delta.num_units() as u64),
        );
        *self.inner.write().expect("epoch lock poisoned") = epoch;
    }
}
