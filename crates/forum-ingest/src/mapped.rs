//! The mapped serving application: read-only queries straight off a v2
//! store through [`intentmatch::StoreView`], no heap hydration.
//!
//! Where [`crate::serve::ServeApp`] owns a fully decoded live engine
//! (WAL, delta epochs, compaction), [`MappedServeApp`] owns only an
//! `Arc<StoreView>`: startup is O(touched pages) — header + directory +
//! cluster metadata — and each query faults in exactly the sections it
//! consults. Rankings are bit-identical to the heap engine (the view's
//! query path shares every scoring kernel; see `intentmatch::view`).
//!
//! Routes:
//!
//! * `POST /query` (also `GET`) — `?doc=N&k=K` or a JSON body
//!   `{"doc": N, "k": K}`; same response shape as the live app's
//!   non-explain path. EXPLAIN requires the hydrated engine and returns
//!   `400` here.
//! * `POST /shutdown` — stops the accept loop cleanly.
//! * everything else — the standard telemetry endpoints (`/metrics`,
//!   `/healthz`, `/readyz`, `/snapshot`, `/events`).
//!
//! The mapped reader serves a *snapshot*, not a live store: it never
//! opens the WAL, so `intentmatch serve --mapped` refuses to start while
//! WAL records are pending (see [`pending_wal_records`]) — serving a
//! snapshot that pending writes have already superseded would silently
//! drop them from every ranking.

use crate::ingest::snapshot_tag;
use crate::wal;
use crate::wal_path_for;
use forum_obs::json::Json;
use forum_obs::serve::{HealthReport, HealthSource, Request, Response, Stopper, TelemetryRoutes};
use forum_obs::Registry;
use intentmatch::pipeline::QueryScratch;
use intentmatch::StoreView;
use std::cell::RefCell;
use std::path::Path;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// How many WAL records are pending on top of the snapshot at
/// `store_path` — records whose tag does not match the snapshot are
/// stale leftovers `Wal::open` would discard, so they do not count.
/// A missing WAL is zero pending.
pub fn pending_wal_records(store_path: &Path) -> Result<usize, crate::IngestError> {
    let tag = snapshot_tag(store_path)?;
    let inspection = wal::inspect(&wal_path_for(store_path), tag)
        .map_err(|e| crate::IngestError::Wal(wal::WalError::Io(e)))?;
    Ok(if inspection.exists && inspection.tag_matches {
        inspection.records.len()
    } else {
        0
    })
}

/// Readiness from the mapped view, answered on `/readyz`. The view is
/// open by construction (header and directory verified), so readiness is
/// unconditional; the detail reports what is resident.
pub struct MappedHealth {
    view: Arc<StoreView>,
}

impl HealthSource for MappedHealth {
    fn health(&self) -> HealthReport {
        HealthReport {
            ready: true,
            detail: Json::obj()
                .with("store_loaded", true)
                .with("mapped", true)
                .with("backing", self.view.backing_name())
                .with("num_docs", self.view.num_docs() as u64)
                .with("num_clusters", self.view.num_clusters() as u64)
                .with(
                    "resident_clusters",
                    self.view.num_resident_clusters() as u64,
                )
                .with("store_bytes", self.view.file_len()),
        }
    }
}

/// The mapped serving application: `/query` over an `Arc<StoreView>`,
/// layered on the standard telemetry endpoints.
pub struct MappedServeApp {
    view: Arc<StoreView>,
    routes: TelemetryRoutes,
    stopper: Mutex<Option<Stopper>>,
}

impl MappedServeApp {
    /// Builds the app over an open view. Registers the request-level
    /// metrics up front so the first `/metrics` scrape already exposes
    /// the `serve_*` families.
    pub fn new(view: Arc<StoreView>) -> Arc<MappedServeApp> {
        let registry = Registry::global();
        registry.counter("serve/http_requests");
        registry.histogram("serve/http_request_ns");
        registry.histogram("serve/online_query_ns");
        let health = Arc::new(MappedHealth { view: view.clone() });
        Arc::new(MappedServeApp {
            view,
            routes: TelemetryRoutes::global(health),
            stopper: Mutex::new(None),
        })
    }

    /// The served view (tests inspect residency through this).
    pub fn view(&self) -> Arc<StoreView> {
        self.view.clone()
    }

    /// Installs the server's stopper so `POST /shutdown` can stop the
    /// accept loop.
    pub fn set_stopper(&self, stopper: Stopper) {
        *self.stopper.lock().unwrap_or_else(PoisonError::into_inner) = Some(stopper);
    }

    /// Dispatches one request; records `serve/http_requests` and
    /// `serve/http_request_ns` around every dispatch.
    pub fn handle(&self, req: &Request) -> Response {
        let obs = Registry::global();
        let started = Instant::now();
        let response = self.dispatch(req);
        obs.incr("serve/http_requests", 1);
        obs.record_duration("serve/http_request_ns", started.elapsed());
        response
    }

    fn dispatch(&self, req: &Request) -> Response {
        match req.path.as_str() {
            "/query" => {
                if req.method != "POST" && req.method != "GET" {
                    return Response::text(405, "method not allowed\n");
                }
                self.query(req)
            }
            "/shutdown" => {
                if req.method != "POST" {
                    return Response::text(405, "method not allowed\n");
                }
                if let Some(stopper) = &*self.stopper.lock().unwrap_or_else(PoisonError::into_inner)
                {
                    stopper.stop();
                    Response::text(200, "stopping\n")
                } else {
                    Response::text(503, "no stopper installed\n")
                }
            }
            _ => self
                .routes
                .handle(req)
                .unwrap_or_else(|| Response::not_found(&req.path)),
        }
    }

    fn query(&self, req: &Request) -> Response {
        let body: Option<Json> = match req.body_str().map(str::trim) {
            None => return Response::bad_request("body is not UTF-8"),
            Some("") => None,
            Some(text) => match Json::parse(text) {
                Ok(v) => Some(v),
                Err(e) => return Response::bad_request(format!("bad JSON body: {e}")),
            },
        };
        let param_u64 = |key: &str| -> Result<Option<u64>, Response> {
            if let Some(v) = req.query_param(key) {
                return v
                    .parse::<u64>()
                    .map(Some)
                    .map_err(|_| Response::bad_request(format!("{key} must be a number")));
            }
            match body.as_ref().and_then(|b| b.get(key)) {
                None => Ok(None),
                Some(v) => v
                    .as_u64()
                    .map(Some)
                    .ok_or_else(|| Response::bad_request(format!("{key} must be a number"))),
            }
        };
        let doc = match param_u64("doc") {
            Ok(Some(d)) => d,
            Ok(None) => return Response::bad_request("missing doc (query param or JSON body)"),
            Err(resp) => return resp,
        };
        let k = match param_u64("k") {
            Ok(v) => v.unwrap_or(5) as usize,
            Err(resp) => return resp,
        };
        if req.query_param("explain").is_some_and(|v| v != "0") {
            return Response::bad_request(
                "explain requires the hydrated engine: run serve without --mapped",
            );
        }
        if doc >= self.view.num_docs() as u64 {
            return Response::bad_request(format!(
                "doc {doc} out of range (collection has {})",
                self.view.num_docs()
            ));
        }

        // One scratch per worker thread, reused across requests — the
        // pool's workers are long-lived, so the per-query allocation cost
        // amortises to zero exactly like the offline engine's per-worker
        // scratch.
        thread_local! {
            static SCRATCH: RefCell<QueryScratch> = RefCell::new(QueryScratch::new());
        }
        let started = Instant::now();
        let ranking =
            SCRATCH.with(|scratch| self.view.top_k(doc as usize, k, &mut scratch.borrow_mut()));
        let ranking = match ranking {
            Ok(r) => r,
            Err(e) => return Response::text(500, format!("query failed: {e}\n")),
        };
        Registry::global().record_duration("serve/online_query_ns", started.elapsed());

        Response::json(
            200,
            &Json::obj()
                .with("query", doc)
                .with("k", k as u64)
                .with("backing", self.view.backing_name())
                .with(
                    "results",
                    Json::Arr(
                        ranking
                            .iter()
                            .enumerate()
                            .map(|(i, &(d, score))| {
                                Json::obj()
                                    .with("rank", (i + 1) as u64)
                                    .with("doc", d)
                                    .with("score", score)
                            })
                            .collect(),
                    ),
                ),
        )
    }
}
