//! Offline store/index health audit — the engine behind
//! `intentmatch doctor`.
//!
//! [`diagnose`] inspects a store *without mutating anything*: the
//! snapshot is decoded with `intentmatch::store::load`, every per-cluster
//! [`forum_index::SegmentIndex`] runs its full integrity
//! [`audit`](forum_index::SegmentIndex::audit) (postings order, stored
//! statistics vs recomputation, impact caps vs the exact Eq. 8/9
//! contributions), and the WAL is scanned read-only via
//! [`crate::wal::inspect`] — unlike `Wal::open`, no torn tail is
//! truncated and no stale log is reset, so a doctor run leaves the store
//! byte-identical.
//!
//! Findings are split into **problems** (hard failures: corruption, a
//! snapshot that does not decode, cross-section inconsistencies — the CLI
//! exits non-zero) and **warnings** (conditions `Wal::open` would repair
//! or an operator should merely know about: torn tails, stale tags, high
//! cluster skew, pending-delta buildup).

use crate::ingest::snapshot_tag;
use crate::wal::{self, WalInspection, WalRecord};
use crate::wal_path_for;
use forum_index::IndexAudit;
use forum_obs::json::Json;
use intentmatch::store;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Pending-delta fraction above which the report warns that a compaction
/// is overdue (the drift objective's default ceiling).
const DELTA_RATIO_WARN: f64 = 0.5;
/// Cluster doc-count skew (max/mean) above which the report warns.
const SKEW_WARN: f64 = 4.0;

/// One cluster's health: its index audit plus the owner census.
#[derive(Debug)]
pub struct ClusterHealth {
    /// Cluster id.
    pub cluster: usize,
    /// The index integrity audit.
    pub audit: IndexAudit,
}

/// Everything [`diagnose`] found.
#[derive(Debug)]
pub struct DoctorReport {
    /// The audited snapshot.
    pub store_path: PathBuf,
    /// Snapshot size in bytes (0 when unreadable).
    pub store_bytes: u64,
    /// On-disk format version (1 = legacy length-prefixed, 2 = sectioned
    /// mmap-able layout; 0 when the magic is unrecognised).
    pub store_format: u32,
    /// Sections in the v2 directory (0 for v1 stores).
    pub layout_sections: usize,
    /// The snapshot fingerprint the WAL header must match.
    pub snapshot_tag: Option<u64>,
    /// Documents in the compacted collection.
    pub num_docs: usize,
    /// Intention clusters.
    pub num_clusters: usize,
    /// Segments DBSCAN labelled noise during the offline build.
    pub num_noise: usize,
    /// Per-cluster health.
    pub clusters: Vec<ClusterHealth>,
    /// Max/mean ratio of per-cluster distinct-document counts.
    pub cluster_doc_skew: f64,
    /// Read-only WAL scan.
    pub wal: WalInspection,
    /// Pending `Add` records in the WAL.
    pub pending_adds: usize,
    /// Pending `Delete` records (tombstones) in the WAL.
    pub pending_deletes: usize,
    /// Pending `Update` records in the WAL.
    pub pending_updates: usize,
    /// Pending adds as a fraction of the compacted collection.
    pub delta_base_ratio: f64,
    /// Hard failures: the CLI exits non-zero when non-empty.
    pub problems: Vec<String>,
    /// Conditions worth knowing about that recovery handles by design.
    pub warnings: Vec<String>,
}

impl DoctorReport {
    /// Whether the store passed every hard check.
    pub fn healthy(&self) -> bool {
        self.problems.is_empty()
    }

    /// The report as JSON (`doctor --json`).
    pub fn to_json(&self) -> Json {
        let clusters = Json::Arr(
            self.clusters
                .iter()
                .map(|c| {
                    Json::obj()
                        .with("cluster", c.cluster as u64)
                        .with("units", c.audit.units as u64)
                        .with("docs", c.audit.owners as u64)
                        .with("vocabulary", c.audit.vocabulary as u64)
                        .with("postings_total", c.audit.postings_total as u64)
                        .with("postings_max", c.audit.postings_max as u64)
                        .with("postings_p50", c.audit.postings_p50 as u64)
                        .with("postings_p99", c.audit.postings_p99 as u64)
                        .with("has_impacts", c.audit.has_impacts)
                        .with(
                            "problems",
                            Json::Arr(
                                c.audit
                                    .problems
                                    .iter()
                                    .map(|p| Json::Str(p.clone()))
                                    .collect(),
                            ),
                        )
                })
                .collect(),
        );
        let wal = Json::obj()
            .with("exists", self.wal.exists)
            .with("bytes", self.wal.bytes)
            .with("tag_matches", self.wal.tag_matches)
            .with("records", self.wal.records.len() as u64)
            .with("torn_tail_bytes", self.wal.torn_tail_bytes)
            .with(
                "problems",
                Json::Arr(
                    self.wal
                        .problems
                        .iter()
                        .map(|p| Json::Str(p.clone()))
                        .collect(),
                ),
            );
        Json::obj()
            .with("store", self.store_path.display().to_string())
            .with("store_bytes", self.store_bytes)
            .with("store_format", u64::from(self.store_format))
            .with("layout_sections", self.layout_sections as u64)
            .with("healthy", self.healthy())
            .with("num_docs", self.num_docs as u64)
            .with("num_clusters", self.num_clusters as u64)
            .with("num_noise", self.num_noise as u64)
            .with("cluster_doc_skew", self.cluster_doc_skew)
            .with("clusters", clusters)
            .with("wal", wal)
            .with("pending_adds", self.pending_adds as u64)
            .with("pending_deletes", self.pending_deletes as u64)
            .with("pending_updates", self.pending_updates as u64)
            .with("delta_base_ratio", self.delta_base_ratio)
            .with(
                "problems",
                Json::Arr(self.problems.iter().map(|p| Json::Str(p.clone())).collect()),
            )
            .with(
                "warnings",
                Json::Arr(self.warnings.iter().map(|w| Json::Str(w.clone())).collect()),
            )
    }

    /// The human report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "store    {} ({} bytes, format v{}{})",
            self.store_path.display(),
            self.store_bytes,
            self.store_format,
            if self.store_format == 2 {
                format!(", {} sections", self.layout_sections)
            } else {
                String::new()
            },
        );
        let _ = writeln!(
            out,
            "docs     {} in {} clusters ({} noise segments); doc skew {:.2}",
            self.num_docs, self.num_clusters, self.num_noise, self.cluster_doc_skew
        );
        for c in &self.clusters {
            let _ = writeln!(
                out,
                "  cluster {:>3}: {:>6} units, {:>6} docs, {:>7} vocab, postings \
                 total {} / p50 {} / p99 {} / max {}{}",
                c.cluster,
                c.audit.units,
                c.audit.owners,
                c.audit.vocabulary,
                c.audit.postings_total,
                c.audit.postings_p50,
                c.audit.postings_p99,
                c.audit.postings_max,
                if c.audit.has_impacts {
                    ""
                } else {
                    " (no impact sidecars)"
                },
            );
        }
        if self.wal.exists {
            let _ = writeln!(
                out,
                "wal      {} bytes, {} record(s) ({} add / {} delete / {} update), \
                 tag {}, torn tail {} bytes; delta/base ratio {:.3}",
                self.wal.bytes,
                self.wal.records.len(),
                self.pending_adds,
                self.pending_deletes,
                self.pending_updates,
                if self.wal.tag_matches {
                    "matches"
                } else {
                    "STALE"
                },
                self.wal.torn_tail_bytes,
                self.delta_base_ratio,
            );
        } else {
            let _ = writeln!(out, "wal      none (no pending writes)");
        }
        for w in &self.warnings {
            let _ = writeln!(out, "warning  {w}");
        }
        for p in &self.problems {
            let _ = writeln!(out, "PROBLEM  {p}");
        }
        let _ = writeln!(
            out,
            "verdict  {}",
            if self.healthy() {
                "healthy"
            } else {
                "UNHEALTHY"
            }
        );
        out
    }
}

/// Audits the store at `store_path` read-only; see the module docs for
/// what is checked. I/O errors reading the snapshot or WAL surface as
/// problems in the report, not as `Err` — `Err` is reserved for being
/// unable to produce a report at all.
pub fn diagnose(store_path: &Path) -> DoctorReport {
    let mut report = DoctorReport {
        store_path: store_path.to_path_buf(),
        store_bytes: std::fs::metadata(store_path).map(|m| m.len()).unwrap_or(0),
        store_format: 0,
        layout_sections: 0,
        snapshot_tag: None,
        num_docs: 0,
        num_clusters: 0,
        num_noise: 0,
        clusters: Vec::new(),
        cluster_doc_skew: 0.0,
        wal: WalInspection::default(),
        pending_adds: 0,
        pending_deletes: 0,
        pending_updates: 0,
        delta_base_ratio: 0.0,
        problems: Vec::new(),
        warnings: Vec::new(),
    };

    // 0. Byte-level layout audit of v2 stores: header and directory
    //    checksums, section bounds and 8-byte alignment, per-section
    //    payload checksums. This catches corruption structurally even in
    //    sections a mapped reader would only fault in lazily.
    match std::fs::read(store_path) {
        Ok(bytes) => {
            if bytes.len() >= 4 && &bytes[0..4] == intentmatch::store_v2::V2_MAGIC {
                report.store_format = 2;
                let layout = intentmatch::store_v2::audit_layout(&bytes);
                report.layout_sections = layout.sections.len();
                for problem in layout.problems {
                    report.problems.push(format!("layout: {problem}"));
                }
            } else if bytes.len() >= 4 && &bytes[0..4] == b"IMP1" {
                report.store_format = 1;
            }
        }
        Err(e) => {
            report.problems.push(format!("snapshot unreadable: {e}"));
            return report;
        }
    }

    // 1. The snapshot must decode; every decode failure is a hard fail.
    let (collection, pipeline) = match store::load(store_path) {
        Ok(loaded) => loaded,
        Err(e) => {
            report.problems.push(format!("snapshot does not load: {e}"));
            return report;
        }
    };
    report.num_docs = collection.len();
    report.num_clusters = pipeline.num_clusters();
    report.num_noise = pipeline.num_noise;
    report.snapshot_tag = snapshot_tag(store_path).ok();
    if report.snapshot_tag.is_none() {
        report
            .problems
            .push("snapshot unreadable while fingerprinting".into());
    }

    // 2. Cross-section consistency of the decoded pipeline.
    if pipeline.centroids.len() != pipeline.clusters.len() {
        report.problems.push(format!(
            "{} centroids for {} clusters",
            pipeline.centroids.len(),
            pipeline.clusters.len()
        ));
    }
    if pipeline.doc_segments.len() != collection.len() {
        report.problems.push(format!(
            "segment table covers {} docs but the collection has {}",
            pipeline.doc_segments.len(),
            collection.len()
        ));
    }
    for (d, segments) in pipeline.doc_segments.iter().enumerate() {
        if let Some(s) = segments
            .iter()
            .find(|s| s.cluster >= pipeline.clusters.len())
        {
            report.problems.push(format!(
                "doc {d} has a segment in unknown cluster {}",
                s.cluster
            ));
        }
    }

    // 3. Per-cluster index audits + the owner census (orphan detection
    //    needs the collection size, which the index cannot know).
    let mut docs_per_cluster = Vec::with_capacity(pipeline.clusters.len());
    for (c, cluster) in pipeline.clusters.iter().enumerate() {
        let audit = cluster.index.audit();
        for problem in &audit.problems {
            report.problems.push(format!("cluster {c}: {problem}"));
        }
        // The owner column is redundant with the segment table (one unit
        // per refined segment, appended in doc order), so corruption in
        // either shows up as a multiset mismatch; owners beyond the
        // collection are orphans even if the multisets happen to agree.
        let mut actual_owners: Vec<u32> = (0..cluster.index.num_units())
            .map(|u| cluster.index.owner(forum_index::UnitId(u as u32)))
            .collect();
        if let Some(&orphan) = actual_owners
            .iter()
            .find(|&&o| o as usize >= collection.len())
        {
            report.problems.push(format!(
                "cluster {c}: a unit is owned by orphaned doc {orphan} \
                 (collection has {})",
                collection.len()
            ));
        }
        let mut expected_owners: Vec<u32> = pipeline
            .doc_segments
            .iter()
            .enumerate()
            .flat_map(|(d, segs)| {
                segs.iter()
                    .filter(|s| s.cluster == c)
                    .map(move |_| d as u32)
            })
            .collect();
        actual_owners.sort_unstable();
        expected_owners.sort_unstable();
        if actual_owners != expected_owners {
            report.problems.push(format!(
                "cluster {c}: index owners disagree with the segment table \
                 ({} unit(s) vs {} refined segment(s))",
                actual_owners.len(),
                expected_owners.len()
            ));
        }
        docs_per_cluster.push(audit.owners);
        report.clusters.push(ClusterHealth { cluster: c, audit });
    }
    if !docs_per_cluster.is_empty() {
        let max = *docs_per_cluster.iter().max().unwrap() as f64;
        let mean = docs_per_cluster.iter().sum::<usize>() as f64 / docs_per_cluster.len() as f64;
        report.cluster_doc_skew = if mean > 0.0 { max / mean } else { 0.0 };
        if report.cluster_doc_skew > SKEW_WARN {
            report.warnings.push(format!(
                "cluster doc counts are skewed {:.1}× over the mean \
                 (largest cluster dominates scan cost)",
                report.cluster_doc_skew
            ));
        }
    }

    // 4. Read-only WAL scan against the snapshot fingerprint.
    let wal_path = wal_path_for(store_path);
    match wal::inspect(&wal_path, report.snapshot_tag.unwrap_or(0)) {
        Ok(inspection) => report.wal = inspection,
        Err(e) => {
            report
                .problems
                .push(format!("WAL at {} unreadable: {e}", wal_path.display()));
            return report;
        }
    }
    for problem in &report.wal.problems {
        report.problems.push(format!("WAL: {problem}"));
    }
    if report.wal.exists {
        if !report.wal.tag_matches {
            report.warnings.push(
                "WAL tag does not match the snapshot (records predate it and \
                 will be discarded on the next open)"
                    .into(),
            );
        }
        if report.wal.torn_tail_bytes > 0 {
            report.warnings.push(format!(
                "WAL has a {}-byte torn tail (a crashed append; the next open \
                 truncates it)",
                report.wal.torn_tail_bytes
            ));
        }
    }
    // Replay the records in order to validate their referents: an Add
    // extends the id space, a Delete/Update must hit a live id.
    if report.wal.tag_matches {
        let mut next_doc = collection.len() as u64;
        for (i, rec) in report.wal.records.iter().enumerate() {
            match rec {
                WalRecord::Add { .. } => {
                    report.pending_adds += 1;
                    next_doc += 1;
                }
                WalRecord::Delete { doc } => {
                    report.pending_deletes += 1;
                    if u64::from(*doc) >= next_doc {
                        report.problems.push(format!(
                            "WAL record {i} deletes unknown doc {doc} \
                             (id space ends at {next_doc})"
                        ));
                    }
                }
                WalRecord::Update { doc, .. } => {
                    report.pending_updates += 1;
                    if u64::from(*doc) >= next_doc {
                        report.problems.push(format!(
                            "WAL record {i} updates unknown doc {doc} \
                             (id space ends at {next_doc})"
                        ));
                    }
                }
            }
        }
        report.delta_base_ratio = report.pending_adds as f64 / collection.len().max(1) as f64;
        if report.delta_base_ratio > DELTA_RATIO_WARN {
            report.warnings.push(format!(
                "pending delta is {:.0}% of the base — run `intentmatch compact`",
                report.delta_base_ratio * 100.0
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IngestConfig, LiveStore};
    use intentmatch::{IntentPipeline, PipelineConfig, PostCollection};

    fn temp_store(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("forum-ingest-doctor-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn posts() -> Vec<String> {
        vec![
            "My RAID controller fails to rebuild the array. How do I replace the disk?".into(),
            "The wireless driver crashes after suspend. Thanks for any pointers!".into(),
            "How do I configure the printer spooler? It refuses every job.".into(),
            "The boot disk is corrupted and the array will not mount at all.".into(),
            "Bluetooth audio stutters constantly; the driver log shows timeouts.".into(),
            "What backup strategy works for incremental disk snapshots?".into(),
        ]
    }

    fn build_store(name: &str) -> PathBuf {
        let path = temp_store(name);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(crate::wal_path_for(&path)).ok();
        let texts = posts();
        let collection = PostCollection::from_raw_texts(&texts);
        let pipeline = IntentPipeline::build(&collection, &PipelineConfig::default());
        intentmatch::store::save(&path, &collection, &pipeline).unwrap();
        path
    }

    /// Same corpus saved in the legacy v1 layout — the doctor must keep
    /// auditing stores that predate the sectioned format.
    fn build_store_v1(name: &str) -> PathBuf {
        let path = temp_store(name);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(crate::wal_path_for(&path)).ok();
        let texts = posts();
        let collection = PostCollection::from_raw_texts(&texts);
        let pipeline = IntentPipeline::build(&collection, &PipelineConfig::default());
        intentmatch::store::save_v1(&path, &collection, &pipeline).unwrap();
        path
    }

    #[test]
    fn healthy_store_yields_no_problems() {
        let path = build_store("healthy.imp");
        let report = diagnose(&path);
        assert!(report.healthy(), "problems: {:?}", report.problems);
        assert_eq!(report.store_format, 2);
        assert!(report.layout_sections > 0);
        assert_eq!(report.num_docs, posts().len());
        assert!(report.num_clusters > 0);
        assert!(!report.wal.exists);
        assert!(report.clusters.iter().all(|c| c.audit.has_impacts));
    }

    #[test]
    fn pending_wal_is_reported_and_left_untouched() {
        let path = build_store("pending.imp");
        {
            let mut live =
                LiveStore::open(&path, PipelineConfig::default(), IngestConfig::default()).unwrap();
            live.add_batch(&["The spooler daemon hangs when the printer reconnects.".to_string()])
                .unwrap();
        }
        let wal_path = crate::wal_path_for(&path);
        let before = std::fs::read(&wal_path).unwrap();
        let report = diagnose(&path);
        assert!(report.healthy(), "problems: {:?}", report.problems);
        assert_eq!(report.pending_adds, 1);
        assert!(report.wal.tag_matches);
        let after = std::fs::read(&wal_path).unwrap();
        assert_eq!(before, after, "doctor must not mutate the WAL");
    }

    /// Walks the encoded bytes of the first `SIDX` block in a **v1**
    /// store and returns the half-open range holding its unit statistics,
    /// `avg_unique`, and postings — the redundancy-bearing region every
    /// impact cap is rebuilt from at decode. (v2 stores carry FIX2 flat
    /// indexes under per-section checksums instead; see the v2 sweep
    /// below.)
    fn stats_and_postings_region(bytes: &[u8]) -> std::ops::Range<usize> {
        let u32_at =
            |pos: usize| u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let sidx = bytes
            .windows(4)
            .position(|w| w == b"SIDX")
            .expect("store contains no SIDX block");
        let mut pos = sidx + 8; // magic + format version
        let n_terms = u32_at(pos);
        pos += 4;
        for _ in 0..n_terms {
            pos += 4 + u32_at(pos); // length-prefixed vocab term
        }
        let start = pos;
        let n_units = u32_at(pos);
        pos += 4 + n_units * 20 + 8; // units (20 bytes each) + avg_unique
        let n_lists = u32_at(pos);
        pos += 4;
        for _ in 0..n_lists {
            pos += 4 + u32_at(pos) * 8; // plist len + (unit, tf) pairs
        }
        start..pos
    }

    #[test]
    fn flipped_byte_in_index_stats_or_postings_is_a_hard_failure() {
        let path = build_store_v1("flipped.imp");
        let clean = std::fs::read(&path).unwrap();
        let region = stats_and_postings_region(&clean);
        assert!(region.len() > 40, "suspiciously small index region");
        // Sweep a byte-flip across the stats/postings region: the doctor
        // must catch (almost) every position as either a decode failure
        // or an audit problem. The only legitimate misses are the low
        // mantissa bytes of f64 statistics, where a flip stays inside the
        // audit's recomputation tolerance.
        let mut detected = 0usize;
        let mut missed = Vec::new();
        for pos in region.clone() {
            let mut corrupt = clean.clone();
            corrupt[pos] ^= 0x10;
            std::fs::write(&path, &corrupt).unwrap();
            let report = diagnose(&path);
            if report.healthy() {
                missed.push(pos);
            } else {
                detected += 1;
            }
        }
        std::fs::write(&path, &clean).unwrap();
        let total = region.len();
        assert!(
            detected * 10 >= total * 8,
            "detected only {detected}/{total} flips; missed at {missed:?}"
        );
    }

    #[test]
    fn corrupted_unit_stats_fail_deterministically() {
        let path = build_store_v1("corrupt-stats.imp");
        let clean = std::fs::read(&path).unwrap();
        let region = stats_and_postings_region(&clean);
        // First unit record starts right after the unit count; its second
        // field is `unique_terms`, which the audit recomputes exactly from
        // the postings.
        let unique_terms_lo = region.start + 4 + 4;
        let mut corrupt = clean.clone();
        corrupt[unique_terms_lo] ^= 0x10;
        std::fs::write(&path, &corrupt).unwrap();
        let report = diagnose(&path);
        assert!(
            !report.healthy(),
            "flipped unique_terms byte went undetected"
        );
        std::fs::write(&path, &clean).unwrap();
        assert!(diagnose(&path).healthy());
    }

    /// In the v2 layout every checksum-covered byte (header, directory,
    /// every section payload) must be caught by the layout audit — not
    /// merely "most", because FNV detects any single-byte change. Only
    /// the ≤7 alignment-padding bytes between sections are outside any
    /// checksum, and the sweep skips exactly those.
    #[test]
    fn v2_flip_in_any_covered_byte_is_a_hard_failure() {
        let path = build_store("v2-flipped.imp");
        let clean = std::fs::read(&path).unwrap();
        let layout = intentmatch::store_v2::audit_layout(&clean);
        assert!(layout.problems.is_empty(), "clean store must audit clean");
        let header = layout.header.expect("clean store parses");

        let mut covered = vec![false; clean.len()];
        covered[..intentmatch::store_v2::HEADER_BYTES]
            .iter_mut()
            .for_each(|b| *b = true);
        let dir = header.dir_offset as usize..(header.dir_offset + header.dir_len) as usize;
        covered[dir].iter_mut().for_each(|b| *b = true);
        for s in &layout.sections {
            let range = s.offset as usize..(s.offset + s.len) as usize;
            covered[range].iter_mut().for_each(|b| *b = true);
        }
        let uncovered = covered.iter().filter(|&&c| !c).count();
        assert!(
            uncovered < 8 * layout.sections.len(),
            "only alignment padding may be uncovered, found {uncovered} bytes"
        );

        // Stride 11 keeps the sweep fast while hitting every section and
        // every byte lane of the fixed-width records.
        for pos in (0..clean.len()).step_by(11) {
            if !covered[pos] {
                continue;
            }
            let mut corrupt = clean.clone();
            corrupt[pos] ^= 0x10;
            std::fs::write(&path, &corrupt).unwrap();
            let report = diagnose(&path);
            assert!(!report.healthy(), "flip at byte {pos} went undetected");
            assert!(
                report.problems.iter().any(|p| p.starts_with("layout:"))
                    || report.problems.iter().any(|p| p.contains("load")),
                "flip at byte {pos} detected but not by the layout audit: {:?}",
                report.problems
            );
        }
        std::fs::write(&path, &clean).unwrap();
        assert!(diagnose(&path).healthy());
    }

    #[test]
    fn torn_wal_tail_is_a_warning_not_a_problem() {
        let path = build_store("torn.imp");
        {
            let mut live =
                LiveStore::open(&path, PipelineConfig::default(), IngestConfig::default()).unwrap();
            live.add_batch(&["The array rebuild loops forever after the swap.".to_string()])
                .unwrap();
        }
        let wal_path = crate::wal_path_for(&path);
        let mut bytes = std::fs::read(&wal_path).unwrap();
        bytes.extend_from_slice(&[0x09, 0x00, 0x00]);
        std::fs::write(&wal_path, &bytes).unwrap();
        let report = diagnose(&path);
        assert!(report.healthy(), "problems: {:?}", report.problems);
        assert!(
            report.warnings.iter().any(|w| w.contains("torn tail")),
            "warnings: {:?}",
            report.warnings
        );
        assert_eq!(report.wal.torn_tail_bytes, 3);
    }
}
