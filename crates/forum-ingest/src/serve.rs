//! The live serving application: queries + telemetry over one HTTP port.
//!
//! [`ServeApp`] owns the application-level routes and layers them over
//! [`forum_obs::serve::TelemetryRoutes`]:
//!
//! * `POST /query` (also `GET`) — related posts for a collection-resident
//!   document: `?doc=N&k=K`, or a JSON body `{"doc": N, "k": K}`. With
//!   `?explain=1` the response carries the full EXPLAIN trace
//!   ([`intentmatch::explain`]) whose ranking is bit-identical to the
//!   offline [`intentmatch::QueryEngine`] — and therefore requires a
//!   compacted store (`409` while WAL writes are pending).
//! * `POST /shutdown` — stops the accept loop cleanly.
//! * everything else — the standard telemetry endpoints (`/metrics`,
//!   `/healthz`, `/readyz`, `/snapshot`, `/events`).
//!
//! Readiness ([`ServeHealth`]) is derived from live state: the store is
//! loaded (by construction), the WAL is writable, and the current epoch id
//! and pending-delta sizes ride along as detail. `/metrics` scrapes also
//! feed a [`forum_obs::RateWindow`], so the exposition ends with derived
//! gauges — `serve_qps`, `ingest_ops_per_sec`, `ingest_wal_bytes_per_sec` —
//! computed by diffing the retained snapshots.

use crate::live::EpochHandle;
use forum_obs::json::Json;
use forum_obs::serve::{HealthReport, HealthSource, Request, Response, Stopper, TelemetryRoutes};
use forum_obs::trace::TRACE_HEADER;
use forum_obs::{prometheus, RateWindow, Registry, Trace, TraceStore};
use intentmatch::explain;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// How long `/metrics` scrapes are retained for rate computation.
const RATE_RETENTION: Duration = Duration::from_secs(300);

/// Whether the WAL at `path` (or, before the first append, its directory)
/// accepts writes.
fn wal_writable(path: &Path) -> bool {
    match std::fs::metadata(path) {
        Ok(m) => !m.permissions().readonly(),
        // Not created yet (lazy WAL): check the directory instead. An
        // empty parent means "current directory" — assume writable.
        Err(_) => match path.parent().filter(|d| !d.as_os_str().is_empty()) {
            Some(dir) => std::fs::metadata(dir)
                .map(|m| !m.permissions().readonly())
                .unwrap_or(false),
            None => true,
        },
    }
}

/// Readiness from live-engine state, answered on `/readyz`.
pub struct ServeHealth {
    handle: Arc<EpochHandle>,
    wal_path: PathBuf,
}

impl ServeHealth {
    /// Builds the health source the sharded app composes per-shard
    /// readiness on top of.
    pub(crate) fn new(handle: Arc<EpochHandle>, wal_path: PathBuf) -> ServeHealth {
        ServeHealth { handle, wal_path }
    }
}

impl HealthSource for ServeHealth {
    fn health(&self) -> HealthReport {
        let epoch = self.handle.current();
        let wal_ok = wal_writable(&self.wal_path);
        HealthReport {
            ready: wal_ok,
            detail: Json::obj()
                .with("store_loaded", true)
                .with("wal_writable", wal_ok)
                .with("epoch", epoch.epoch)
                .with("num_docs", epoch.num_docs() as u64)
                .with("pending_docs", epoch.delta.docs.len() as u64)
                .with("pending_units", epoch.delta.num_units() as u64),
        }
    }
}

/// The serving application: query routes over an [`EpochHandle`], layered
/// on the standard telemetry endpoints.
pub struct ServeApp {
    handle: Arc<EpochHandle>,
    routes: TelemetryRoutes,
    stopper: Mutex<Option<Stopper>>,
}

impl ServeApp {
    /// Builds the app over the serving handle and the store's WAL path.
    ///
    /// Registers the request-level metrics up front so the very first
    /// `/metrics` scrape already exposes the `serve_*` families (a scrape
    /// arriving before the first query must still show the histogram).
    pub fn new(handle: Arc<EpochHandle>, wal_path: PathBuf) -> Arc<ServeApp> {
        let registry = Registry::global();
        registry.counter("serve/http_requests");
        registry.histogram("serve/http_request_ns");
        registry.histogram("serve/online_query_ns");

        let health = Arc::new(ServeHealth {
            handle: handle.clone(),
            wal_path,
        });
        let rates = Mutex::new(RateWindow::new(RATE_RETENTION));
        let drift_handle = handle.clone();
        let extra: Arc<dyn Fn(&mut String) + Send + Sync> = Arc::new(move |out: &mut String| {
            let mut rates = rates.lock().unwrap_or_else(PoisonError::into_inner);
            rates.push(Instant::now(), Registry::global().snapshot());
            if let Some(qps) = rates.rate("serve/online_query_ns") {
                prometheus::append_gauge(out, "serve_qps", qps);
            }
            if let Some(ops) = rates.rate_sum(&["ingest/added", "ingest/updated", "ingest/deleted"])
            {
                prometheus::append_gauge(out, "ingest_ops_per_sec", ops);
            }
            if let Some(bps) = rates.rate("ingest/wal_bytes") {
                prometheus::append_gauge(out, "ingest_wal_bytes_per_sec", bps);
            }
            // Drift observability: how far the live state has moved from
            // the frozen intention model since the last compaction.
            let epoch = drift_handle.current();
            prometheus::append_gauge_with_help(
                out,
                "drift_delta_base_ratio",
                "Pending delta documents as a fraction of the compacted base.",
                epoch.delta.docs.len() as f64 / epoch.base.len().max(1) as f64,
            );
            let reg = Registry::global();
            let segments_in = reg.counter("drift/segments_in").value();
            let noise = reg.counter("ingest/noise_segments").value();
            prometheus::append_gauge_with_help(
                out,
                "drift_noise_rate",
                "Fraction of ingested segments dropped as noise by the assign_eps gate.",
                if segments_in == 0 {
                    0.0
                } else {
                    noise as f64 / segments_in as f64
                },
            );
            let traces = TraceStore::global();
            prometheus::append_gauge_with_help(
                out,
                "traces_seen",
                "Query and ingest traces started since process start.",
                traces.total_seen() as f64,
            );
            prometheus::append_gauge_with_help(
                out,
                "traces_kept",
                "Traces retained in the trace ring after sampling.",
                traces.total_kept() as f64,
            );
            prometheus::append_gauge_with_help(
                out,
                "traces_slow",
                "Traces over the slow-query threshold (always retained).",
                traces.total_slow() as f64,
            );
        });
        Arc::new(ServeApp {
            handle,
            routes: TelemetryRoutes::global(health).with_metrics_extra(extra),
            stopper: Mutex::new(None),
        })
    }

    /// Installs the server's stopper so `POST /shutdown` can stop the
    /// accept loop.
    pub fn set_stopper(&self, stopper: Stopper) {
        *self.stopper.lock().unwrap_or_else(PoisonError::into_inner) = Some(stopper);
    }

    /// Dispatches one request: application routes first, telemetry routes
    /// second, `404` otherwise. Records `serve/http_requests` and
    /// `serve/http_request_ns` around every dispatch.
    pub fn handle(&self, req: &Request) -> Response {
        let obs = Registry::global();
        let started = Instant::now();
        let response = self.dispatch(req);
        obs.incr("serve/http_requests", 1);
        obs.record_duration("serve/http_request_ns", started.elapsed());
        response
    }

    fn dispatch(&self, req: &Request) -> Response {
        match req.path.as_str() {
            "/query" => {
                if req.method != "POST" && req.method != "GET" {
                    return Response::text(405, "method not allowed\n");
                }
                self.query(req)
            }
            "/shutdown" => {
                if req.method != "POST" {
                    return Response::text(405, "method not allowed\n");
                }
                if let Some(stopper) = &*self.stopper.lock().unwrap_or_else(PoisonError::into_inner)
                {
                    stopper.stop();
                    Response::text(200, "stopping\n")
                } else {
                    Response::text(503, "no stopper installed\n")
                }
            }
            _ => self
                .routes
                .handle(req)
                .unwrap_or_else(|| Response::not_found(&req.path)),
        }
    }

    /// One parameter, from the query string or the JSON body (the query
    /// string wins).
    fn param_u64(req: &Request, body: &Option<Json>, key: &str) -> Result<Option<u64>, Response> {
        if let Some(v) = req.query_param(key) {
            return v
                .parse::<u64>()
                .map(Some)
                .map_err(|_| Response::bad_request(format!("{key} must be a number")));
        }
        match body.as_ref().and_then(|b| b.get(key)) {
            None => Ok(None),
            Some(v) => v
                .as_u64()
                .map(Some)
                .ok_or_else(|| Response::bad_request(format!("{key} must be a number"))),
        }
    }

    fn query(&self, req: &Request) -> Response {
        let body: Option<Json> = match req.body_str().map(str::trim) {
            None => return Response::bad_request("body is not UTF-8"),
            Some("") => None,
            Some(text) => match Json::parse(text) {
                Ok(v) => Some(v),
                Err(e) => return Response::bad_request(format!("bad JSON body: {e}")),
            },
        };
        let doc = match Self::param_u64(req, &body, "doc") {
            Ok(Some(d)) => d,
            Ok(None) => return Response::bad_request("missing doc (query param or JSON body)"),
            Err(resp) => return resp,
        };
        let k = match Self::param_u64(req, &body, "k") {
            Ok(v) => v.unwrap_or(5) as usize,
            Err(resp) => return resp,
        };
        let want_explain = req.query_param("explain").is_some_and(|v| v != "0")
            || body
                .as_ref()
                .and_then(|b| b.get("explain"))
                .is_some_and(|v| *v == Json::Bool(true));

        let epoch = self.handle.current();
        if doc >= epoch.num_docs() as u64 {
            return Response::bad_request(format!(
                "doc {doc} out of range (collection has {})",
                epoch.num_docs()
            ));
        }
        let obs = Registry::global();
        let traces = TraceStore::global();
        // A request-scoped trace when tracing is on: the caller's
        // `X-Intentmatch-Trace` id propagates; otherwise one is generated.
        // Every traced path below is bit-identical to its untraced twin
        // (cost counting rides out-of-band), so enabling tracing never
        // changes a ranking.
        let mut qtrace = traces
            .is_enabled()
            .then(|| Trace::begin("query", req.header(TRACE_HEADER)));
        let started = Instant::now();
        // EXPLAIN traces the compacted snapshot (its ranking is asserted
        // bit-identical to the offline engine); refuse while delta writes
        // are pending rather than trace the wrong state.
        let (ranking, explain_out, path) = if want_explain {
            if epoch.has_pending() {
                return Response::text(
                    409,
                    "explain requires a compacted store: WAL writes are pending\n",
                );
            }
            let explain_out = explain::explain_top_k_with_n_traced(
                &epoch.base.pipeline,
                &epoch.base.collection,
                doc as usize,
                k,
                2 * k,
                qtrace.as_mut(),
            );
            (explain_out.ranking(), Some(explain_out), "explain")
        } else if epoch.has_pending() {
            (
                epoch.top_k_with_n_traced(doc as u32, k, 2 * k, qtrace.as_mut()),
                None,
                "live",
            )
        } else if qtrace.is_some() {
            // No delta, tracing on: the engine's sequential scan — the
            // same Algorithm 2 as `pipeline.top_k`, bit for bit — with the
            // `engine/algo2` span and its cost counters recorded.
            let engine =
                intentmatch::QueryEngine::new(&epoch.base.collection, &epoch.base.pipeline)
                    .with_threads(1);
            match engine.try_top_k_traced(doc as usize, k, qtrace.as_mut()) {
                Ok(ranking) => (ranking, None, "engine"),
                Err(e) => return Response::text(500, format!("query failed: {e}\n")),
            }
        } else {
            // No delta: the offline engine's exact path.
            (
                epoch
                    .base
                    .pipeline
                    .top_k(&epoch.base.collection, doc as usize, k),
                None,
                "engine",
            )
        };
        obs.record_duration("serve/online_query_ns", started.elapsed());

        let trace_id = qtrace.map(|mut t| {
            t.set_detail(
                Json::obj()
                    .with("path", path)
                    .with("doc", doc)
                    .with("k", k as u64)
                    .with("epoch", epoch.epoch),
            );
            t.finish();
            // A slow query lands in the slow log with its EXPLAIN attached
            // (when the state admits one): the per-cluster candidates and
            // weights that produced the slow ranking, next to the spans
            // that say where the time went.
            if traces.is_slow(t.total_ns()) {
                if let Some(explain_out) = &explain_out {
                    t.attach_explain(explain_out.to_json());
                } else if !epoch.has_pending() {
                    t.attach_explain(
                        explain::explain_top_k(
                            &epoch.base.pipeline,
                            &epoch.base.collection,
                            doc as usize,
                            k,
                        )
                        .to_json(),
                    );
                }
            }
            let id = t.id().to_string();
            traces.record(t);
            id
        });

        let mut out = Json::obj()
            .with("query", doc)
            .with("k", k as u64)
            .with("epoch", epoch.epoch)
            .with(
                "results",
                Json::Arr(
                    ranking
                        .iter()
                        .enumerate()
                        .map(|(i, &(d, score))| {
                            Json::obj()
                                .with("rank", (i + 1) as u64)
                                .with("doc", d)
                                .with("score", score)
                        })
                        .collect(),
                ),
            );
        if let Some(explain_out) = explain_out {
            out = out.with("explain", explain_out.to_json());
        }
        if let Some(id) = trace_id {
            out = out.with("trace", id);
        }
        Response::json(200, &out)
    }
}
