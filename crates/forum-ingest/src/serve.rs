//! The live serving application: queries + telemetry over one HTTP port.
//!
//! [`ServeApp`] owns the application-level routes and layers them over
//! [`forum_obs::serve::TelemetryRoutes`]:
//!
//! * `POST /query` (also `GET`) — related posts for a collection-resident
//!   document: `?doc=N&k=K`, or a JSON body `{"doc": N, "k": K}`. With
//!   `?explain=1` the response carries the full EXPLAIN trace
//!   ([`intentmatch::explain`]) whose ranking is bit-identical to the
//!   offline [`intentmatch::QueryEngine`] — and therefore requires a
//!   compacted store (`409` while WAL writes are pending).
//! * `GET /alerts` — the SLO objectives with burn rates, alert states,
//!   and last transition times ([`SloEvaluator::to_json`]).
//! * `GET /series?name=N&window=fine|coarse` — retained samples of one
//!   derived time-series (see [`ServeApp::start_sampler`]).
//! * `GET /dashboard` — a self-contained server-rendered HTML dashboard
//!   (inline SVG sparklines, no external assets).
//! * `POST /shutdown` — stops the accept loop cleanly.
//! * everything else — the standard telemetry endpoints (`/metrics`,
//!   `/healthz`, `/readyz`, `/snapshot`, `/events`).
//!
//! Readiness ([`ServeHealth`]) is derived from live state: the store is
//! loaded (by construction), the WAL is writable, and the current epoch id
//! and pending-delta sizes ride along as detail. `/metrics` scrapes also
//! feed a [`forum_obs::RateWindow`], so the exposition ends with derived
//! gauges — `serve_qps`, `ingest_ops_per_sec`, `ingest_wal_bytes_per_sec` —
//! computed by diffing the retained snapshots.

use crate::live::EpochHandle;
use forum_obs::dashboard::{self, Panel, StatusRow};
use forum_obs::json::Json;
use forum_obs::serve::{HealthReport, HealthSource, Request, Response, Stopper, TelemetryRoutes};
use forum_obs::timeseries::{unix_millis, ExtraGauges, OnSample};
use forum_obs::trace::TRACE_HEADER;
use forum_obs::{
    prometheus, AlertSink, Objective, RateWindow, Registry, Sampler, SloEvaluator, SloState,
    TimeSeries, Trace, TraceStore, Window,
};
use intentmatch::explain;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// How long `/metrics` scrapes are retained for rate computation.
const RATE_RETENTION: Duration = Duration::from_secs(300);

/// Synthetic drift series fed to the sampler each tick (not registry
/// metrics — they are derived from live-engine state).
pub const DRIFT_DELTA_SERIES: &str = "drift/delta_base_ratio";
/// Synthetic noise-rate series name (see [`DRIFT_DELTA_SERIES`]).
pub const DRIFT_NOISE_SERIES: &str = "drift/noise_rate";

/// Default availability target: at most 1 request in 1000 shed.
pub const DEFAULT_AVAILABILITY_TARGET: f64 = 0.999;
/// Default ceiling on pending-delta docs as a fraction of the base.
pub const DEFAULT_DELTA_RATIO_CEILING: f64 = 0.5;
/// Default ceiling on the fraction of ingested segments dropped as noise.
pub const DEFAULT_NOISE_RATE_CEILING: f64 = 0.5;
/// Latency objective ceiling when no admission deadline is configured
/// (matches `serve`'s default `--deadline-ms`).
const DEFAULT_LATENCY_DEADLINE: Duration = Duration::from_secs(2);

/// The serving tier's standard objectives, p99 latency bounded by
/// `deadline` (the admission deadline; defaults to 2 s):
///
/// * `availability` — shed responses (`serve/shed_total`) as a fraction
///   of all requests must stay within a `1 - DEFAULT_AVAILABILITY_TARGET`
///   error budget.
/// * `latency_p99` — the sampled `serve/online_query_ns/p99` must stay
///   under the admission deadline.
/// * `drift_delta_ratio` / `drift_noise_rate` — the model-drift gauges
///   must stay under their ceilings (the re-clustering trigger signals).
pub fn default_objectives(deadline: Option<Duration>) -> Vec<Objective> {
    objectives_with(
        DEFAULT_AVAILABILITY_TARGET,
        deadline.unwrap_or(DEFAULT_LATENCY_DEADLINE),
        DEFAULT_DELTA_RATIO_CEILING,
        DEFAULT_NOISE_RATE_CEILING,
    )
}

fn objectives_with(
    availability: f64,
    latency: Duration,
    delta_ratio: f64,
    noise_rate: f64,
) -> Vec<Objective> {
    vec![
        Objective::error_ratio(
            "availability",
            vec!["serve/shed_total".into()],
            // Sheds from the pool and connection cap never reach the app's
            // dispatch, so they are not in `serve/http_requests`.
            vec!["serve/http_requests".into(), "serve/shed_total".into()],
            availability,
        ),
        Objective::upper_bound(
            "latency_p99",
            "serve/online_query_ns/p99",
            latency.as_nanos() as f64,
        ),
        Objective::upper_bound("drift_delta_ratio", DRIFT_DELTA_SERIES, delta_ratio),
        Objective::upper_bound("drift_noise_rate", DRIFT_NOISE_SERIES, noise_rate),
    ]
}

/// Parses `--slo` overrides (comma-separated or repeated `key=value`
/// items) into the standard objective set. Keys: `availability` (ratio in
/// (0, 1)), `latency_ms`, `delta_ratio`, `noise_rate`.
pub fn parse_slo_overrides(specs: &[String], deadline: Duration) -> Result<Vec<Objective>, String> {
    let mut availability = DEFAULT_AVAILABILITY_TARGET;
    let mut latency = deadline;
    let mut delta_ratio = DEFAULT_DELTA_RATIO_CEILING;
    let mut noise_rate = DEFAULT_NOISE_RATE_CEILING;
    for spec in specs {
        for item in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (key, value) = item
                .split_once('=')
                .ok_or_else(|| format!("bad --slo item {item:?}: expected key=value"))?;
            let v: f64 = value
                .trim()
                .parse()
                .map_err(|_| format!("bad --slo value in {item:?}: not a number"))?;
            match key.trim() {
                "availability" => {
                    if !(0.0..1.0).contains(&v) {
                        return Err(format!("availability must be in [0, 1), got {v}"));
                    }
                    availability = v;
                }
                "latency_ms" => {
                    if v <= 0.0 {
                        return Err(format!("latency_ms must be positive, got {v}"));
                    }
                    latency = Duration::from_secs_f64(v / 1000.0);
                }
                "delta_ratio" => {
                    if v <= 0.0 {
                        return Err(format!("delta_ratio must be positive, got {v}"));
                    }
                    delta_ratio = v;
                }
                "noise_rate" => {
                    if v <= 0.0 {
                        return Err(format!("noise_rate must be positive, got {v}"));
                    }
                    noise_rate = v;
                }
                other => {
                    return Err(format!(
                        "unknown --slo key {other:?} \
                         (availability, latency_ms, delta_ratio, noise_rate)"
                    ))
                }
            }
        }
    }
    Ok(objectives_with(
        availability,
        latency,
        delta_ratio,
        noise_rate,
    ))
}

/// The model-drift values derived from live-engine state: pending delta
/// docs over the compacted base, and the fraction of ingested segments
/// the assign_eps gate dropped as noise.
fn drift_values(handle: &EpochHandle) -> (f64, f64) {
    let epoch = handle.current();
    let ratio = epoch.delta.docs.len() as f64 / epoch.base.len().max(1) as f64;
    let reg = Registry::global();
    let segments_in = reg.counter("drift/segments_in").value();
    let noise = reg.counter("ingest/noise_segments").value();
    let noise_rate = if segments_in == 0 {
        0.0
    } else {
        noise as f64 / segments_in as f64
    };
    (ratio, noise_rate)
}

/// Whether the WAL at `path` (or, before the first append, its directory)
/// accepts writes.
fn wal_writable(path: &Path) -> bool {
    match std::fs::metadata(path) {
        Ok(m) => !m.permissions().readonly(),
        // Not created yet (lazy WAL): check the directory instead. An
        // empty parent means "current directory" — assume writable.
        Err(_) => match path.parent().filter(|d| !d.as_os_str().is_empty()) {
            Some(dir) => std::fs::metadata(dir)
                .map(|m| !m.permissions().readonly())
                .unwrap_or(false),
            None => true,
        },
    }
}

/// Readiness from live-engine state, answered on `/readyz`.
pub struct ServeHealth {
    handle: Arc<EpochHandle>,
    wal_path: PathBuf,
}

impl ServeHealth {
    /// Builds the health source the sharded app composes per-shard
    /// readiness on top of.
    pub(crate) fn new(handle: Arc<EpochHandle>, wal_path: PathBuf) -> ServeHealth {
        ServeHealth { handle, wal_path }
    }
}

impl HealthSource for ServeHealth {
    fn health(&self) -> HealthReport {
        let epoch = self.handle.current();
        let wal_ok = wal_writable(&self.wal_path);
        HealthReport {
            ready: wal_ok,
            detail: Json::obj()
                .with("store_loaded", true)
                .with("wal_writable", wal_ok)
                .with("epoch", epoch.epoch)
                .with("num_docs", epoch.num_docs() as u64)
                .with("pending_docs", epoch.delta.docs.len() as u64)
                .with("pending_units", epoch.delta.num_units() as u64),
        }
    }
}

/// The serving application: query routes over an [`EpochHandle`], layered
/// on the standard telemetry endpoints.
pub struct ServeApp {
    handle: Arc<EpochHandle>,
    routes: TelemetryRoutes,
    stopper: Mutex<Option<Stopper>>,
    timeseries: Arc<TimeSeries>,
    slo: Arc<SloEvaluator>,
    sampler: Mutex<Option<Sampler>>,
}

impl ServeApp {
    /// Builds the app over the serving handle and the store's WAL path,
    /// with the [`default_objectives`].
    pub fn new(handle: Arc<EpochHandle>, wal_path: PathBuf) -> Arc<ServeApp> {
        ServeApp::with_objectives(handle, wal_path, default_objectives(None))
    }

    /// Builds the app with an explicit objective set (from `--slo`).
    ///
    /// Registers the request-level metrics up front so the very first
    /// `/metrics` scrape already exposes the `serve_*` families (a scrape
    /// arriving before the first query must still show the histogram).
    pub fn with_objectives(
        handle: Arc<EpochHandle>,
        wal_path: PathBuf,
        objectives: Vec<Objective>,
    ) -> Arc<ServeApp> {
        let registry = Registry::global();
        registry.counter("serve/http_requests");
        registry.histogram("serve/http_request_ns");
        registry.histogram("serve/online_query_ns");

        let health = Arc::new(ServeHealth {
            handle: handle.clone(),
            wal_path,
        });
        let slo = Arc::new(SloEvaluator::new(objectives));
        let rates = Mutex::new(RateWindow::new(RATE_RETENTION));
        let drift_handle = handle.clone();
        let slo_for_metrics = slo.clone();
        let extra: Arc<dyn Fn(&mut String) + Send + Sync> = Arc::new(move |out: &mut String| {
            let mut rates = rates.lock().unwrap_or_else(PoisonError::into_inner);
            rates.push(Instant::now(), Registry::global().snapshot());
            if let Some(qps) = rates.rate("serve/online_query_ns") {
                prometheus::append_gauge(out, "serve_qps", qps);
            }
            if let Some(ops) = rates.rate_sum(&["ingest/added", "ingest/updated", "ingest/deleted"])
            {
                prometheus::append_gauge(out, "ingest_ops_per_sec", ops);
            }
            if let Some(bps) = rates.rate("ingest/wal_bytes") {
                prometheus::append_gauge(out, "ingest_wal_bytes_per_sec", bps);
            }
            // Drift observability: how far the live state has moved from
            // the frozen intention model since the last compaction.
            let (delta_ratio, noise_rate) = drift_values(&drift_handle);
            prometheus::append_gauge_with_help(
                out,
                "drift_delta_base_ratio",
                "Pending delta documents as a fraction of the compacted base.",
                delta_ratio,
            );
            prometheus::append_gauge_with_help(
                out,
                "drift_noise_rate",
                "Fraction of ingested segments dropped as noise by the assign_eps gate.",
                noise_rate,
            );
            let traces = TraceStore::global();
            prometheus::append_gauge_with_help(
                out,
                "traces_seen",
                "Query and ingest traces started since process start.",
                traces.total_seen() as f64,
            );
            prometheus::append_gauge_with_help(
                out,
                "traces_kept",
                "Traces retained in the trace ring after sampling.",
                traces.total_kept() as f64,
            );
            prometheus::append_gauge_with_help(
                out,
                "traces_slow",
                "Traces over the slow-query threshold (always retained).",
                traces.total_slow() as f64,
            );
            slo_for_metrics.append_exposition(out);
        });
        Arc::new(ServeApp {
            handle,
            routes: TelemetryRoutes::global(health).with_metrics_extra(extra),
            stopper: Mutex::new(None),
            timeseries: Arc::new(TimeSeries::new()),
            slo,
            sampler: Mutex::new(None),
        })
    }

    /// Installs the server's stopper so `POST /shutdown` can stop the
    /// accept loop.
    pub fn set_stopper(&self, stopper: Stopper) {
        *self.stopper.lock().unwrap_or_else(PoisonError::into_inner) = Some(stopper);
    }

    /// The retained time-series the sampler feeds (`/series`, the
    /// dashboard, and SLO burn rates all read from here).
    pub fn timeseries(&self) -> Arc<TimeSeries> {
        self.timeseries.clone()
    }

    /// The SLO evaluator (for [`ServeApp::add_alert_sink`] and tests).
    pub fn slo(&self) -> Arc<SloEvaluator> {
        self.slo.clone()
    }

    /// Subscribes `sink` to SLO state transitions — the hook a
    /// re-clustering trigger attaches to.
    pub fn add_alert_sink(&self, sink: Arc<dyn AlertSink>) {
        self.slo.add_sink(sink);
    }

    /// Starts the background sampler: every `period` it snapshots the
    /// registry into the retained time-series (plus the synthetic drift
    /// series) and re-evaluates the SLOs. Call after
    /// [`ServeApp::set_stopper`] so the sampler also exits when the
    /// server's stopper fires; a second call replaces (and shuts down)
    /// the previous sampler.
    pub fn start_sampler(&self, period: Duration) {
        let drift_handle = self.handle.clone();
        let extras: ExtraGauges = Arc::new(move || {
            let (delta_ratio, noise_rate) = drift_values(&drift_handle);
            vec![
                (DRIFT_DELTA_SERIES.to_string(), delta_ratio),
                (DRIFT_NOISE_SERIES.to_string(), noise_rate),
            ]
        });
        let slo = self.slo.clone();
        let on_sample: OnSample = Arc::new(move |ts, unix_ms| slo.evaluate(ts, unix_ms));
        let mut builder = Sampler::builder(period)
            .with_extras(extras)
            .on_sample(on_sample);
        if let Some(stopper) = &*self.stopper.lock().unwrap_or_else(PoisonError::into_inner) {
            builder = builder.with_stopper(stopper.clone());
        }
        let sampler = builder.spawn(self.timeseries.clone());
        *self.sampler.lock().unwrap_or_else(PoisonError::into_inner) = Some(sampler);
    }

    /// Dispatches one request: application routes first, telemetry routes
    /// second, `404` otherwise. Records `serve/http_requests` and
    /// `serve/http_request_ns` around every dispatch.
    pub fn handle(&self, req: &Request) -> Response {
        let obs = Registry::global();
        let started = Instant::now();
        let response = self.dispatch(req);
        obs.incr("serve/http_requests", 1);
        obs.record_duration("serve/http_request_ns", started.elapsed());
        response
    }

    fn dispatch(&self, req: &Request) -> Response {
        match req.path.as_str() {
            "/query" => {
                if req.method != "POST" && req.method != "GET" {
                    return Response::text(405, "method not allowed\n");
                }
                self.query(req)
            }
            "/alerts" => {
                if req.method != "GET" {
                    return Response::text(405, "method not allowed\n");
                }
                Response::json(200, &self.slo.to_json(unix_millis()))
            }
            "/series" => {
                if req.method != "GET" {
                    return Response::text(405, "method not allowed\n");
                }
                self.series(req)
            }
            "/dashboard" => {
                if req.method != "GET" {
                    return Response::text(405, "method not allowed\n");
                }
                self.dashboard_response(Vec::new(), Vec::new())
            }
            "/shutdown" => {
                if req.method != "POST" {
                    return Response::text(405, "method not allowed\n");
                }
                if let Some(stopper) = &*self.stopper.lock().unwrap_or_else(PoisonError::into_inner)
                {
                    stopper.stop();
                    Response::text(200, "stopping\n")
                } else {
                    Response::text(503, "no stopper installed\n")
                }
            }
            _ => self
                .routes
                .handle(req)
                .unwrap_or_else(|| Response::not_found(&req.path)),
        }
    }

    /// `GET /series?name=<series>&window=fine|coarse` — retained samples
    /// of one series as JSON.
    fn series(&self, req: &Request) -> Response {
        let Some(name) = req.query_param("name") else {
            return Response::bad_request(
                "missing name (e.g. /series?name=serve/online_query_ns/p99)",
            );
        };
        let window_str = req.query_param("window").unwrap_or("fine");
        let Some(window) = Window::parse(window_str) else {
            return Response::bad_request(format!(
                "bad window {window_str:?} (expected fine or coarse)"
            ));
        };
        match self.timeseries.samples(name, window) {
            None => Response::text(404, format!("no series named {name:?}\n")),
            Some(samples) => Response::json(
                200,
                &Json::obj()
                    .with("name", name)
                    .with("window", window_str)
                    .with(
                        "samples",
                        Json::Arr(
                            samples
                                .iter()
                                .map(|s| {
                                    Json::obj()
                                        .with("unix_ms", s.unix_ms)
                                        .with("value", s.value)
                                })
                                .collect(),
                        ),
                    ),
            ),
        }
    }

    /// The self-contained `GET /dashboard` page. The sharded app calls
    /// this with per-shard status rows; extra panels ride along the same
    /// way.
    pub fn dashboard_response(
        &self,
        extra_status: Vec<StatusRow>,
        extra_panels: Vec<Panel>,
    ) -> Response {
        let ts = &self.timeseries;
        let now = unix_millis();
        let epoch = self.handle.current();
        let mut status: Vec<StatusRow> = self
            .slo
            .objectives()
            .iter()
            .map(|o| {
                let state = self.slo.state_of(&o.name).unwrap_or(SloState::Ok);
                StatusRow {
                    label: format!("slo {}", o.name),
                    value: format!(
                        "{} · burn {:.2} (warn {} / fire {})",
                        state.as_str(),
                        o.burn_over(ts, o.fast, now),
                        o.warn_burn,
                        o.fire_burn,
                    ),
                    class: state.as_str(),
                }
            })
            .collect();
        status.push(StatusRow {
            label: "epoch".into(),
            value: format!(
                "{} · {} docs · {} pending delta docs",
                epoch.epoch,
                epoch.num_docs(),
                epoch.delta.docs.len(),
            ),
            class: "info",
        });
        status.extend(extra_status);

        let spark = |title: &str, series: &str, fmt: fn(f64) -> String| -> Panel {
            let samples = ts.samples(series, Window::Fine).unwrap_or_default();
            Panel::from_samples(title, &samples, fmt)
        };
        let mut panels = vec![
            spark(
                "query qps",
                "serve/online_query_ns/rate",
                dashboard::fmt_rate,
            ),
            spark(
                "query p50",
                "serve/online_query_ns/p50",
                dashboard::fmt_ns_as_ms,
            ),
            spark(
                "query p99",
                "serve/online_query_ns/p99",
                dashboard::fmt_ns_as_ms,
            ),
            spark("http req/s", "serve/http_requests", dashboard::fmt_rate),
            spark("shed/s", "serve/shed_total", dashboard::fmt_rate),
            spark("queue depth", "serve/queue_depth", dashboard::fmt_value),
            spark("ingest add/s", "ingest/added", dashboard::fmt_rate),
            spark("ingest update/s", "ingest/updated", dashboard::fmt_rate),
            spark("ingest delete/s", "ingest/deleted", dashboard::fmt_rate),
            spark("wal bytes/s", "ingest/wal_bytes", dashboard::fmt_rate),
            spark("delta/base ratio", DRIFT_DELTA_SERIES, dashboard::fmt_value),
            spark("noise rate", DRIFT_NOISE_SERIES, dashboard::fmt_value),
        ];
        panels.extend(extra_panels);

        let html = dashboard::render_page(
            "intentmatch serving dashboard",
            5,
            &status,
            &panels,
            &format!(
                "epoch {} · intentmatch v{}",
                epoch.epoch,
                env!("CARGO_PKG_VERSION"),
            ),
        );
        Response {
            status: 200,
            content_type: "text/html; charset=utf-8",
            headers: Vec::new(),
            body: html.into_bytes(),
        }
    }

    /// One parameter, from the query string or the JSON body (the query
    /// string wins).
    fn param_u64(req: &Request, body: &Option<Json>, key: &str) -> Result<Option<u64>, Response> {
        if let Some(v) = req.query_param(key) {
            return v
                .parse::<u64>()
                .map(Some)
                .map_err(|_| Response::bad_request(format!("{key} must be a number")));
        }
        match body.as_ref().and_then(|b| b.get(key)) {
            None => Ok(None),
            Some(v) => v
                .as_u64()
                .map(Some)
                .ok_or_else(|| Response::bad_request(format!("{key} must be a number"))),
        }
    }

    fn query(&self, req: &Request) -> Response {
        let body: Option<Json> = match req.body_str().map(str::trim) {
            None => return Response::bad_request("body is not UTF-8"),
            Some("") => None,
            Some(text) => match Json::parse(text) {
                Ok(v) => Some(v),
                Err(e) => return Response::bad_request(format!("bad JSON body: {e}")),
            },
        };
        let doc = match Self::param_u64(req, &body, "doc") {
            Ok(Some(d)) => d,
            Ok(None) => return Response::bad_request("missing doc (query param or JSON body)"),
            Err(resp) => return resp,
        };
        let k = match Self::param_u64(req, &body, "k") {
            Ok(v) => v.unwrap_or(5) as usize,
            Err(resp) => return resp,
        };
        let want_explain = req.query_param("explain").is_some_and(|v| v != "0")
            || body
                .as_ref()
                .and_then(|b| b.get("explain"))
                .is_some_and(|v| *v == Json::Bool(true));

        let epoch = self.handle.current();
        if doc >= epoch.num_docs() as u64 {
            return Response::bad_request(format!(
                "doc {doc} out of range (collection has {})",
                epoch.num_docs()
            ));
        }
        let obs = Registry::global();
        let traces = TraceStore::global();
        // A request-scoped trace when tracing is on: the caller's
        // `X-Intentmatch-Trace` id propagates; otherwise one is generated.
        // Every traced path below is bit-identical to its untraced twin
        // (cost counting rides out-of-band), so enabling tracing never
        // changes a ranking.
        let mut qtrace = traces
            .is_enabled()
            .then(|| Trace::begin("query", req.header(TRACE_HEADER)));
        let started = Instant::now();
        // EXPLAIN traces the compacted snapshot (its ranking is asserted
        // bit-identical to the offline engine); refuse while delta writes
        // are pending rather than trace the wrong state.
        let (ranking, explain_out, path) = if want_explain {
            if epoch.has_pending() {
                return Response::text(
                    409,
                    "explain requires a compacted store: WAL writes are pending\n",
                );
            }
            let explain_out = explain::explain_top_k_with_n_traced(
                &epoch.base.pipeline,
                &epoch.base.collection,
                doc as usize,
                k,
                2 * k,
                qtrace.as_mut(),
            );
            (explain_out.ranking(), Some(explain_out), "explain")
        } else if epoch.has_pending() {
            (
                epoch.top_k_with_n_traced(doc as u32, k, 2 * k, qtrace.as_mut()),
                None,
                "live",
            )
        } else if qtrace.is_some() {
            // No delta, tracing on: the engine's sequential scan — the
            // same Algorithm 2 as `pipeline.top_k`, bit for bit — with the
            // `engine/algo2` span and its cost counters recorded.
            let engine =
                intentmatch::QueryEngine::new(&epoch.base.collection, &epoch.base.pipeline)
                    .with_threads(1);
            match engine.try_top_k_traced(doc as usize, k, qtrace.as_mut()) {
                Ok(ranking) => (ranking, None, "engine"),
                Err(e) => return Response::text(500, format!("query failed: {e}\n")),
            }
        } else {
            // No delta: the offline engine's exact path.
            (
                epoch
                    .base
                    .pipeline
                    .top_k(&epoch.base.collection, doc as usize, k),
                None,
                "engine",
            )
        };
        obs.record_duration("serve/online_query_ns", started.elapsed());

        let trace_id = qtrace.map(|mut t| {
            t.set_detail(
                Json::obj()
                    .with("path", path)
                    .with("doc", doc)
                    .with("k", k as u64)
                    .with("epoch", epoch.epoch),
            );
            t.finish();
            // A slow query lands in the slow log with its EXPLAIN attached
            // (when the state admits one): the per-cluster candidates and
            // weights that produced the slow ranking, next to the spans
            // that say where the time went.
            if traces.is_slow(t.total_ns()) {
                if let Some(explain_out) = &explain_out {
                    t.attach_explain(explain_out.to_json());
                } else if !epoch.has_pending() {
                    t.attach_explain(
                        explain::explain_top_k(
                            &epoch.base.pipeline,
                            &epoch.base.collection,
                            doc as usize,
                            k,
                        )
                        .to_json(),
                    );
                }
            }
            let id = t.id().to_string();
            traces.record(t);
            id
        });

        let mut out = Json::obj()
            .with("query", doc)
            .with("k", k as u64)
            .with("epoch", epoch.epoch)
            .with(
                "results",
                Json::Arr(
                    ranking
                        .iter()
                        .enumerate()
                        .map(|(i, &(d, score))| {
                            Json::obj()
                                .with("rank", (i + 1) as u64)
                                .with("doc", d)
                                .with("score", score)
                        })
                        .collect(),
                ),
            );
        if let Some(explain_out) = explain_out {
            out = out.with("explain", explain_out.to_json());
        }
        if let Some(id) = trace_id {
            out = out.with("trace", id);
        }
        Response::json(200, &out)
    }
}
