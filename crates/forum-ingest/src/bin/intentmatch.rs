//! `intentmatch` — command-line interface to the intention-based
//! related-post engine.
//!
//! Post files are plain text, one post per line (tabs and literal text
//! only; HTML is cleaned automatically).
//!
//! ```text
//! intentmatch index   posts.txt store.imp     build the offline state
//! intentmatch query   store.imp --doc 17 -k 5 related posts for post 17
//! intentmatch query   store.imp --text "..."  related posts for new text
//! intentmatch query   store.imp --batch 0-99  many queries, in parallel
//! intentmatch ingest  store.imp posts.txt     WAL-durable live adds
//! intentmatch compact store.imp               fold the WAL into the snapshot
//! intentmatch add     store.imp posts.txt     append posts + full resave
//! intentmatch stats   store.imp               collection & cluster summary
//! intentmatch serve   store.imp --addr H:P    live HTTP queries + telemetry
//! intentmatch migrate store.imp               rewrite in the v2 mapped layout
//! ```
//!
//! `query --mapped` and `serve --mapped` answer straight off a v2 store
//! through a zero-copy mmap view (`intentmatch::StoreView`): startup
//! touches only the header, section directory, and cluster metadata, and
//! each query faults in exactly the cluster indexes it consults —
//! rankings stay bit-identical to the hydrated engine. `stats` on a
//! compacted v2 store likewise answers from the header alone.
//!
//! `--batch` takes comma-separated document ids and inclusive ranges
//! (`0,5,10-14`) and evaluates them concurrently over the loaded store
//! with [`intentmatch::QueryEngine`]; `--threads T` bounds the workers
//! (`0`, the default, uses one per core). Results are identical to
//! issuing the same `--doc` queries one at a time. `index --threads T`
//! accepts the same spelling and parallelises the offline build's
//! clustering phase; labels are bit-identical for every thread count.
//!
//! `ingest` differs from `add` in durability and cost: `add` reprocesses
//! and atomically rewrites the whole snapshot per invocation, while
//! `ingest` appends fsync'd records to `<store>.wal` and serves them from
//! delta indices — `query` and `stats` replay the WAL automatically, and
//! `compact` folds it into a fresh snapshot (recomputing per-cluster
//! TF/IDF statistics) and truncates it.
//!
//! Observability flags (every subcommand):
//!
//! * `--metrics-out <path>` enables the process-wide metrics registry and
//!   writes a JSON-lines snapshot (one metric per line — counters, gauges,
//!   per-phase latency histograms with p50/p90/p99) on completion.
//! * `--explain` (`query --doc` only) prints the full EXPLAIN trace:
//!   which intention clusters the query consulted, each cluster's
//!   combination weight and top-n candidates, and the per-cluster
//!   contributions behind every final rank. EXPLAIN traces the compacted
//!   snapshot, so it requires a store with no pending WAL writes.
//!
//! `serve` binds an HTTP listener (default `127.0.0.1:7878`; use port `0`
//! for an ephemeral port — the bound address is printed to stdout) and
//! answers `POST /query` (`?doc=N&k=K`, `?explain=1` for the EXPLAIN
//! trace as JSON) plus the standard telemetry endpoints: `GET /metrics`
//! (Prometheus text exposition with interpolated percentiles and windowed
//! rates), `GET /healthz`, `GET /readyz` (live-engine readiness: store
//! loaded, WAL writable, epoch, pending sizes), `GET /snapshot`
//! (JSON-lines metrics), `GET /events?tail=N` (the operational event log),
//! `GET /traces?tail=N` / `GET /traces/<id>` (sampled request traces with
//! per-phase spans and cost counters), `GET /slowlog` (queries over the
//! `--slow-ms` threshold, EXPLAIN attached), and `POST /shutdown`.
//! `--events-out <path>` streams every event to a JSONL file;
//! `--trace-out <path>` does the same for kept traces. `validate` checks
//! scraped `/metrics` and `/traces` artifacts offline, for CI.

use forum_ingest::{IngestConfig, LiveStore};
use intentmatch::{explain, store, IntentPipeline, PipelineConfig, PostCollection};
use std::io::{BufRead, BufReader};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("index") => cmd_index(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("ingest") => cmd_ingest(&args[1..]),
        Some("compact") => cmd_compact(&args[1..]),
        Some("add") => cmd_add(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("migrate") => cmd_migrate(&args[1..]),
        Some("doctor") => cmd_doctor(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("--help") | Some("-h") | Some("help") => {
            print!("{}", usage_text());
            return ExitCode::SUCCESS;
        }
        _ => {
            eprint!("{}", usage_text());
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage_text() -> String {
    [
        "usage: intentmatch <index|query|ingest|compact|add|stats|serve|migrate|doctor|validate> \
         ...",
        "  index    <posts.txt> <store.imp> [--threads T] [--metrics-out M.jsonl]",
        "  query    <store.imp> (--doc N | --text \"...\" | --batch 0,5,10-14) \
         [-k K] [--threads T] [--explain] [--mapped] [--metrics-out M.jsonl]",
        "  ingest   <store.imp> <posts.txt> [--metrics-out M.jsonl]",
        "  compact  <store.imp> [--metrics-out M.jsonl]",
        "  add      <store.imp> <posts.txt> [--metrics-out M.jsonl]",
        "  stats    <store.imp> [--metrics-out M.jsonl]",
        "  serve    <store.imp> [--addr HOST:PORT] [--mapped] [--sample-period MS] \
         [--slo KEY=V,...] [--events-out E.jsonl] [--metrics-out M.jsonl] \
         [--slow-ms MS] [--trace-sample N] [--trace-out T.jsonl]",
        "  migrate  <store.imp> [<out.imp>] [--metrics-out M.jsonl]",
        "  doctor   <store.imp> [--json]",
        "  validate [--exposition metrics.txt] [--traces traces.json] \
         [--alerts alerts.json] [--dashboard page.html]",
        "",
        "serve samples the metrics registry every --sample-period ms \
         (default 5000, 0 disables) into in-process time-series (GET \
         /series, GET /dashboard) and evaluates SLO burn-rate alerts (GET \
         /alerts, slo_* metrics). --slo overrides objective targets: \
         availability=0.999, latency_ms=2000, delta_ratio=0.5, \
         noise_rate=0.5.",
        "",
        "--mapped serves (or queries) straight off the v2 store file \
         through a zero-copy mmap view: startup touches only the header, \
         directory, and cluster metadata, and each query lazily faults in \
         exactly the sections it consults. Rankings are bit-identical to \
         the default heap engine. The mapped reader is snapshot-only: it \
         refuses to start while WAL writes are pending (run `intentmatch \
         compact` first) and does not support --text or --explain.",
        "",
        "migrate rewrites a store in the current v2 sectioned layout \
         (legacy v1 stores also load transparently everywhere else; \
         migration makes the mmap fast path available). With no <out.imp> \
         the store is rewritten in place (atomically).",
        "",
        "doctor audits a store offline: the v2 byte layout (header, \
         directory, and per-section checksums; bounds; alignment), \
         per-cluster skew, postings integrity, term-impact caps vs \
         recomputed Eq. 8 weights, WAL fingerprint/checksums, tombstones \
         and orphans. Exits non-zero on hard failures; --json emits the \
         report as JSON.",
        "",
        "serve records a trace per request: queries slower than --slow-ms \
         (default 250) land in GET /slowlog with an EXPLAIN attached, a \
         1-in-N sample (--trace-sample, default 1 = all) lands in GET \
         /traces, and --trace-out streams kept traces to a JSONL file. \
         Callers may pin a trace id with an X-Intentmatch-Trace header.",
        "",
        "validate checks scraped artifacts offline (for CI smoke tests): \
         --exposition verifies a /metrics scrape parses as Prometheus text \
         exposition with # TYPE and # HELP for every family; --traces \
         verifies a /traces or /slowlog response is well-formed trace JSON.",
        "",
        "--threads T sets the worker count for the offline build (index: \
         segmentation and DBSCAN region queries) or for batch query \
         evaluation (query). T = 0 means auto: one worker per available \
         core. Results are bit-identical for every thread count.",
    ]
    .join("\n")
        + "\n"
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

/// Enables the global metrics registry so the phases we're about to run
/// record themselves. Call before the instrumented work.
fn enable_metrics() {
    forum_obs::Registry::global().set_enabled(true);
}

/// Writes the global registry's snapshot as JSON-lines to `path`.
fn dump_metrics(path: &str) -> CliResult {
    let snapshot = forum_obs::Registry::global().snapshot();
    forum_obs::export::write_json_lines(Path::new(path), &snapshot)?;
    eprintln!("wrote {} metrics to {path}", snapshot.metrics.len());
    Ok(())
}

fn read_posts(path: &str) -> Result<Vec<String>, std::io::Error> {
    let file = std::fs::File::open(path)?;
    let mut posts = Vec::new();
    for line in BufReader::new(file).lines() {
        let line = line?;
        if !line.trim().is_empty() {
            posts.push(line);
        }
    }
    Ok(posts)
}

fn cmd_index(args: &[String]) -> CliResult {
    let usage =
        "usage: intentmatch index <posts.txt> <store.imp> [--threads T] [--metrics-out M.jsonl]";
    let mut positional: Vec<&String> = Vec::new();
    let mut metrics_out: Option<String> = None;
    let mut threads = 1usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--metrics-out" => {
                metrics_out = Some(args.get(i + 1).ok_or("--metrics-out takes a path")?.clone());
                i += 2;
            }
            "--threads" => {
                threads = args
                    .get(i + 1)
                    .ok_or("--threads takes a count (0 = one per core)")?
                    .parse()?;
                i += 2;
            }
            _ => {
                positional.push(&args[i]);
                i += 1;
            }
        }
    }
    let [posts_path, store_path] = positional[..] else {
        return Err(usage.into());
    };
    if metrics_out.is_some() {
        enable_metrics();
    }
    let posts = read_posts(posts_path)?;
    eprintln!("parsing {} posts…", posts.len());
    let collection = PostCollection::from_raw_texts(&posts);
    eprintln!("building pipeline…");
    let cfg = PipelineConfig {
        threads,
        ..PipelineConfig::default()
    };
    let pipeline = IntentPipeline::build(&collection, &cfg);
    eprintln!(
        "built {} intention clusters in {:?} (segmentation {:?}, clustering {:?})",
        pipeline.num_clusters(),
        pipeline.timings.total(),
        pipeline.timings.segmentation,
        pipeline.timings.clustering,
    );
    store::save(Path::new(store_path), &collection, &pipeline)?;
    eprintln!("saved to {store_path}");
    if let Some(path) = metrics_out {
        dump_metrics(&path)?;
    }
    Ok(())
}

/// Parses a `--batch` spec: comma-separated document ids and inclusive
/// `a-b` ranges, e.g. `0,5,10-14`.
fn parse_batch_spec(spec: &str) -> Result<Vec<usize>, Box<dyn std::error::Error>> {
    let mut out = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if let Some((a, b)) = part.split_once('-') {
            let a: usize = a.trim().parse()?;
            let b: usize = b.trim().parse()?;
            if a > b {
                return Err(format!("bad range {part}: start after end").into());
            }
            out.extend(a..=b);
        } else {
            out.push(part.parse()?);
        }
    }
    if out.is_empty() {
        return Err("--batch spec selects no documents".into());
    }
    Ok(out)
}

fn cmd_query(args: &[String]) -> CliResult {
    let usage = "usage: intentmatch query <store.imp> (--doc N | --text \"...\" | \
                 --batch SPEC) [-k K] [--threads T] [--explain] [--mapped] \
                 [--metrics-out M.jsonl]";
    let Some(store_path) = args.first() else {
        return Err(usage.into());
    };
    let mut doc: Option<usize> = None;
    let mut text: Option<String> = None;
    let mut batch: Option<String> = None;
    let mut k = 5usize;
    let mut threads = 0usize;
    let mut explain_query = false;
    let mut mapped = false;
    let mut metrics_out: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--doc" => {
                doc = Some(args.get(i + 1).ok_or("--doc takes a number")?.parse()?);
                i += 2;
            }
            "--text" => {
                text = Some(args.get(i + 1).ok_or("--text takes a string")?.clone());
                i += 2;
            }
            "--batch" => {
                batch = Some(
                    args.get(i + 1)
                        .ok_or("--batch takes a doc list, e.g. 0,5,10-14")?
                        .clone(),
                );
                i += 2;
            }
            "-k" => {
                k = args.get(i + 1).ok_or("-k takes a number")?.parse()?;
                i += 2;
            }
            "--threads" => {
                threads = args
                    .get(i + 1)
                    .ok_or("--threads takes a count (0 = one per core)")?
                    .parse()?;
                i += 2;
            }
            "--explain" => {
                explain_query = true;
                i += 1;
            }
            "--mapped" => {
                mapped = true;
                i += 1;
            }
            "--metrics-out" => {
                metrics_out = Some(args.get(i + 1).ok_or("--metrics-out takes a path")?.clone());
                i += 2;
            }
            other => return Err(format!("unknown flag {other}").into()),
        }
    }
    if explain_query && doc.is_none() {
        return Err("--explain requires --doc (EXPLAIN traces a collection-resident query)".into());
    }
    if metrics_out.is_some() {
        enable_metrics();
    }
    if mapped {
        if text.is_some() {
            return Err("--mapped serves collection-resident queries only (no --text)".into());
        }
        if explain_query {
            return Err("--explain requires the hydrated engine (drop --mapped)".into());
        }
        return query_mapped(store_path, doc, batch.as_deref(), k, threads, metrics_out);
    }
    // Open as a live store: pending WAL writes (from `ingest`) replay into
    // delta indices so queries see them without waiting for a compaction.
    let live = LiveStore::open(
        Path::new(store_path),
        PipelineConfig::default(),
        IngestConfig::default(),
    )?;
    let epoch = live.current();
    let base = epoch.base.clone();
    let (collection, pipeline) = (&base.collection, &base.pipeline);
    let num_docs = epoch.num_docs();

    if let Some(spec) = batch {
        if doc.is_some() || text.is_some() {
            return Err("give exactly one of --doc, --text or --batch".into());
        }
        let queries = parse_batch_spec(&spec)?;
        if let Some(&bad) = queries.iter().find(|&&q| q >= num_docs) {
            return Err(format!("doc {bad} out of range (collection has {num_docs})").into());
        }
        let started = std::time::Instant::now();
        let results: Vec<Vec<(u32, f64)>> = if epoch.has_pending() {
            // Pending writes: evaluate over the epoch view (base scan with
            // tombstones + delta scan), one query at a time.
            queries.iter().map(|&q| epoch.top_k(q as u32, k)).collect()
        } else {
            let engine = intentmatch::QueryEngine::new(collection, pipeline).with_threads(threads);
            engine.top_k_batch(&queries, k)
        };
        let elapsed = started.elapsed();
        for (q, hits) in queries.iter().zip(&results) {
            println!("query #{q}:");
            if hits.is_empty() {
                println!("  no related posts found");
            }
            for &(d, score) in hits {
                println!("  {score:>8.4}  #{d}");
            }
        }
        eprintln!(
            "{} queries in {elapsed:?} ({:.0} queries/s, {} thread(s))",
            queries.len(),
            queries.len() as f64 / elapsed.as_secs_f64().max(1e-9),
            if threads == 0 {
                "auto".to_string()
            } else {
                threads.to_string()
            }
        );
        if let Some(path) = metrics_out {
            dump_metrics(&path)?;
        }
        return Ok(());
    }

    let hits = match (doc, text) {
        (Some(d), None) => {
            if d >= num_docs {
                return Err(format!("doc {d} out of range (collection has {num_docs})").into());
            }
            if explain_query {
                if epoch.has_pending() {
                    return Err("--explain traces the compacted snapshot; run \
                                `intentmatch compact` first"
                        .into());
                }
                let trace = explain::explain_top_k(pipeline, collection, d, k);
                print!("{}", trace.render());
                trace.ranking()
            } else if epoch.has_pending() {
                epoch.top_k(d as u32, k)
            } else {
                pipeline.top_k(collection, d, k)
            }
        }
        (None, Some(t)) => pipeline.match_new_post(&PipelineConfig::default(), &t, k),
        _ => return Err("give exactly one of --doc, --text or --batch".into()),
    };
    if hits.is_empty() {
        println!("no related posts found");
    }
    for (d, score) in hits {
        let preview: String = epoch.doc_text(d).unwrap_or("").chars().take(90).collect();
        println!("{score:>8.4}  #{d:<6} {preview}…");
    }
    if let Some(path) = metrics_out {
        dump_metrics(&path)?;
    }
    Ok(())
}

/// `query --mapped`: evaluates over a zero-copy [`intentmatch::StoreView`]
/// instead of hydrating the heap engine — O(touched pages) startup, lazy
/// per-cluster index materialization, rankings bit-identical to the
/// default path. Snapshot-only: refuses stores with pending WAL writes.
fn query_mapped(
    store_path: &str,
    doc: Option<usize>,
    batch: Option<&str>,
    k: usize,
    threads: usize,
    metrics_out: Option<String>,
) -> CliResult {
    let path = Path::new(store_path);
    let pending = forum_ingest::pending_wal_records(path)?;
    if pending > 0 {
        return Err(format!(
            "{pending} WAL record(s) pending on top of {store_path}: the mapped \
             reader serves the snapshot only — run `intentmatch compact` first"
        )
        .into());
    }
    let view = intentmatch::StoreView::open(path)?;
    let num_docs = view.num_docs();
    match (doc, batch) {
        (Some(d), None) => {
            if d >= num_docs {
                return Err(format!("doc {d} out of range (collection has {num_docs})").into());
            }
            let mut scratch = intentmatch::pipeline::QueryScratch::new();
            let hits = view.top_k(d, k, &mut scratch)?;
            if hits.is_empty() {
                println!("no related posts found");
            }
            for (d, score) in hits {
                let preview: String = view
                    .doc_text(d as usize)
                    .unwrap_or_default()
                    .chars()
                    .take(90)
                    .collect();
                println!("{score:>8.4}  #{d:<6} {preview}…");
            }
        }
        (None, Some(spec)) => {
            let queries = parse_batch_spec(spec)?;
            if let Some(&bad) = queries.iter().find(|&&q| q >= num_docs) {
                return Err(format!("doc {bad} out of range (collection has {num_docs})").into());
            }
            let threads = if threads == 0 {
                std::thread::available_parallelism().map_or(1, |n| n.get())
            } else {
                threads
            };
            let started = std::time::Instant::now();
            let results = intentmatch::top_k_many(&view, &queries, k, threads)?;
            let elapsed = started.elapsed();
            for (q, hits) in queries.iter().zip(&results) {
                println!("query #{q}:");
                if hits.is_empty() {
                    println!("  no related posts found");
                }
                for &(d, score) in hits {
                    println!("  {score:>8.4}  #{d}");
                }
            }
            eprintln!(
                "{} queries in {elapsed:?} ({:.0} queries/s, {threads} thread(s), \
                 {} backing, {}/{} clusters resident)",
                queries.len(),
                queries.len() as f64 / elapsed.as_secs_f64().max(1e-9),
                view.backing_name(),
                view.num_resident_clusters(),
                view.num_clusters(),
            );
        }
        _ => return Err("give exactly one of --doc or --batch with --mapped".into()),
    }
    if let Some(path) = metrics_out {
        dump_metrics(&path)?;
    }
    Ok(())
}

fn cmd_ingest(args: &[String]) -> CliResult {
    let usage = "usage: intentmatch ingest <store.imp> <posts.txt> [--metrics-out M.jsonl]";
    let mut positional: Vec<&String> = Vec::new();
    let mut metrics_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--metrics-out" => {
                metrics_out = Some(args.get(i + 1).ok_or("--metrics-out takes a path")?.clone());
                i += 2;
            }
            _ => {
                positional.push(&args[i]);
                i += 1;
            }
        }
    }
    let [store_path, posts_path] = positional[..] else {
        return Err(usage.into());
    };
    if metrics_out.is_some() {
        enable_metrics();
    }
    let posts = read_posts(posts_path)?;
    let mut live = LiveStore::open(
        Path::new(store_path),
        PipelineConfig::default(),
        IngestConfig::default(),
    )?;
    let ids = live.add_batch(&posts)?;
    let epoch = live.current();
    match (ids.first(), ids.last()) {
        (Some(first), Some(last)) => eprintln!(
            "ingested {} posts (ids {first}..={last}), durable in {}; \
             {} units pending — run `intentmatch compact` to fold into the snapshot",
            ids.len(),
            forum_ingest::wal_path_for(Path::new(store_path)).display(),
            epoch.delta.num_units(),
        ),
        _ => eprintln!("no posts to ingest"),
    }
    if let Some(path) = metrics_out {
        dump_metrics(&path)?;
    }
    Ok(())
}

fn cmd_compact(args: &[String]) -> CliResult {
    let usage = "usage: intentmatch compact <store.imp> [--metrics-out M.jsonl]";
    let mut positional: Vec<&String> = Vec::new();
    let mut metrics_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--metrics-out" => {
                metrics_out = Some(args.get(i + 1).ok_or("--metrics-out takes a path")?.clone());
                i += 2;
            }
            _ => {
                positional.push(&args[i]);
                i += 1;
            }
        }
    }
    let [store_path] = positional[..] else {
        return Err(usage.into());
    };
    if metrics_out.is_some() {
        enable_metrics();
    }
    let mut live = LiveStore::open(
        Path::new(store_path),
        PipelineConfig::default(),
        IngestConfig::default(),
    )?;
    if !live.has_pending() {
        eprintln!("nothing to compact: no pending WAL writes");
    } else {
        let started = std::time::Instant::now();
        live.compact()?;
        let epoch = live.current();
        eprintln!(
            "compacted into {store_path} in {:?}; collection now {} posts",
            started.elapsed(),
            epoch.num_docs(),
        );
    }
    if let Some(path) = metrics_out {
        dump_metrics(&path)?;
    }
    Ok(())
}

/// Positional arguments plus an optional `--metrics-out` path.
type SplitArgs<'a> = (Vec<&'a String>, Option<String>);

/// Splits `args` into positional arguments and an optional `--metrics-out`
/// path (the flag every subcommand shares).
fn split_metrics_flag(args: &[String]) -> Result<SplitArgs<'_>, Box<dyn std::error::Error>> {
    let mut positional: Vec<&String> = Vec::new();
    let mut metrics_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--metrics-out" => {
                metrics_out = Some(args.get(i + 1).ok_or("--metrics-out takes a path")?.clone());
                i += 2;
            }
            _ => {
                positional.push(&args[i]);
                i += 1;
            }
        }
    }
    Ok((positional, metrics_out))
}

fn cmd_add(args: &[String]) -> CliResult {
    let usage = "usage: intentmatch add <store.imp> <posts.txt> [--metrics-out M.jsonl]";
    let (positional, metrics_out) = split_metrics_flag(args)?;
    let [store_path, posts_path] = positional[..] else {
        return Err(usage.into());
    };
    if metrics_out.is_some() {
        enable_metrics();
    }
    let (mut collection, mut pipeline) = store::load(Path::new(store_path))?;
    let posts = read_posts(posts_path)?;
    let cfg = PipelineConfig::default();
    for p in &posts {
        pipeline.add_post(&mut collection, &cfg, p);
    }
    store::save(Path::new(store_path), &collection, &pipeline)?;
    eprintln!(
        "added {} posts; collection now {} posts",
        posts.len(),
        collection.len()
    );
    if let Some(path) = metrics_out {
        dump_metrics(&path)?;
    }
    Ok(())
}

/// `stats` fast path: a v2 store with no pending WAL writes answers
/// entirely from the 64-byte header, the section directory, and the
/// cluster-metadata section — per-cluster unit counts, vocabulary sizes,
/// and average unique terms are recorded there at save time, so nothing
/// else is read and no index materializes. Returns `Ok(false)` when the
/// store needs the hydrated path (v1 layout, or WAL records pending).
fn stats_from_header(store_path: &Path) -> Result<bool, Box<dyn std::error::Error>> {
    let mut magic = [0u8; 4];
    {
        use std::io::Read as _;
        let mut f = std::fs::File::open(store_path)?;
        if f.read_exact(&mut magic).is_err() {
            return Ok(false); // too short — let the full loader report it
        }
    }
    if &magic != intentmatch::store_v2::V2_MAGIC {
        return Ok(false);
    }
    if forum_ingest::pending_wal_records(store_path)? > 0 {
        return Ok(false);
    }
    let view = intentmatch::StoreView::open(store_path)?;
    println!("posts:    {}", view.num_docs());
    println!("clusters: {}", view.num_clusters());
    let mut total_segments = 0usize;
    for (c, meta) in view.cluster_meta().iter().enumerate() {
        println!(
            "  cluster {c}: {} segments, {} vocabulary terms, avg {:.1} unique terms/segment",
            meta.units, meta.vocab, meta.avg_unique,
        );
        total_segments += meta.units as usize;
    }
    println!(
        "refined segments: {} ({:.2} per post)",
        total_segments,
        total_segments as f64 / view.num_docs().max(1) as f64
    );
    debug_assert_eq!(view.num_resident_clusters(), 0);
    eprintln!(
        "answered from the v2 header ({} sections; read header + directory + \
         cluster metadata of a {}-byte store)",
        view.sections().len(),
        view.file_len(),
    );
    Ok(true)
}

fn cmd_stats(args: &[String]) -> CliResult {
    let usage = "usage: intentmatch stats <store.imp> [--metrics-out M.jsonl]";
    let (positional, metrics_out) = split_metrics_flag(args)?;
    let [store_path] = positional[..] else {
        return Err(usage.into());
    };
    if metrics_out.is_some() {
        enable_metrics();
    }
    if stats_from_header(Path::new(store_path))? {
        if let Some(path) = metrics_out {
            dump_metrics(&path)?;
        }
        return Ok(());
    }
    let live = LiveStore::open(
        Path::new(store_path),
        PipelineConfig::default(),
        IngestConfig::default(),
    )?;
    let epoch = live.current();
    let (collection, pipeline) = (&epoch.base.collection, &epoch.base.pipeline);
    println!("posts:    {}", epoch.num_docs());
    println!("clusters: {}", pipeline.num_clusters());
    for (c, cluster) in pipeline.clusters.iter().enumerate() {
        println!(
            "  cluster {c}: {} segments, {} vocabulary terms, avg {:.1} unique terms/segment",
            cluster.index.num_units(),
            cluster.index.vocabulary().len(),
            cluster.index.avg_unique_terms(),
        );
    }
    let total_segments: usize = pipeline.doc_segments.iter().map(Vec::len).sum();
    println!(
        "refined segments: {} ({:.2} per post)",
        total_segments,
        total_segments as f64 / collection.len().max(1) as f64
    );
    if epoch.has_pending() {
        println!(
            "pending:  {} docs ({} units) in the WAL, {} deleted, {} updated — \
             run `intentmatch compact` to fold in",
            epoch.delta.docs.len(),
            epoch.delta.num_units(),
            epoch.delta.deleted.len(),
            epoch.delta.superseded.len(),
        );
    }
    if let Some(path) = metrics_out {
        dump_metrics(&path)?;
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> CliResult {
    let usage = "usage: intentmatch serve <store.imp> [--addr HOST:PORT] [--mapped] \
                 [--shards S] [--workers W] [--queue-depth N] [--deadline-ms D] \
                 [--max-k K] [--boards FILE] \
                 [--sample-period MS] [--slo KEY=V[,KEY=V...]] \
                 [--events-out E.jsonl] [--metrics-out M.jsonl] [--slow-ms MS] \
                 [--trace-sample N] [--trace-out T.jsonl]";
    let mut positional: Vec<&String> = Vec::new();
    let mut mapped = false;
    let mut addr = "127.0.0.1:7878".to_string();
    let mut events_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut slow_ms = 250u64;
    let mut trace_sample = 1u64;
    let mut trace_out: Option<String> = None;
    let mut shards = 1usize;
    let mut workers = 0usize; // 0 = size the pool to the shard count
    let mut queue_depth = 64usize;
    let mut deadline_ms = 2_000u64;
    let mut max_k = 100usize;
    let mut boards_path: Option<String> = None;
    let mut sample_period_ms = 5_000u64; // 0 disables the sampler
    let mut slo_specs: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                addr = args.get(i + 1).ok_or("--addr takes HOST:PORT")?.clone();
                i += 2;
            }
            "--mapped" => {
                mapped = true;
                i += 1;
            }
            "--shards" => {
                shards = args.get(i + 1).ok_or("--shards takes a count")?.parse()?;
                i += 2;
            }
            "--workers" => {
                workers = args
                    .get(i + 1)
                    .ok_or("--workers takes a thread count")?
                    .parse()?;
                i += 2;
            }
            "--queue-depth" => {
                queue_depth = args
                    .get(i + 1)
                    .ok_or("--queue-depth takes a capacity")?
                    .parse()?;
                i += 2;
            }
            "--deadline-ms" => {
                deadline_ms = args
                    .get(i + 1)
                    .ok_or("--deadline-ms takes an admission deadline in milliseconds")?
                    .parse()?;
                i += 2;
            }
            "--max-k" => {
                max_k = args
                    .get(i + 1)
                    .ok_or("--max-k takes a per-request k cap")?
                    .parse()?;
                i += 2;
            }
            "--boards" => {
                boards_path = Some(
                    args.get(i + 1)
                        .ok_or("--boards takes a file of `doc_id board` lines")?
                        .clone(),
                );
                i += 2;
            }
            "--sample-period" => {
                sample_period_ms = args
                    .get(i + 1)
                    .ok_or("--sample-period takes a period in milliseconds (0 disables)")?
                    .parse()?;
                i += 2;
            }
            "--slo" => {
                slo_specs.push(
                    args.get(i + 1)
                        .ok_or(
                            "--slo takes key=value items (availability, latency_ms, \
                                delta_ratio, noise_rate)",
                        )?
                        .clone(),
                );
                i += 2;
            }
            "--events-out" => {
                events_out = Some(args.get(i + 1).ok_or("--events-out takes a path")?.clone());
                i += 2;
            }
            "--metrics-out" => {
                metrics_out = Some(args.get(i + 1).ok_or("--metrics-out takes a path")?.clone());
                i += 2;
            }
            "--slow-ms" => {
                slow_ms = args
                    .get(i + 1)
                    .ok_or("--slow-ms takes a latency threshold in milliseconds")?
                    .parse()?;
                i += 2;
            }
            "--trace-sample" => {
                trace_sample = args
                    .get(i + 1)
                    .ok_or("--trace-sample takes a sampling divisor (1 = every request)")?
                    .parse()?;
                i += 2;
            }
            "--trace-out" => {
                trace_out = Some(args.get(i + 1).ok_or("--trace-out takes a path")?.clone());
                i += 2;
            }
            _ => {
                positional.push(&args[i]);
                i += 1;
            }
        }
    }
    let [store_path] = positional[..] else {
        return Err(usage.into());
    };
    // A telemetry server without telemetry would be pointless: serving
    // always records metrics, events, and request traces.
    enable_metrics();
    let events = forum_obs::EventLog::global();
    events.set_enabled(true);
    if let Some(path) = &events_out {
        events.set_sink(Path::new(path))?;
    }
    let traces = forum_obs::TraceStore::global();
    traces.set_enabled(true);
    traces.set_sample_every(trace_sample);
    traces.set_slow_threshold(std::time::Duration::from_millis(slow_ms));
    if let Some(path) = &trace_out {
        traces.set_sink(Path::new(path))?;
    }
    if mapped {
        if shards != 1 {
            return Err("--mapped serves one zero-copy view (drop --shards)".into());
        }
        if boards_path.is_some() {
            return Err("--boards requires the sharded engine (drop --mapped)".into());
        }
        let pending = forum_ingest::pending_wal_records(Path::new(store_path))?;
        if pending > 0 {
            return Err(format!(
                "{pending} WAL record(s) pending on top of {store_path}: the mapped \
                 reader serves the snapshot only — run `intentmatch compact` first"
            )
            .into());
        }
        let view = std::sync::Arc::new(intentmatch::StoreView::open(Path::new(store_path))?);
        let app = forum_ingest::MappedServeApp::new(view.clone());
        let workers = if workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            workers
        };
        let server = forum_shard::PoolServer::bind(&addr)?
            .with_workers(workers)
            .with_queue_depth(queue_depth)
            .with_deadline(std::time::Duration::from_millis(deadline_ms));
        let bound = server.local_addr()?;
        app.set_stopper(server.stopper()?);
        println!("listening on http://{bound}");
        use std::io::Write as _;
        std::io::stdout().flush()?;
        eprintln!(
            "serving {store_path} mapped ({} backing, {} sections, {} bytes) on \
             http://{bound} — {workers} worker(s), queue {queue_depth}, deadline \
             {deadline_ms}ms — POST /shutdown to stop",
            view.backing_name(),
            view.sections().len(),
            view.file_len(),
        );
        let handler_app = app.clone();
        server.run(std::sync::Arc::new(
            move |req: &forum_obs::serve::Request| handler_app.handle(req),
        ));
        eprintln!("server stopped");
        if let Some(path) = metrics_out {
            dump_metrics(&path)?;
        }
        return Ok(());
    }
    let live = LiveStore::open(
        Path::new(store_path),
        PipelineConfig::default(),
        IngestConfig::default(),
    )?;
    let boards = match &boards_path {
        Some(path) => Some(
            forum_ingest::parse_boards(&std::fs::read_to_string(path)?)
                .map_err(|e| format!("bad boards file {path}: {e}"))?,
        ),
        None => None,
    };
    let objectives = forum_ingest::parse_slo_overrides(
        &slo_specs,
        std::time::Duration::from_millis(deadline_ms),
    )?;
    let app = forum_ingest::ShardServeApp::with_objectives(
        live.handle(),
        forum_ingest::wal_path_for(Path::new(store_path)),
        forum_ingest::ShardServeConfig {
            shards,
            max_k,
            boards,
        },
        objectives,
    );
    // The worker pool defaults to one worker per shard: under scatter,
    // each admitted query fans its cluster scans across the shards, so
    // matching the two keeps the pool saturated without oversubscribing.
    let workers = if workers == 0 { shards } else { workers };
    let server = forum_shard::PoolServer::bind(&addr)?
        .with_workers(workers)
        .with_queue_depth(queue_depth)
        .with_deadline(std::time::Duration::from_millis(deadline_ms));
    let bound = server.local_addr()?;
    app.set_stopper(server.stopper()?);
    // The sampler ties its shutdown to the stopper installed above, so a
    // `POST /shutdown` also stops the sampling thread.
    if sample_period_ms > 0 {
        app.start_sampler(std::time::Duration::from_millis(sample_period_ms));
    }
    // Stdout so scripts can discover an ephemeral port; flush before the
    // accept loop blocks.
    println!("listening on http://{bound}");
    use std::io::Write as _;
    std::io::stdout().flush()?;
    eprintln!(
        "serving {store_path} on http://{bound} — {shards} shard(s), {workers} worker(s), \
         queue {queue_depth}, deadline {deadline_ms}ms — POST /shutdown to stop"
    );
    let handler_app = app.clone();
    server.run(std::sync::Arc::new(
        move |req: &forum_obs::serve::Request| handler_app.handle(req),
    ));
    eprintln!("server stopped");
    if let Some(path) = metrics_out {
        dump_metrics(&path)?;
    }
    Ok(())
}

/// `migrate` — rewrites a store in the current v2 sectioned layout.
/// Loading handles both formats (v1 decodes, v2 hydrates), and `save`
/// always writes v2 atomically, so migration is just load + save; with
/// no explicit destination the store is replaced in place. Refuses when
/// WAL records are pending (they bind to the old snapshot's fingerprint
/// and would be silently discarded after the rewrite).
fn cmd_migrate(args: &[String]) -> CliResult {
    let usage = "usage: intentmatch migrate <store.imp> [<out.imp>] [--metrics-out M.jsonl]";
    let (positional, metrics_out) = split_metrics_flag(args)?;
    let (store_path, out_path) = match positional[..] {
        [store] => (store, store),
        [store, out] => (store, out),
        _ => return Err(usage.into()),
    };
    if metrics_out.is_some() {
        enable_metrics();
    }
    let pending = forum_ingest::pending_wal_records(Path::new(store_path))?;
    if pending > 0 {
        return Err(format!(
            "{pending} WAL record(s) pending on top of {store_path} — run \
             `intentmatch compact` first, then migrate"
        )
        .into());
    }
    let mut magic = [0u8; 4];
    {
        use std::io::Read as _;
        std::fs::File::open(store_path)?.read_exact(&mut magic)?;
    }
    let from = if &magic == intentmatch::store_v2::V2_MAGIC {
        "v2"
    } else {
        "v1"
    };
    let (collection, pipeline) = store::load(Path::new(store_path))?;
    store::save(Path::new(out_path), &collection, &pipeline)?;
    eprintln!(
        "migrated {store_path} ({from}) -> {out_path} (v2): {} posts, {} clusters, {} bytes",
        collection.len(),
        pipeline.num_clusters(),
        std::fs::metadata(out_path).map(|m| m.len()).unwrap_or(0),
    );
    if let Some(path) = metrics_out {
        dump_metrics(&path)?;
    }
    Ok(())
}

/// One trace object from `/traces`, `/slowlog`, or `/traces/<id>`: the
/// fields every consumer relies on must be present and well-typed.
fn check_trace_json(t: &forum_obs::json::Json, ctx: &str) -> CliResult {
    use forum_obs::json::Json;
    let id = t
        .get("id")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{ctx}: trace has no string \"id\""))?;
    if id.is_empty() {
        return Err(format!("{ctx}: trace id is empty").into());
    }
    t.get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{ctx}: trace {id} has no string \"kind\""))?;
    t.get("total_ns")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{ctx}: trace {id} has no numeric \"total_ns\""))?;
    let spans = t
        .get("spans")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{ctx}: trace {id} has no \"spans\" array"))?;
    for (i, span) in spans.iter().enumerate() {
        span.get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{ctx}: trace {id} span {i} has no string \"name\""))?;
        span.get("dur_ns")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{ctx}: trace {id} span {i} has no numeric \"dur_ns\""))?;
    }
    Ok(())
}

/// Offline validation of scraped telemetry artifacts, for CI smoke tests:
/// a `/metrics` scrape must parse as Prometheus text exposition (with
/// `doctor <store.imp> [--json]` — offline, read-only store/index/WAL
/// health audit. Prints the report (human text by default, one JSON
/// object with `--json`) and exits non-zero when any hard failure was
/// found; warnings alone do not fail the run.
fn cmd_doctor(args: &[String]) -> CliResult {
    let usage = "usage: intentmatch doctor <store.imp> [--json]";
    let mut store: Option<String> = None;
    let mut json = false;
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other}\n{usage}").into());
            }
            other => {
                if store.replace(other.to_string()).is_some() {
                    return Err(usage.into());
                }
            }
        }
    }
    let store = store.ok_or(usage)?;
    let report = forum_ingest::diagnose(std::path::Path::new(&store));
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.healthy() {
        Ok(())
    } else {
        Err(format!("{} hard failure(s) in {store}", report.problems.len()).into())
    }
}

/// `# TYPE` and `# HELP` for every sample family), and a `/traces` or
/// `/slowlog` response must be structurally sound trace JSON.
fn cmd_validate(args: &[String]) -> CliResult {
    use forum_obs::json::Json;
    let usage = "usage: intentmatch validate [--exposition metrics.txt] [--traces traces.json] \
                 [--alerts alerts.json] [--dashboard page.html]";
    let mut exposition: Option<String> = None;
    let mut traces: Option<String> = None;
    let mut alerts: Option<String> = None;
    let mut dashboard: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--exposition" => {
                exposition = Some(args.get(i + 1).ok_or("--exposition takes a path")?.clone());
                i += 2;
            }
            "--traces" => {
                traces = Some(args.get(i + 1).ok_or("--traces takes a path")?.clone());
                i += 2;
            }
            "--alerts" => {
                alerts = Some(args.get(i + 1).ok_or("--alerts takes a path")?.clone());
                i += 2;
            }
            "--dashboard" => {
                dashboard = Some(args.get(i + 1).ok_or("--dashboard takes a path")?.clone());
                i += 2;
            }
            _ => return Err(usage.into()),
        }
    }
    if exposition.is_none() && traces.is_none() && alerts.is_none() && dashboard.is_none() {
        return Err(usage.into());
    }
    if let Some(path) = exposition {
        let text = std::fs::read_to_string(&path)?;
        let samples = forum_obs::prometheus::validate_exposition(&text)
            .map_err(|e| format!("{path}: invalid exposition: {e}"))?;
        eprintln!("{path}: valid exposition, {samples} samples");
    }
    if let Some(path) = traces {
        let text = std::fs::read_to_string(&path)?;
        let parsed = Json::parse(text.trim()).map_err(|e| format!("{path}: bad JSON: {e}"))?;
        // Accept the three shapes the server produces: a `/traces` or
        // `/slowlog` envelope ({seen, kept, slow, traces: [...]}), a bare
        // array, or a single `/traces/<id>` trace object.
        let list: Vec<&Json> = if let Some(arr) = parsed.get("traces").and_then(Json::as_arr) {
            for key in ["seen", "kept", "slow"] {
                parsed
                    .get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("{path}: envelope has no numeric \"{key}\""))?;
            }
            arr.iter().collect()
        } else if let Some(arr) = parsed.as_arr() {
            arr.iter().collect()
        } else {
            vec![&parsed]
        };
        for (i, t) in list.iter().enumerate() {
            check_trace_json(t, &format!("{path} trace[{i}]"))?;
        }
        eprintln!("{path}: {} well-formed trace(s)", list.len());
    }
    if let Some(path) = alerts {
        let text = std::fs::read_to_string(&path)?;
        let parsed = Json::parse(text.trim()).map_err(|e| format!("{path}: bad JSON: {e}"))?;
        parsed
            .get("unix_ms")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{path}: envelope has no numeric \"unix_ms\""))?;
        let objectives = parsed
            .get("objectives")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{path}: envelope has no \"objectives\" array"))?;
        if objectives.is_empty() {
            return Err(format!("{path}: no objectives configured").into());
        }
        for (i, o) in objectives.iter().enumerate() {
            let name = o
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{path}: objective[{i}] has no string \"name\""))?;
            let state = o
                .get("state")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{path}: objective {name} has no string \"state\""))?;
            if !["ok", "warning", "firing"].contains(&state) {
                return Err(format!("{path}: objective {name} has bad state {state:?}").into());
            }
            for key in ["burn_fast", "burn_slow", "warn_burn", "fire_burn"] {
                o.get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("{path}: objective {name} has no numeric {key:?}"))?;
            }
        }
        eprintln!("{path}: {} well-formed objective(s)", objectives.len());
    }
    if let Some(path) = dashboard {
        let text = std::fs::read_to_string(&path)?;
        if !text.trim_start().starts_with("<!DOCTYPE html>") {
            return Err(format!("{path}: not an HTML document").into());
        }
        if !text.contains("<svg") {
            return Err(format!("{path}: no inline SVG sparklines").into());
        }
        // Self-containment: the page must reference nothing external (the
        // SVG xmlns declaration carries no fetch, and is the only URL).
        for needle in ["src=", "href=", "url(", "@import", "<script"] {
            if text.contains(needle) {
                return Err(
                    format!("{path}: dashboard is not self-contained: found {needle:?}").into(),
                );
            }
        }
        eprintln!("{path}: self-contained dashboard, {} bytes", text.len());
    }
    Ok(())
}
