//! `forum-ingest` — live ingestion for the intention-based matcher.
//!
//! The offline pipeline (`intentmatch`) builds a frozen intention model:
//! segmentations, cluster centroids, and per-cluster indices, persisted as
//! an atomic snapshot. This crate makes that state *live*: posts can be
//! added, updated, and deleted against the frozen model without a rebuild,
//! durably, while queries keep serving.
//!
//! Three layers:
//!
//! * [`wal`] — a length-prefixed, checksummed, fsync'd write-ahead log
//!   beside the snapshot. Writes are durable before they are applied;
//!   recovery replays the valid prefix and tolerates torn tails.
//! * [`live`] — the serving state: a shared frozen [`live::BaseState`]
//!   plus per-cluster [`forum_index::DeltaIndex`] units and tombstones,
//!   wrapped in an immutable [`live::LiveEpoch`] behind an
//!   [`live::EpochHandle`]. Writers publish whole epochs; readers never
//!   see a half-applied batch.
//! * [`ingest`] — the [`ingest::LiveStore`] orchestrating all of it:
//!   open (load snapshot + replay WAL), write (log → apply → publish),
//!   and [`ingest::LiveStore::compact`] (fold the delta into a fresh
//!   snapshot, recomputing TF/IDF statistics, bit-identical to an offline
//!   assembly of the same documents).
//!
//! New posts are segmented with the existing strategy and each segment is
//! assigned to the nearest existing cluster centroid
//! ([`forum_cluster::nearest_centroid`]; optionally gated by
//! [`ingest::IngestConfig::assign_eps`]). Centroids never move — the
//! paper's observation is that intention clusters drift very slowly, so
//! re-grouping is a periodic offline affair, not a per-write one.
//!
//! Observability: the ingestion path records into the process-wide
//! [`forum_obs::Registry`] under the `ingest/*` family — counters
//! `ingest/added`, `ingest/updated`, `ingest/deleted`,
//! `ingest/wal_replayed`, `ingest/wal_bytes`, `ingest/live_queries`,
//! `ingest/noise_segments`, histograms `ingest/wal_append_ns`,
//! `ingest/compact_ns`, and gauges `ingest/epoch`, `ingest/pending_units`.
//! Operational moments (WAL recoveries and truncations, compactions, epoch
//! swaps) additionally land in the process-wide [`forum_obs::EventLog`].
//!
//! A fourth layer, [`serve`], turns a store into a live HTTP endpoint:
//! `POST /query` (optionally with a per-query EXPLAIN trace) plus the
//! standard telemetry routes (`/metrics` Prometheus exposition, `/healthz`,
//! `/readyz` with live-engine readiness, `/snapshot`, `/events`) — see
//! `intentmatch serve`. [`mapped`] is its zero-hydration sibling: the
//! same `/query` contract served straight off a v2 store through
//! [`intentmatch::StoreView`] (lazy section loading, bit-identical
//! rankings) — see `intentmatch serve --mapped`. The offline companion,
//! [`doctor`], audits a store/WAL pair read-only and reports corruption,
//! inconsistency, and drift — see `intentmatch doctor`.

pub mod doctor;
pub mod ingest;
pub mod live;
pub mod mapped;
pub mod serve;
pub mod shard_serve;
pub mod wal;

pub use doctor::{diagnose, ClusterHealth, DoctorReport};
pub use ingest::{wal_path_for, IngestConfig, IngestError, LiveStore};
pub use live::{BaseState, ClusterScan, DeltaDoc, DeltaState, EpochHandle, LiveEpoch};
pub use mapped::{pending_wal_records, MappedHealth, MappedServeApp};
pub use serve::{
    default_objectives, parse_slo_overrides, ServeApp, ServeHealth, DRIFT_DELTA_SERIES,
    DRIFT_NOISE_SERIES,
};
pub use shard_serve::{parse_boards, ShardServeApp, ShardServeConfig};
pub use wal::{Wal, WalError, WalInspection, WalRecord};
