//! The live store: WAL-durable writes over a compacted snapshot.
//!
//! [`LiveStore::open`] loads the last snapshot (`intentmatch::store`),
//! replays the WAL beside it, and publishes the first serving epoch. Every
//! write ([`LiveStore::add`]/[`delete`](LiveStore::delete)/
//! [`update`](LiveStore::update)) is appended to the WAL and fsync'd
//! *before* it is applied in memory and published — a crash after the
//! append replays the write on reopen; a crash during it recovers the
//! state before the write. [`LiveStore::compact`] folds the delta into a
//! fresh snapshot (atomic replace), truncates the WAL, and swaps the base.
//!
//! New documents are processed with the **frozen** intention model: the
//! existing segmentation strategy segments them, and each segment is
//! assigned to the nearest existing cluster centroid — centroids are never
//! moved by ingestion (the paper's position is that intentions drift
//! slowly and grouping is re-run periodically; here, a periodic full
//! rebuild plays that role). With [`IngestConfig::assign_eps`] set,
//! segments farther than `eps` from every centroid are treated as noise
//! and dropped instead of force-assigned.

use crate::live::{BaseState, DeltaDoc, DeltaState, EpochHandle, LiveEpoch};
use crate::wal::{Wal, WalError, WalRecord};
use forum_cluster::PointMatrix;
use forum_obs::json::Json;
use forum_obs::{Trace, TraceCosts, TraceStore};
use forum_text::document::DocId;
use forum_text::{Document, Segmentation};
use intentmatch::pipeline::{segment_terms, RefinedSegment};
use intentmatch::store::{self, StoreError};
use intentmatch::{IntentPipeline, PipelineConfig, PostCollection};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Ingestion-specific knobs on top of [`PipelineConfig`].
#[derive(Debug, Clone, Copy, Default)]
pub struct IngestConfig {
    /// Centroid-distance gate for segment assignment. `None` (the default)
    /// assigns every segment to its nearest centroid — the same rule the
    /// offline pipeline uses for noise under `assign_noise`, which keeps
    /// ingest+compact equivalent to a rebuild. `Some(eps)` drops segments
    /// farther than `eps` from every centroid as noise (the DBSCAN-faithful
    /// choice for collections whose offline build dropped noise too).
    pub assign_eps: Option<f64>,
}

/// Errors from the live store.
#[derive(Debug)]
pub enum IngestError {
    /// WAL failure (I/O or corruption).
    Wal(WalError),
    /// Snapshot load/save failure.
    Store(StoreError),
    /// A delete or update named a document that does not exist (never
    /// assigned, or already deleted).
    UnknownDoc(u32),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Wal(e) => write!(f, "{e}"),
            IngestError::Store(e) => write!(f, "{e}"),
            IngestError::UnknownDoc(id) => write!(f, "document {id} does not exist"),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<WalError> for IngestError {
    fn from(e: WalError) -> Self {
        IngestError::Wal(e)
    }
}

impl From<StoreError> for IngestError {
    fn from(e: StoreError) -> Self {
        IngestError::Store(e)
    }
}

/// The WAL lives beside its snapshot: `<store>.wal`.
pub fn wal_path_for(store_path: &Path) -> PathBuf {
    let mut p = store_path.as_os_str().to_owned();
    p.push(".wal");
    PathBuf::from(p)
}

/// The fingerprint binding a WAL to the snapshot its records apply on top
/// of: FNV-1a over the snapshot's identity bytes, folded with the file
/// length. A compaction changes the snapshot, so a WAL left behind by a
/// crash between snapshot save and WAL reset no longer matches and is
/// discarded on the next open (see `wal::Wal::open`).
///
/// For v2 stores the identity bytes are the 64-byte header plus the
/// section directory: every section's FNV checksum lives in a directory
/// entry and the directory's own checksum lives in the header, so any
/// change to any section byte changes the directory — hashing header +
/// directory binds the entire snapshot in O(sections), not O(file). A v1
/// store (or a v2 file whose header does not parse; `store::load` will
/// report the real corruption) hashes the whole file as before.
pub(crate) fn snapshot_tag(store_path: &Path) -> Result<u64, IngestError> {
    use std::io::Read as _;
    let io = |e: std::io::Error| IngestError::Store(StoreError::Io(e));
    let mut file = std::fs::File::open(store_path).map_err(io)?;
    let file_len = file.metadata().map_err(io)?.len();
    if file_len >= intentmatch::store_v2::HEADER_BYTES as u64 {
        let mut head = [0u8; intentmatch::store_v2::HEADER_BYTES];
        file.read_exact(&mut head).map_err(io)?;
        if &head[0..4] == intentmatch::store_v2::V2_MAGIC {
            let dir_offset = u64::from_le_bytes(head[8..16].try_into().unwrap());
            let dir_len = u64::from_le_bytes(head[16..24].try_into().unwrap());
            let dir_end = dir_offset.checked_add(dir_len);
            if dir_offset >= intentmatch::store_v2::HEADER_BYTES as u64
                && dir_end.is_some_and(|end| end <= file_len)
            {
                use std::io::{Seek as _, SeekFrom};
                let mut identity = head.to_vec();
                identity.resize(head.len() + dir_len as usize, 0);
                file.seek(SeekFrom::Start(dir_offset)).map_err(io)?;
                file.read_exact(&mut identity[head.len()..]).map_err(io)?;
                return Ok(crate::wal::fnv1a(&identity) ^ file_len.rotate_left(32));
            }
        }
    }
    let bytes = std::fs::read(store_path).map_err(io)?;
    Ok(crate::wal::fnv1a(&bytes) ^ (bytes.len() as u64).rotate_left(32))
}

/// A snapshot + WAL pair, open for writes, serving through an
/// [`EpochHandle`].
#[derive(Debug)]
pub struct LiveStore {
    cfg: PipelineConfig,
    ingest_cfg: IngestConfig,
    store_path: PathBuf,
    wal: Wal,
    base: Arc<BaseState>,
    /// The frozen model's centroids in flat storage, prebuilt once per
    /// base state so every ingested segment's nearest-centroid scan runs
    /// over contiguous memory with the early-abort distance kernel.
    centroid_matrix: PointMatrix,
    delta: DeltaState,
    epoch_counter: u64,
    handle: Arc<EpochHandle>,
}

impl LiveStore {
    /// Opens the snapshot at `store_path`, replays `<store>.wal` on top of
    /// it, and publishes the recovered state as the first serving epoch.
    pub fn open(
        store_path: &Path,
        cfg: PipelineConfig,
        ingest_cfg: IngestConfig,
    ) -> Result<LiveStore, IngestError> {
        let (collection, pipeline) = store::load(store_path)?;
        let tag = snapshot_tag(store_path)?;
        let base = Arc::new(BaseState {
            collection,
            pipeline,
        });
        let (wal, records) = Wal::open(&wal_path_for(store_path), tag)?;
        let delta = DeltaState::new(base.pipeline.num_clusters(), base.len() as u32);
        let epoch = Arc::new(LiveEpoch::new(base.clone(), delta.clone(), 0));
        let centroid_matrix = PointMatrix::from_rows(&base.pipeline.centroids);
        let mut live = LiveStore {
            cfg,
            ingest_cfg,
            store_path: store_path.to_path_buf(),
            wal,
            base,
            centroid_matrix,
            delta,
            epoch_counter: 0,
            handle: Arc::new(EpochHandle::new(epoch)),
        };
        let replayed = records.len();
        for rec in &records {
            live.apply_record(rec, &mut 0)?;
        }
        if replayed > 0 {
            forum_obs::Registry::global().incr("ingest/wal_replayed", replayed as u64);
            forum_obs::EventLog::global().emit(
                "wal_recovered",
                forum_obs::json::Json::obj()
                    .with("records", replayed as u64)
                    .with("store", store_path.display().to_string()),
            );
        }
        live.publish();
        Ok(live)
    }

    /// The serving handle; clone the `Arc` into however many reader
    /// threads need it.
    pub fn handle(&self) -> Arc<EpochHandle> {
        self.handle.clone()
    }

    /// The current serving epoch (a convenience for single-threaded
    /// callers).
    pub fn current(&self) -> Arc<LiveEpoch> {
        self.handle.current()
    }

    /// The pipeline configuration the store was opened with.
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// Number of records pending in the WAL (writes since the last
    /// compaction).
    pub fn has_pending(&self) -> bool {
        !self.delta.is_empty()
    }

    /// Whether `id` names a live document.
    fn is_live(&self, id: u32) -> bool {
        id < self.delta.next_id && !self.delta.deleted.contains(&id)
    }

    /// Ingests one new post. Durable on return; the new epoch is published.
    pub fn add(&mut self, text: &str) -> Result<u32, IngestError> {
        let rec = WalRecord::Add {
            text: text.to_string(),
        };
        self.write_traced("add", &rec)
    }

    /// Ingests a batch of posts with one epoch publish at the end (readers
    /// see none or all of the batch).
    pub fn add_batch<S: AsRef<str>>(&mut self, texts: &[S]) -> Result<Vec<u32>, IngestError> {
        let traces = TraceStore::global();
        let trace = traces.is_enabled().then(|| Trace::begin("ingest", None));
        let timing = trace.is_some();
        let (mut wal_ns, mut apply_ns) = (0u64, 0u64);
        let mut evals = 0u64;
        let mut ids = Vec::with_capacity(texts.len());
        for t in texts {
            let rec = WalRecord::Add {
                text: t.as_ref().to_string(),
            };
            let t0 = timing.then(Instant::now);
            self.append_durable(&rec)?;
            if let Some(t0) = t0 {
                wal_ns += t0.elapsed().as_nanos() as u64;
            }
            let t1 = timing.then(Instant::now);
            ids.push(self.apply_record(&rec, &mut evals)?);
            if let Some(t1) = t1 {
                apply_ns += t1.elapsed().as_nanos() as u64;
            }
        }
        let swap_start = Instant::now();
        self.publish();
        if let Some(mut t) = trace {
            t.push_span_ns("ingest/wal_append", 0, wal_ns, TraceCosts::default());
            t.push_span_ns(
                "ingest/apply",
                0,
                apply_ns,
                TraceCosts {
                    distance_evals: evals,
                    ..TraceCosts::default()
                },
            );
            t.push_span("ingest/epoch_swap", swap_start, TraceCosts::default());
            t.set_detail(
                Json::obj()
                    .with("op", "add_batch")
                    .with("docs", ids.len() as u64),
            );
            traces.record(t);
        }
        Ok(ids)
    }

    /// Deletes a live document. Its units stop surfacing immediately (base
    /// units via tombstone, delta units physically); the id is never
    /// reused.
    pub fn delete(&mut self, id: u32) -> Result<(), IngestError> {
        if !self.is_live(id) {
            return Err(IngestError::UnknownDoc(id));
        }
        let rec = WalRecord::Delete { doc: id };
        self.write_traced("delete", &rec)?;
        Ok(())
    }

    /// Replaces a live document's text, keeping its id. The old version's
    /// units stop surfacing immediately; the new text is segmented and
    /// assigned like an add.
    pub fn update(&mut self, id: u32, text: &str) -> Result<(), IngestError> {
        if !self.is_live(id) {
            return Err(IngestError::UnknownDoc(id));
        }
        let rec = WalRecord::Update {
            doc: id,
            text: text.to_string(),
        };
        self.write_traced("update", &rec)?;
        Ok(())
    }

    /// The shared single-record write path: append, apply, publish —
    /// recording an ingest-kind trace (spans `ingest/wal_append`,
    /// `ingest/apply` with its nearest-centroid distance evaluations, and
    /// `ingest/epoch_swap`) into the global [`TraceStore`] when tracing is
    /// enabled. Returns the affected document id.
    fn write_traced(&mut self, op: &str, rec: &WalRecord) -> Result<u32, IngestError> {
        let traces = TraceStore::global();
        let mut trace = traces.is_enabled().then(|| Trace::begin("ingest", None));
        let wal_start = Instant::now();
        self.append_durable(rec)?;
        if let Some(t) = trace.as_mut() {
            t.push_span("ingest/wal_append", wal_start, TraceCosts::default());
        }
        let apply_start = Instant::now();
        let mut evals = 0u64;
        let id = self.apply_record(rec, &mut evals)?;
        if let Some(t) = trace.as_mut() {
            t.push_span(
                "ingest/apply",
                apply_start,
                TraceCosts {
                    distance_evals: evals,
                    ..TraceCosts::default()
                },
            );
        }
        let swap_start = Instant::now();
        self.publish();
        if let Some(mut t) = trace {
            t.push_span("ingest/epoch_swap", swap_start, TraceCosts::default());
            t.set_detail(Json::obj().with("op", op).with("doc", id as u64));
            traces.record(t);
        }
        Ok(id)
    }

    fn append_durable(&mut self, rec: &WalRecord) -> Result<(), IngestError> {
        let obs = forum_obs::Registry::global();
        let timer = obs.is_enabled().then(Instant::now);
        self.wal.append(rec)?;
        if let Some(t) = timer {
            obs.record_duration("ingest/wal_append_ns", t.elapsed());
        }
        Ok(())
    }

    /// Applies one (already durable) record to the in-memory delta.
    /// Returns the affected document id. Shared by the write path and WAL
    /// replay — replay is re-application of the same deterministic
    /// function. `distance_evals` accumulates the number of centroid
    /// distance evaluations the record's segment assignment performed.
    fn apply_record(
        &mut self,
        rec: &WalRecord,
        distance_evals: &mut u64,
    ) -> Result<u32, IngestError> {
        let obs = forum_obs::Registry::global();
        match rec {
            WalRecord::Add { text } => {
                let id = self.delta.next_id;
                self.delta.next_id += 1;
                let dd = self.segment_and_assign(id, text, distance_evals);
                self.insert_delta_doc(dd);
                obs.incr("ingest/added", 1);
                Ok(id)
            }
            WalRecord::Delete { doc } => {
                let id = *doc;
                if !self.is_live(id) {
                    return Err(IngestError::UnknownDoc(id));
                }
                self.remove_delta_doc(id);
                self.delta.superseded.remove(&id);
                self.delta.deleted.insert(id);
                obs.incr("ingest/deleted", 1);
                Ok(id)
            }
            WalRecord::Update { doc, text } => {
                let id = *doc;
                if !self.is_live(id) {
                    return Err(IngestError::UnknownDoc(id));
                }
                self.remove_delta_doc(id);
                if id < self.base.len() as u32 {
                    self.delta.superseded.insert(id);
                }
                let dd = self.segment_and_assign(id, text, distance_evals);
                self.insert_delta_doc(dd);
                obs.incr("ingest/updated", 1);
                Ok(id)
            }
        }
    }

    /// Inserts `dd` into the sorted delta doc list and appends its units to
    /// the per-cluster delta indices.
    fn insert_delta_doc(&mut self, dd: DeltaDoc) {
        for (seg, terms) in dd.refined.iter().zip(&dd.terms) {
            self.delta.deltas[seg.cluster].push_unit(dd.id, terms);
        }
        let pos = self
            .delta
            .docs
            .binary_search_by_key(&dd.id, |d| d.id)
            .unwrap_err();
        self.delta.docs.insert(pos, dd);
    }

    /// Physically removes a pending document (if `id` names one) and its
    /// delta units.
    fn remove_delta_doc(&mut self, id: u32) {
        if let Ok(pos) = self.delta.docs.binary_search_by_key(&id, |d| d.id) {
            let dd = self.delta.docs.remove(pos);
            for seg in &dd.refined {
                self.delta.deltas[seg.cluster].remove_owner(id);
            }
        }
    }

    /// Parses, segments, and cluster-assigns one post against the frozen
    /// model — the same steps `IntentPipeline::add_post` runs, with the
    /// snapshot's parse convention (`parse_clean`, what a reload would
    /// produce) and the optional `assign_eps` noise gate.
    ///
    /// Drift observability: every incoming segment bumps
    /// `drift/segments_in` and records its nearest-centroid distance into
    /// the `drift/centroid_dist_micros` histogram (Euclidean distance in
    /// micro-units) — a drifting intention distribution shows up as that
    /// histogram's mass migrating outward long before the noise rate moves.
    /// `distance_evals` accumulates one count per centroid compared.
    fn segment_and_assign(&self, id: u32, text: &str, distance_evals: &mut u64) -> DeltaDoc {
        let doc = Document::parse_clean(DocId(id), text);
        let cmdoc = forum_segment::CmDoc::new(doc);
        let raw_seg = if cmdoc.num_units() == 0 {
            Segmentation::single(1)
        } else {
            self.cfg.strategy.run(&cmdoc)
        };
        let whole = cmdoc.whole();
        let centroids = &self.centroid_matrix;
        let obs = forum_obs::Registry::global();

        let mut per_cluster: HashMap<usize, Vec<(usize, usize)>> = HashMap::new();
        if cmdoc.num_units() > 0 {
            for s in raw_seg.segments() {
                let mut f = forum_cluster::segment_features(&cmdoc.segment_tables(s), &whole);
                if self.cfg.type1_weights_only {
                    f.truncate(forum_nlp::cm::NUM_FEATURES);
                }
                // One full nearest-centroid scan serves both the assignment
                // and the drift histogram; the eps gate below replicates
                // `assign_nearest_matrix` exactly (NaN or negative eps
                // assigns nothing; distances compare squared).
                let nearest = forum_cluster::nearest_centroid_matrix(&f, centroids);
                *distance_evals += centroids.len() as u64;
                obs.incr("drift/segments_in", 1);
                if let Some((_, d)) = nearest {
                    obs.record("drift/centroid_dist_micros", (d.sqrt() * 1e6) as u64);
                }
                let assigned = match self.ingest_cfg.assign_eps {
                    None => nearest.map(|(i, _)| i),
                    Some(eps) if eps.is_nan() || eps < 0.0 => None,
                    Some(eps) => nearest.filter(|&(_, d)| d <= eps * eps).map(|(i, _)| i),
                };
                let cluster = match (assigned, self.ingest_cfg.assign_eps) {
                    (Some(c), _) => c,
                    (None, None) => unreachable!("at least one finite centroid"),
                    (None, Some(_)) => {
                        obs.incr("ingest/noise_segments", 1);
                        continue;
                    }
                };
                per_cluster
                    .entry(cluster)
                    .or_default()
                    .push((s.first, s.end));
            }
        }

        let mut refined: Vec<RefinedSegment> = per_cluster
            .into_iter()
            .map(|(cluster, mut ranges)| {
                ranges.sort_unstable();
                RefinedSegment { cluster, ranges }
            })
            .collect();
        refined.sort_unstable_by_key(|s| s.ranges[0]);
        let terms: Vec<Vec<String>> = refined
            .iter()
            .map(|seg| {
                let mut t = Vec::new();
                for &(a, b) in &seg.ranges {
                    t.extend(cmdoc.doc.terms_in_sentences(a, b));
                }
                t
            })
            .collect();
        DeltaDoc {
            id,
            doc: cmdoc,
            raw_seg,
            refined,
            terms,
        }
    }

    /// Publishes the current base + delta as a new serving epoch.
    fn publish(&mut self) {
        self.epoch_counter += 1;
        let epoch = Arc::new(LiveEpoch::new(
            self.base.clone(),
            self.delta.clone(),
            self.epoch_counter,
        ));
        forum_obs::Registry::global()
            .gauge("ingest/pending_units")
            .set(self.delta.num_units() as i64);
        self.handle.publish(epoch);
    }

    /// Folds the delta into the base: rebuilds every cluster index over the
    /// merged document set (per-cluster TF/IDF statistics are recomputed,
    /// ending the deferred-IDF regime for post-compaction vocabulary),
    /// saves a fresh snapshot atomically, truncates the WAL, and publishes
    /// the compacted epoch.
    ///
    /// Deleted ids keep an empty placeholder document so ids stay stable
    /// (document id == collection index, everywhere).
    ///
    /// Index construction walks documents in id order through the same
    /// `IndexBuilder` the offline build uses, so the compacted state is
    /// bit-identical to an offline assembly of the same documents with the
    /// same cluster assignments.
    pub fn compact(&mut self) -> Result<(), IngestError> {
        if self.delta.is_empty() {
            return Ok(());
        }
        let obs = forum_obs::Registry::global();
        let started = Instant::now();
        let pending_docs = self.delta.docs.len();
        let base = &self.base;
        let n = self.delta.next_id as usize;
        let base_len = base.len();

        let mut docs = Vec::with_capacity(n);
        let mut raw_segmentations = Vec::with_capacity(n);
        let mut doc_segments: Vec<Vec<RefinedSegment>> = Vec::with_capacity(n);
        for id in 0..n as u32 {
            if let Some(dd) = self.delta.doc(id) {
                docs.push(dd.doc.clone());
                raw_segmentations.push(dd.raw_seg.clone());
                doc_segments.push(dd.refined.clone());
            } else if (id as usize) < base_len && !self.delta.deleted.contains(&id) {
                docs.push(base.collection.docs[id as usize].clone());
                raw_segmentations.push(base.pipeline.raw_segmentations[id as usize].clone());
                doc_segments.push(base.pipeline.doc_segments[id as usize].clone());
            } else {
                // Deleted: an empty placeholder keeps the id space dense.
                docs.push(forum_segment::CmDoc::new(Document::parse_clean(
                    DocId(id),
                    "",
                )));
                raw_segmentations.push(Segmentation::single(1));
                doc_segments.push(Vec::new());
            }
        }
        let collection = PostCollection { docs };

        let num_clusters = base.pipeline.num_clusters();
        let mut builders: Vec<forum_index::IndexBuilder> = (0..num_clusters)
            .map(|_| forum_index::IndexBuilder::new())
            .collect();
        for (d, segs) in doc_segments.iter().enumerate() {
            for seg in segs {
                let terms = segment_terms(&collection, d, seg);
                builders[seg.cluster].add_unit(d as u32, &terms);
            }
        }
        let clusters = builders
            .into_iter()
            .map(|b| intentmatch::pipeline::ClusterIndex { index: b.build() })
            .collect();

        let pipeline = IntentPipeline {
            raw_segmentations,
            doc_segments,
            clusters,
            centroids: base.pipeline.centroids.clone(),
            num_noise: base.pipeline.num_noise,
            timings: Default::default(),
            weighted_combination: base.pipeline.weighted_combination,
            weighting: base.pipeline.weighting,
        };

        // Snapshot first (atomic replace), then reset the WAL to an empty
        // log tagged with the new snapshot. A crash between the two leaves
        // the old log tagged with the *old* snapshot — the next open sees
        // the tag mismatch and discards it instead of replaying records
        // that are already folded into the snapshot.
        store::save(&self.store_path, &collection, &pipeline)?;
        let tag = snapshot_tag(&self.store_path)?;
        self.wal.reset(tag)?;

        self.base = Arc::new(BaseState {
            collection,
            pipeline,
        });
        self.centroid_matrix = PointMatrix::from_rows(&self.base.pipeline.centroids);
        self.delta = DeltaState::new(num_clusters, n as u32);
        let elapsed = started.elapsed();
        obs.record_duration("ingest/compact_ns", elapsed);
        forum_obs::EventLog::global().emit(
            "compaction",
            forum_obs::json::Json::obj()
                .with(
                    "duration_ms",
                    elapsed.as_millis().min(u64::MAX as u128) as u64,
                )
                .with("pending_docs", pending_docs as u64)
                .with("docs", n as u64),
        );
        self.publish();
        Ok(())
    }
}
