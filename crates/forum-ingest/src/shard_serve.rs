//! The shard-parallel serving application.
//!
//! [`ShardServeApp`] wraps [`ServeApp`] and takes over the routes that
//! change under sharding, delegating everything else:
//!
//! * `POST /query` — scatter/gather across the shard set: the query's
//!   consulted clusters are partitioned by [`forum_shard::ShardPlan`],
//!   each shard runs the *same* per-cluster scan the sequential path uses
//!   ([`LiveEpoch::scan_cluster_filtered`]), and results merge through the
//!   engine's single Algorithm 2 combination in consultation order — so
//!   the ranking is bit-identical for any shard count. Production guards
//!   ride along: `k` is clamped to a configured cap, `?threshold=T` drops
//!   results scoring below `T` after the merge, and `?board=B` threads a
//!   document filter into the postings scans themselves (filtered
//!   documents neither surface nor consume top-n slots).
//! * `GET /readyz` — per-shard readiness: `ready` when the base store and
//!   every shard are up, `degraded` while only some shards serve (status
//!   still `200` — degraded serves), `unready` (`503`) when the base is
//!   down or no shard is ready.
//! * `GET /metrics` — the inner exposition plus per-shard labeled
//!   families (`serve_shard_scans`, `serve_shard_postings_scanned`,
//!   `serve_shard_scan_ns`, `serve_shard_ready`).
//!
//! `POST /shutdown` stays with the inner app; drain semantics come from
//! the server: [`forum_shard::PoolServer`] closes its admission queue on
//! stop and serves everything already admitted before `run` returns.

use crate::live::{EpochHandle, LiveEpoch};
use crate::serve::{default_objectives, ServeApp, ServeHealth};
use forum_index::{DocFilter, ScanCosts, ScoreScratch};
use forum_obs::dashboard::StatusRow;
use forum_obs::json::Json;
use forum_obs::serve::{HealthSource, Request, Response, Stopper};
use forum_obs::trace::TRACE_HEADER;
use forum_obs::{prometheus, Objective, Registry, Trace, TraceCosts, TraceStore};
use forum_shard::{scatter_gather, ClusterHits, ShardPlan, ShardSet, ShardStats};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, PoisonError, RwLock};
use std::time::{Duration, Instant};

/// Default cap on the per-request `k` (the production guard against a
/// single request demanding an unbounded merge).
pub const DEFAULT_MAX_K: usize = 100;

/// Configuration for the sharded serving tier.
pub struct ShardServeConfig {
    /// Number of shards (min 1).
    pub shards: usize,
    /// Upper bound on the per-request `k`; larger requests are clamped.
    pub max_k: usize,
    /// Optional document → board map backing the `?board=` filter.
    pub boards: Option<HashMap<u32, String>>,
}

impl Default for ShardServeConfig {
    fn default() -> ShardServeConfig {
        ShardServeConfig {
            shards: 1,
            max_k: DEFAULT_MAX_K,
            boards: None,
        }
    }
}

/// The sharded serving application. Build with [`ShardServeApp::new`],
/// serve with [`forum_shard::PoolServer`] (or any server that dispatches
/// to [`ShardServeApp::handle`]).
pub struct ShardServeApp {
    inner: Arc<ServeApp>,
    handle: Arc<EpochHandle>,
    health: ServeHealth,
    plan: ShardPlan,
    stats: ShardStats,
    /// The ownership view for the epoch it was built against; rebuilt
    /// (cheaply — it holds routing only, no index data) when the serving
    /// epoch moves.
    view: RwLock<(u64, Arc<ShardSet>)>,
    max_k: usize,
    boards: Option<HashMap<u32, String>>,
}

impl ShardServeApp {
    /// Builds the sharded app over the serving handle and WAL path. All
    /// shards start ready: the shard view is routing state, warm the
    /// moment it is built.
    pub fn new(
        handle: Arc<EpochHandle>,
        wal_path: PathBuf,
        config: ShardServeConfig,
    ) -> Arc<ShardServeApp> {
        ShardServeApp::with_objectives(handle, wal_path, config, default_objectives(None))
    }

    /// [`ShardServeApp::new`] with an explicit SLO objective set (from
    /// `--slo`), passed through to the inner [`ServeApp`].
    pub fn with_objectives(
        handle: Arc<EpochHandle>,
        wal_path: PathBuf,
        config: ShardServeConfig,
        objectives: Vec<Objective>,
    ) -> Arc<ShardServeApp> {
        let inner = ServeApp::with_objectives(handle.clone(), wal_path.clone(), objectives);
        let plan = ShardPlan::new(config.shards);
        let epoch = handle.current();
        let set = Arc::new(ShardSet::build(plan, epoch.base.pipeline.clusters.len()));
        let stats = ShardStats::new(plan.shards());
        stats.mark_all_ready();
        Arc::new(ShardServeApp {
            inner,
            health: ServeHealth::new(handle.clone(), wal_path),
            handle,
            plan,
            stats,
            view: RwLock::new((epoch.epoch, set)),
            max_k: config.max_k.max(1),
            boards: config.boards,
        })
    }

    /// Installs the server's stopper so `POST /shutdown` works.
    pub fn set_stopper(&self, stopper: Stopper) {
        self.inner.set_stopper(stopper);
    }

    /// Starts the inner app's background sampler (see
    /// [`ServeApp::start_sampler`]); call after
    /// [`ShardServeApp::set_stopper`].
    pub fn start_sampler(&self, period: Duration) {
        self.inner.start_sampler(period);
    }

    /// The inner (sequential) serving app: time-series, SLOs, and alert
    /// sinks hang off it.
    pub fn inner(&self) -> &Arc<ServeApp> {
        &self.inner
    }

    /// Per-shard readiness and cost counters (tests flip readiness here to
    /// exercise the degraded `/readyz` states).
    pub fn stats(&self) -> &ShardStats {
        &self.stats
    }

    /// The shard set for `epoch`, rebuilding the cached view if the
    /// serving epoch has moved since it was built.
    fn shard_set(&self, epoch: &LiveEpoch) -> Arc<ShardSet> {
        {
            let view = self.view.read().unwrap_or_else(PoisonError::into_inner);
            if view.0 == epoch.epoch {
                return view.1.clone();
            }
        }
        let mut view = self.view.write().unwrap_or_else(PoisonError::into_inner);
        if view.0 != epoch.epoch {
            *view = (
                epoch.epoch,
                Arc::new(ShardSet::build(
                    self.plan,
                    epoch.base.pipeline.clusters.len(),
                )),
            );
        }
        view.1.clone()
    }

    /// Dispatches one request: the shard-aware routes here, everything
    /// else through the inner app (which does its own request counting).
    pub fn handle(&self, req: &Request) -> Response {
        match req.path.as_str() {
            "/query" => self.counted(req, |req| {
                if req.method != "POST" && req.method != "GET" {
                    return Response::text(405, "method not allowed\n");
                }
                self.query(req)
            }),
            "/readyz" => self.counted(req, |req| {
                if req.method != "GET" {
                    return Response::text(405, "method not allowed\n");
                }
                self.readyz()
            }),
            "/metrics" => {
                let mut response = self.inner.handle(req);
                if response.status == 200 {
                    let mut extra = String::new();
                    self.append_shard_families(&mut extra);
                    response.body.extend_from_slice(extra.as_bytes());
                }
                response
            }
            "/dashboard" => self.counted(req, |req| {
                if req.method != "GET" {
                    return Response::text(405, "method not allowed\n");
                }
                self.inner
                    .dashboard_response(self.shard_status_rows(), Vec::new())
            }),
            _ => self.inner.handle(req),
        }
    }

    /// Wraps a locally-owned route with the same request accounting the
    /// inner app applies to the routes it owns.
    fn counted(&self, req: &Request, f: impl FnOnce(&Request) -> Response) -> Response {
        let obs = Registry::global();
        let started = Instant::now();
        let response = f(req);
        obs.incr("serve/http_requests", 1);
        obs.record_duration("serve/http_request_ns", started.elapsed());
        response
    }

    /// Per-shard dashboard status rows: readiness plus the scan cost
    /// counters the scatter/gather path accumulates.
    fn shard_status_rows(&self) -> Vec<StatusRow> {
        (0..self.stats.shards())
            .map(|i| {
                let c = self.stats.counters(i);
                let ready = self.stats.is_ready(i);
                StatusRow {
                    label: format!("shard {i}"),
                    value: format!(
                        "{} · {} scans · {} postings · {:.1} ms scan time",
                        if ready { "ready" } else { "down" },
                        c.scans,
                        c.postings_scanned,
                        c.scan_ns as f64 / 1e6,
                    ),
                    class: if ready { "ok" } else { "firing" },
                }
            })
            .collect()
    }

    /// Appends the per-shard labeled families to a `/metrics` exposition.
    fn append_shard_families(&self, out: &mut String) {
        let shards = self.stats.shards();
        let collect = |f: &dyn Fn(usize) -> f64| -> Vec<(String, f64)> {
            (0..shards).map(|i| (i.to_string(), f(i))).collect()
        };
        prometheus::append_labeled_family(
            out,
            "serve/shard_scans",
            "Cluster scans routed to each shard.",
            "counter",
            "shard",
            &collect(&|i| self.stats.counters(i).scans as f64),
        );
        prometheus::append_labeled_family(
            out,
            "serve/shard_postings_scanned",
            "Postings walked by each shard's scans.",
            "counter",
            "shard",
            &collect(&|i| self.stats.counters(i).postings_scanned as f64),
        );
        prometheus::append_labeled_family(
            out,
            "serve/shard_scan_ns",
            "Cumulative scan wall time per shard, in nanoseconds.",
            "counter",
            "shard",
            &collect(&|i| self.stats.counters(i).scan_ns as f64),
        );
        prometheus::append_labeled_family(
            out,
            "serve/shard_ready",
            "Per-shard readiness (1 = serving).",
            "gauge",
            "shard",
            &collect(&|i| if self.stats.is_ready(i) { 1.0 } else { 0.0 }),
        );
    }

    fn readyz(&self) -> Response {
        let report = self.health.health();
        let readiness = self.stats.readiness();
        let ready_shards = readiness.iter().filter(|r| **r).count();
        let state = if !report.ready || ready_shards == 0 {
            "unready"
        } else if ready_shards == readiness.len() {
            "ready"
        } else {
            // Some shards serve: stay in rotation, flag the damage.
            "degraded"
        };
        let status = if state == "unready" { 503 } else { 200 };
        let shards = Json::Arr(
            readiness
                .iter()
                .enumerate()
                .map(|(i, &ready)| {
                    Json::obj()
                        .with("shard", i as u64)
                        .with("ready", ready)
                        .with("clusters_scanned", self.stats.counters(i).scans)
                })
                .collect(),
        );
        let body = Json::obj()
            .with("ready", state == "ready")
            .with("state", state)
            .with("shards", shards)
            .with("detail", report.detail);
        Response::json(status, &body)
    }

    fn query(&self, req: &Request) -> Response {
        let body: Option<Json> = match req.body_str().map(str::trim) {
            None => return Response::bad_request("body is not UTF-8"),
            Some("") => None,
            Some(text) => match Json::parse(text) {
                Ok(v) => Some(v),
                Err(e) => return Response::bad_request(format!("bad JSON body: {e}")),
            },
        };
        let doc = match param_u64(req, &body, "doc") {
            Ok(Some(d)) => d,
            Ok(None) => return Response::bad_request("missing doc (query param or JSON body)"),
            Err(resp) => return resp,
        };
        let k = match param_u64(req, &body, "k") {
            // The per-request cap: a request cannot demand an unbounded
            // merge, it gets the configured ceiling instead.
            Ok(v) => (v.unwrap_or(5) as usize).min(self.max_k).max(1),
            Err(resp) => return resp,
        };
        let threshold = match param_f64(req, &body, "threshold") {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        let board = req.query_param("board").map(str::to_string).or_else(|| {
            body.as_ref()
                .and_then(|b| b.get("board"))
                .and_then(Json::as_str)
                .map(str::to_string)
        });
        let want_explain = req.query_param("explain").is_some_and(|v| v != "0")
            || body
                .as_ref()
                .and_then(|b| b.get("explain"))
                .is_some_and(|v| *v == Json::Bool(true));
        if want_explain {
            // EXPLAIN is inherently a single-engine affair (it narrates the
            // sequential combination); the inner app owns it unchanged.
            return self.inner.handle(req);
        }

        let epoch = self.handle.current();
        if doc >= epoch.num_docs() as u64 {
            return Response::bad_request(format!(
                "doc {doc} out of range (collection has {})",
                epoch.num_docs()
            ));
        }
        let board_filter = match (&self.boards, &board) {
            (Some(map), Some(b)) => {
                let b = b.clone();
                Some(move |owner: u32| map.get(&owner).is_some_and(|ob| *ob == b))
            }
            (None, Some(_)) => {
                return Response::bad_request("board filtering requires a boards file (--boards)")
            }
            _ => None,
        };
        let filter: Option<DocFilter> = board_filter
            .as_ref()
            .map(|f| f as &(dyn Fn(u32) -> bool + Sync));

        let set = self.shard_set(&epoch);
        let obs = Registry::global();
        let traces = TraceStore::global();
        let mut qtrace = traces
            .is_enabled()
            .then(|| Trace::begin("query", req.header(TRACE_HEADER)));
        let started = Instant::now();
        obs.incr("ingest/live_queries", 1);

        let groups = epoch.query_groups(doc as u32).unwrap_or_default();
        let route: Vec<usize> = groups.iter().map(|(cluster, _)| *cluster).collect();
        let terms_of: HashMap<usize, &Vec<String>> = groups
            .iter()
            .map(|(cluster, terms)| (*cluster, terms))
            .collect();
        let n = 2 * k;
        let timing = qtrace.is_some();
        let epoch_ref = &*epoch;
        let outcome = scatter_gather(
            &set,
            &self.stats,
            &route,
            k,
            || (ScoreScratch::new(), ScanCosts::default()),
            |(scratch, delta_costs), cluster| {
                let terms = terms_of.get(&cluster)?;
                let scan = epoch_ref.scan_cluster_filtered(
                    cluster,
                    terms,
                    doc as u32,
                    n,
                    filter,
                    timing,
                    scratch,
                    delta_costs,
                )?;
                let base = scratch.costs.take();
                let delta = delta_costs.take();
                Some(ClusterHits {
                    weight: scan.weight,
                    hits: scan.hits,
                    costs: TraceCosts {
                        clusters_routed: 1,
                        postings_scanned: base.postings_scanned + delta.postings_scanned,
                        candidates_pruned: base.candidates_pruned + delta.candidates_pruned,
                        heap_displacements: base.heap_displacements + delta.heap_displacements,
                        early_exits: base.early_exits + delta.early_exits,
                        distance_evals: 0,
                    },
                    scan_ns: scan.base_ns + scan.delta_ns,
                })
            },
            qtrace.as_mut(),
        );
        let mut ranked = match outcome {
            Ok(out) => out.ranked,
            Err(e) => return Response::text(500, format!("query failed: {e}\n")),
        };
        if let Some(threshold) = threshold {
            // Post-merge guard: scores are already exact, so this is a
            // pure filter — it can only shorten the list, never reorder.
            ranked.retain(|&(_, score)| score >= threshold);
        }
        obs.record_duration("serve/online_query_ns", started.elapsed());

        let trace_id = qtrace.map(|mut t| {
            t.set_detail(
                Json::obj()
                    .with("path", "shard")
                    .with("doc", doc)
                    .with("k", k as u64)
                    .with("shards", set.shards() as u64)
                    .with("epoch", epoch.epoch),
            );
            t.finish();
            let id = t.id().to_string();
            traces.record(t);
            id
        });

        let mut out = Json::obj()
            .with("query", doc)
            .with("k", k as u64)
            .with("epoch", epoch.epoch)
            .with("shards", set.shards() as u64)
            .with(
                "results",
                Json::Arr(
                    ranked
                        .iter()
                        .enumerate()
                        .map(|(i, &(d, score))| {
                            Json::obj()
                                .with("rank", (i + 1) as u64)
                                .with("doc", d)
                                .with("score", score)
                        })
                        .collect(),
                ),
            );
        if let Some(id) = trace_id {
            out = out.with("trace", id);
        }
        Response::json(200, &out)
    }
}

/// One `u64` parameter from the query string or JSON body (query wins).
fn param_u64(req: &Request, body: &Option<Json>, key: &str) -> Result<Option<u64>, Response> {
    if let Some(v) = req.query_param(key) {
        return v
            .parse::<u64>()
            .map(Some)
            .map_err(|_| Response::bad_request(format!("{key} must be a number")));
    }
    match body.as_ref().and_then(|b| b.get(key)) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| Response::bad_request(format!("{key} must be a number"))),
    }
}

/// One finite `f64` parameter from the query string or JSON body.
fn param_f64(req: &Request, body: &Option<Json>, key: &str) -> Result<Option<f64>, Response> {
    let parsed = if let Some(v) = req.query_param(key) {
        v.parse::<f64>().ok()
    } else {
        match body.as_ref().and_then(|b| b.get(key)) {
            None => return Ok(None),
            Some(v) => v.as_f64(),
        }
    };
    match parsed {
        Some(v) if v.is_finite() => Ok(Some(v)),
        _ => Err(Response::bad_request(format!(
            "{key} must be a finite number"
        ))),
    }
}

/// Parses a boards file: one `doc_id board_name` pair per line, `#`
/// comments and blank lines ignored.
pub fn parse_boards(text: &str) -> Result<HashMap<u32, String>, String> {
    let mut map = HashMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(id), Some(board), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!("line {}: expected `doc_id board`", lineno + 1));
        };
        let id: u32 = id
            .parse()
            .map_err(|_| format!("line {}: bad doc id {id:?}", lineno + 1))?;
        map.insert(id, board.to_string());
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boards_file_parses_and_rejects_garbage() {
        let map = parse_boards("0 hardware\n1 software\n\n# comment\n2 hardware\n").unwrap();
        assert_eq!(map.len(), 3);
        assert_eq!(map.get(&0).map(String::as_str), Some("hardware"));
        assert_eq!(map.get(&1).map(String::as_str), Some("software"));
        assert!(parse_boards("0 hardware extra\n").is_err());
        assert!(parse_boards("zebra hardware\n").is_err());
        assert!(parse_boards("3\n").is_err());
    }
}
