//! Write-ahead log for live post writes.
//!
//! The atomic snapshot of `intentmatch::store` makes the *compacted* state
//! durable; the WAL makes the writes *between* compactions durable. Every
//! [`Wal::append`] encodes one [`WalRecord`], frames it, and fsyncs before
//! the write is applied in memory, so a crash loses at most the record
//! whose append was interrupted. On open the log is replayed: a torn or
//! corrupted tail is detected by the length/checksum framing and cleanly
//! truncated away (the valid prefix is recovered); structural corruption —
//! a record whose checksum passes but whose payload does not decode —
//! returns an error instead of panicking. The snapshot file is never
//! touched by recovery.
//!
//! ## On-disk format
//!
//! ```text
//! header:  "WAL1" magic (4) · u32 LE format version (4) · u64 LE tag (8)
//! record:  u32 LE payload length · u64 LE FNV-1a-64 of payload · payload
//! payload: forum_index::codec — u32 opcode, then the record's fields
//! ```
//!
//! ## The snapshot tag
//!
//! The header's `tag` binds the log to the snapshot its records apply on
//! top of (the caller passes a fingerprint of the snapshot bytes). A
//! compaction persists a fresh snapshot and then [`Wal::reset`]s the log —
//! atomically, via temp-file + rename — to an empty log tagged with the
//! *new* snapshot. If the process dies between those two steps, the next
//! [`Wal::open`] sees a tag that doesn't match the snapshot on disk,
//! concludes the log's records are already folded into that snapshot, and
//! discards them instead of replaying them twice.

use forum_index::codec::{DecodeError, Reader, Writer};
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"WAL1";
const VERSION: u32 = 1;
const HEADER_LEN: u64 = 16;
/// Per-record framing overhead: u32 length + u64 checksum.
const FRAME_LEN: usize = 12;

const OP_ADD: u32 = 1;
const OP_DELETE: u32 = 2;
const OP_UPDATE: u32 = 3;

/// One logged write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// Append a new post with the given raw text.
    Add { text: String },
    /// Delete the post with this document id.
    Delete { doc: u32 },
    /// Replace the text of the post with this document id.
    Update { doc: u32, text: String },
}

/// Errors from opening or appending to a WAL.
#[derive(Debug)]
pub enum WalError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The log is structurally corrupt (bad header, or a checksummed
    /// record whose payload does not decode) — not recoverable as a
    /// truncated tail.
    Corrupt {
        /// What failed to decode.
        context: &'static str,
        /// Byte offset of the offending record in the file.
        offset: u64,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "WAL I/O error: {e}"),
            WalError::Corrupt { context, offset } => {
                write!(f, "WAL corrupt at byte {offset}: {context}")
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// FNV-1a 64-bit — tiny, dependency-free, and plenty to detect torn or
/// bit-flipped records (this is corruption detection, not cryptography).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let mut w = Writer::new();
    match rec {
        WalRecord::Add { text } => {
            w.u32(OP_ADD);
            w.string(text);
        }
        WalRecord::Delete { doc } => {
            w.u32(OP_DELETE);
            w.u32(*doc);
        }
        WalRecord::Update { doc, text } => {
            w.u32(OP_UPDATE);
            w.u32(*doc);
            w.string(text);
        }
    }
    w.into_bytes()
}

fn decode_record(payload: &[u8]) -> Result<WalRecord, DecodeError> {
    let mut r = Reader::new(payload);
    let rec = match r.u32("record opcode")? {
        OP_ADD => WalRecord::Add {
            text: r.string("add text")?,
        },
        OP_DELETE => WalRecord::Delete {
            doc: r.u32("delete doc")?,
        },
        OP_UPDATE => WalRecord::Update {
            doc: r.u32("update doc")?,
            text: r.string("update text")?,
        },
        _ => {
            return Err(DecodeError {
                context: "unknown record opcode",
                offset: 0,
            })
        }
    };
    if !r.is_at_end() {
        return Err(DecodeError {
            context: "trailing bytes in record payload",
            offset: r.position(),
        });
    }
    Ok(rec)
}

fn header_bytes(tag: u64) -> [u8; HEADER_LEN as usize] {
    let mut h = [0u8; HEADER_LEN as usize];
    h[..4].copy_from_slice(MAGIC);
    h[4..8].copy_from_slice(&VERSION.to_le_bytes());
    h[8..16].copy_from_slice(&tag.to_le_bytes());
    h
}

/// What a read-only [`inspect`] found in a WAL file.
#[derive(Debug, Default)]
pub struct WalInspection {
    /// Whether the file exists (a lazily-created WAL may not).
    pub exists: bool,
    /// File size in bytes.
    pub bytes: u64,
    /// The snapshot tag stamped in the header, when the header parsed.
    pub header_tag: Option<u64>,
    /// Whether the header tag matches the expected snapshot fingerprint.
    /// A mismatch means the log predates the snapshot (crash between
    /// snapshot save and WAL reset) and would be discarded on open.
    pub tag_matches: bool,
    /// Checksummed, decodable records (append order).
    pub records: Vec<WalRecord>,
    /// Bytes past the last valid record — a torn append that `Wal::open`
    /// would truncate away.
    pub torn_tail_bytes: u64,
    /// Structural problems: bad magic/version, or a checksum-valid record
    /// that does not decode. Non-empty means the store needs an operator.
    pub problems: Vec<String>,
}

/// Read-only WAL audit for `intentmatch doctor`.
///
/// Unlike [`Wal::open`] — which *repairs* (truncates torn tails, replaces
/// stale-tagged logs) — this only reports: the file is never written, so
/// a doctor run leaves the store byte-identical.
pub fn inspect(path: &Path, expected_tag: u64) -> Result<WalInspection, std::io::Error> {
    let mut out = WalInspection::default();
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    out.exists = true;
    out.bytes = bytes.len() as u64;
    if bytes.len() < HEADER_LEN as usize {
        out.problems
            .push(format!("header truncated at {} bytes", bytes.len()));
        return Ok(out);
    }
    if &bytes[..4] != MAGIC {
        out.problems.push("bad magic".into());
        return Ok(out);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != VERSION {
        out.problems
            .push(format!("unsupported WAL version {version}"));
        return Ok(out);
    }
    let tag = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    out.header_tag = Some(tag);
    out.tag_matches = tag == expected_tag;

    let mut pos = HEADER_LEN as usize;
    while pos < bytes.len() {
        if pos + FRAME_LEN > bytes.len() {
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let checksum = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap());
        let Some(end) = pos.checked_add(FRAME_LEN).and_then(|s| s.checked_add(len)) else {
            break;
        };
        if end > bytes.len() {
            break;
        }
        let payload = &bytes[pos + FRAME_LEN..end];
        if fnv1a(payload) != checksum {
            break;
        }
        match decode_record(payload) {
            Ok(rec) => out.records.push(rec),
            Err(e) => {
                out.problems.push(format!(
                    "record at byte {pos} passes its checksum but does not \
                     decode: {}",
                    e.context
                ));
                return Ok(out);
            }
        }
        pos = end;
    }
    out.torn_tail_bytes = (bytes.len() - pos) as u64;
    Ok(out)
}

/// An append-only, checksummed write-ahead log bound to one snapshot.
///
/// The file is created lazily on the first [`Wal::append`], so read-only
/// paths (a `query` over a store with no pending writes) leave no log
/// behind.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    /// Open append handle; `None` until the file exists.
    file: Option<File>,
    /// Durable length of the file (header + valid records).
    len: u64,
    /// The snapshot fingerprint stamped in the header.
    tag: u64,
}

impl Wal {
    /// Opens (or prepares to create) the log at `path` and replays it.
    ///
    /// `tag` is the fingerprint of the snapshot the caller just loaded.
    /// Returns the recovered records in append order. Three recovery
    /// shapes:
    ///
    /// * header tag ≠ `tag` — the log predates the snapshot (a crash hit
    ///   the window between snapshot save and log reset during a
    ///   compaction); its records are already folded into the snapshot, so
    ///   the log is atomically replaced with an empty one and **no**
    ///   records are returned;
    /// * truncated or checksum-failing tail — a torn append; the tail is
    ///   cut off the file and the records before it are returned;
    /// * bad magic/version, or a checksum-valid record that does not
    ///   decode — [`WalError::Corrupt`].
    pub fn open(path: &Path, tag: u64) -> Result<(Wal, Vec<WalRecord>), WalError> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok((
                    Wal {
                        path: path.to_path_buf(),
                        file: None,
                        len: HEADER_LEN,
                        tag,
                    },
                    Vec::new(),
                ));
            }
            Err(e) => return Err(e.into()),
        };

        if bytes.len() < HEADER_LEN as usize {
            // A crash during the very first header write: recover to an
            // empty log.
            let mut wal = Wal {
                path: path.to_path_buf(),
                file: None,
                len: HEADER_LEN,
                tag,
            };
            wal.reset(tag)?;
            return Ok((wal, Vec::new()));
        }
        if &bytes[..4] != MAGIC {
            return Err(WalError::Corrupt {
                context: "bad magic",
                offset: 0,
            });
        }
        if u32::from_le_bytes(bytes[4..8].try_into().unwrap()) != VERSION {
            return Err(WalError::Corrupt {
                context: "unsupported WAL version",
                offset: 4,
            });
        }
        if u64::from_le_bytes(bytes[8..16].try_into().unwrap()) != tag {
            // Stale log from before the snapshot on disk: discard.
            forum_obs::EventLog::global().emit(
                "wal_discarded_stale",
                forum_obs::json::Json::obj()
                    .with("path", path.display().to_string())
                    .with("bytes", bytes.len() as u64),
            );
            let mut wal = Wal {
                path: path.to_path_buf(),
                file: None,
                len: HEADER_LEN,
                tag,
            };
            wal.reset(tag)?;
            return Ok((wal, Vec::new()));
        }

        let mut records = Vec::new();
        let mut pos = HEADER_LEN as usize;
        while pos < bytes.len() {
            // Frame too short, length overrunning the file, or checksum
            // mismatch: a torn append — keep the prefix, drop the tail.
            if pos + FRAME_LEN > bytes.len() {
                break;
            }
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            let checksum = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap());
            let Some(end) = pos.checked_add(FRAME_LEN).and_then(|s| s.checked_add(len)) else {
                break;
            };
            if end > bytes.len() {
                break;
            }
            let payload = &bytes[pos + FRAME_LEN..end];
            if fnv1a(payload) != checksum {
                break;
            }
            match decode_record(payload) {
                Ok(rec) => records.push(rec),
                Err(e) => {
                    // The checksum passed but the payload is nonsense:
                    // that is not a torn write, it is corruption (or a
                    // version skew) the operator must look at.
                    return Err(WalError::Corrupt {
                        context: e.context,
                        offset: pos as u64,
                    });
                }
            }
            pos = end;
        }

        let valid_len = pos as u64;
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        if valid_len < bytes.len() as u64 {
            file.set_len(valid_len)?;
            file.sync_all()?;
            forum_obs::EventLog::global().emit(
                "wal_truncated",
                forum_obs::json::Json::obj()
                    .with("path", path.display().to_string())
                    .with("dropped_bytes", bytes.len() as u64 - valid_len)
                    .with("kept_records", records.len() as u64),
            );
        }
        Ok((
            Wal {
                path: path.to_path_buf(),
                file: Some(file),
                len: valid_len,
                tag,
            },
            records,
        ))
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether the log holds any records past its header.
    pub fn has_records(&self) -> bool {
        self.len > HEADER_LEN
    }

    /// Creates the file and writes the header if it does not exist yet.
    fn ensure_file(&mut self) -> Result<&mut File, WalError> {
        if self.file.is_none() {
            let mut f = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(&self.path)?;
            f.write_all(&header_bytes(self.tag))?;
            f.sync_all()?;
            self.len = HEADER_LEN;
            self.file = Some(f);
        }
        Ok(self.file.as_mut().expect("just ensured"))
    }

    /// Appends one record and fsyncs it. On return the record is durable;
    /// only then may the caller apply it in memory.
    pub fn append(&mut self, rec: &WalRecord) -> Result<(), WalError> {
        let payload = encode_record(rec);
        let mut frame = Vec::with_capacity(FRAME_LEN + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        let len = self.len;
        let file = self.ensure_file()?;
        use std::io::Seek as _;
        file.seek(std::io::SeekFrom::Start(len))?;
        file.write_all(&frame)?;
        file.sync_data()?;
        self.len = len + frame.len() as u64;
        forum_obs::Registry::global().incr("ingest/wal_bytes", frame.len() as u64);
        Ok(())
    }

    /// Atomically replaces the log with an empty one bound to `tag` —
    /// called after a compaction has durably snapshotted everything the
    /// log held. Temp-file + rename, so a crash leaves either the old log
    /// (whose now-stale tag makes the next open discard it) or the new
    /// empty one.
    pub fn reset(&mut self, tag: u64) -> Result<(), WalError> {
        let mut tmp_name = self.path.as_os_str().to_owned();
        tmp_name.push(".tmp");
        let tmp = PathBuf::from(tmp_name);
        let write = || -> std::io::Result<File> {
            let mut f = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)?;
            f.write_all(&header_bytes(tag))?;
            f.sync_all()?;
            std::fs::rename(&tmp, &self.path)?;
            Ok(f)
        };
        let f = match write() {
            Ok(f) => f,
            Err(e) => {
                std::fs::remove_file(&tmp).ok();
                return Err(e.into());
            }
        };
        if let Some(dir) = self.path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = File::open(dir) {
                d.sync_all().ok();
            }
        }
        self.file = Some(f);
        self.len = HEADER_LEN;
        self.tag = tag;
        forum_obs::EventLog::global().emit(
            "wal_reset",
            forum_obs::json::Json::obj().with("path", self.path.display().to_string()),
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TAG: u64 = 0xfeed_beef;

    fn temp_wal(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("forum-ingest-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Add {
                text: "my raid controller fails".into(),
            },
            WalRecord::Delete { doc: 3 },
            WalRecord::Update {
                doc: 7,
                text: "actually the wireless driver crashes".into(),
            },
            WalRecord::Add {
                text: String::new(),
            },
        ]
    }

    #[test]
    fn roundtrip_append_and_replay() {
        let path = temp_wal("roundtrip.wal");
        std::fs::remove_file(&path).ok();
        let (mut wal, replayed) = Wal::open(&path, TAG).unwrap();
        assert!(replayed.is_empty());
        assert!(!wal.has_records());
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        assert!(wal.has_records());
        drop(wal);
        let (wal, replayed) = Wal::open(&path, TAG).unwrap();
        assert_eq!(replayed, sample_records());
        assert!(wal.has_records());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_without_file_creates_nothing_until_append() {
        let path = temp_wal("lazy.wal");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = Wal::open(&path, TAG).unwrap();
        assert!(!path.exists(), "open must not create the file");
        wal.append(&WalRecord::Delete { doc: 0 }).unwrap();
        assert!(path.exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reset_truncates_to_header() {
        let path = temp_wal("reset.wal");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = Wal::open(&path, TAG).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        wal.reset(TAG + 1).unwrap();
        assert!(!wal.has_records());
        drop(wal);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), HEADER_LEN);
        let (_, replayed) = Wal::open(&path, TAG + 1).unwrap();
        assert!(replayed.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_works_after_reset() {
        let path = temp_wal("reset-append.wal");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = Wal::open(&path, TAG).unwrap();
        wal.append(&WalRecord::Delete { doc: 1 }).unwrap();
        wal.reset(TAG + 1).unwrap();
        wal.append(&WalRecord::Delete { doc: 2 }).unwrap();
        drop(wal);
        let (_, replayed) = Wal::open(&path, TAG + 1).unwrap();
        assert_eq!(replayed, vec![WalRecord::Delete { doc: 2 }]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stale_tag_discards_the_log() {
        // A crash between snapshot save and WAL reset leaves a log whose
        // records are already folded into the snapshot: opening with the
        // new snapshot's tag must discard them.
        let path = temp_wal("stale.wal");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = Wal::open(&path, TAG).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        drop(wal);
        let (wal, replayed) = Wal::open(&path, TAG + 99).unwrap();
        assert!(replayed.is_empty(), "stale records must not replay");
        assert!(!wal.has_records());
        drop(wal);
        // And the discard is durable: reopening with the *old* tag finds
        // nothing either.
        let (_, replayed) = Wal::open(&path, TAG).unwrap();
        assert!(replayed.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_prefix_recovered() {
        let path = temp_wal("torn.wal");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = Wal::open(&path, TAG).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        drop(wal);
        // Simulate a crash mid-append: half a frame of garbage.
        let mut bytes = std::fs::read(&path).unwrap();
        let full = bytes.len();
        bytes.extend_from_slice(&[0x17, 0x00, 0x00, 0x00, 0xAB, 0xCD]);
        std::fs::write(&path, &bytes).unwrap();
        let (_, replayed) = Wal::open(&path, TAG).unwrap();
        assert_eq!(replayed, sample_records());
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            full as u64,
            "torn tail must be truncated away"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_header_is_an_error() {
        let path = temp_wal("badheader.wal");
        std::fs::write(&path, b"NOPE\x01\x00\x00\x00AAAABBBB").unwrap();
        assert!(matches!(
            Wal::open(&path, TAG),
            Err(WalError::Corrupt { .. })
        ));
        std::fs::remove_file(&path).ok();
    }
}
