//! End-to-end test of the `intentmatch` CLI binary: index → stats → query
//! → add → query, through real files and the real executable — plus the
//! live path: ingest → query-while-pending → compact.

use std::io::Write;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_intentmatch"))
}

fn temp_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("intentmatch-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A tiny but varied collection: three repeated themes with variations.
fn write_posts(path: &std::path::Path, n: usize) {
    let themes = [
        "I have an HP system with a RAID 0 controller. The array shows as degraded. \
         Do you know whether the RAID 0 controller would degrade performance?",
        "My HP LaserJet printer jams on every page. I replaced the ink cartridge. \
         How can I fix the paper tray myself?",
        "The wireless card drops the connection every hour. I reinstalled the driver. \
         Is the wireless card compatible with Linux?",
        "My HP Pavilion shuts down after 15 minutes. I cleaned the fan with compressed air. \
         Should I replace the heat sink or send it for repair?",
    ];
    let extras = [
        "I am asking because I do not want to lose my data.",
        "Thanks in advance.",
        "It was fine before the update.",
        "I even called the technical department before posting here.",
    ];
    let mut f = std::fs::File::create(path).unwrap();
    for i in 0..n {
        writeln!(
            f,
            "{} {}",
            themes[i % themes.len()],
            extras[i % extras.len()]
        )
        .unwrap();
    }
}

#[test]
fn cli_full_workflow() {
    let dir = temp_dir();
    let posts = dir.join("posts.txt");
    let store = dir.join("store.imp");
    write_posts(&posts, 120);

    // index
    let out = bin()
        .args(["index", posts.to_str().unwrap(), store.to_str().unwrap()])
        .output()
        .expect("run index");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(store.exists());

    // stats
    let out = bin()
        .args(["stats", store.to_str().unwrap()])
        .output()
        .expect("run stats");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("posts:    120"), "{stdout}");
    assert!(stdout.contains("clusters:"), "{stdout}");

    // query by doc id
    let out = bin()
        .args(["query", store.to_str().unwrap(), "--doc", "0", "-k", "3"])
        .output()
        .expect("run query");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // query by new text
    let out = bin()
        .args([
            "query",
            store.to_str().unwrap(),
            "--text",
            "My RAID array is degraded. Will performance suffer with the RAID 0 controller?",
            "-k",
            "3",
        ])
        .output()
        .expect("run query --text");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // batch query with explicit threads: per-query blocks on stdout, and
    // the same ranking the single-doc path prints.
    let out = bin()
        .args([
            "query",
            store.to_str().unwrap(),
            "--batch",
            "0,2,10-14",
            "-k",
            "3",
            "--threads",
            "4",
            "--metrics-out",
            dir.join("batch-metrics.jsonl").to_str().unwrap(),
        ])
        .output()
        .expect("run query --batch");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for q in [0usize, 2, 10, 11, 12, 13, 14] {
        assert!(stdout.contains(&format!("query #{q}:")), "{stdout}");
    }
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("7 queries"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let batch_metrics = parse_metrics(&dir.join("batch-metrics.jsonl"));
    assert!(
        find(&batch_metrics, "online/batch_ns").is_some(),
        "missing online/batch_ns"
    );
    assert_eq!(
        find(&batch_metrics, "online/batch_queries")
            .and_then(|m| m.get("value"))
            .and_then(forum_obs::json::Json::as_u64),
        Some(7)
    );
    assert!(
        find(&batch_metrics, "online/qps")
            .and_then(|m| m.get("value"))
            .and_then(forum_obs::json::Json::as_u64)
            .is_some_and(|v| v >= 1),
        "missing or zero online/qps gauge"
    );

    // a bad batch spec fails cleanly
    let out = bin()
        .args(["query", store.to_str().unwrap(), "--batch", "9-3"])
        .output()
        .expect("run query --batch bad spec");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("start after end"));

    // add
    let more = dir.join("more.txt");
    write_posts(&more, 5);
    let out = bin()
        .args(["add", store.to_str().unwrap(), more.to_str().unwrap()])
        .output()
        .expect("run add");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("collection now 125"), "{stderr}");

    // stats reflects the growth
    let out = bin()
        .args(["stats", store.to_str().unwrap()])
        .output()
        .expect("run stats again");
    assert!(String::from_utf8_lossy(&out.stdout).contains("posts:    125"));

    std::fs::remove_dir_all(&dir).ok();
}

/// Parses a JSON-lines metrics dump and returns the parsed objects keyed by
/// metric name, asserting every line is valid JSON.
fn parse_metrics(path: &std::path::Path) -> Vec<forum_obs::json::Json> {
    let text = std::fs::read_to_string(path).unwrap();
    assert!(!text.is_empty(), "metrics file {path:?} is empty");
    text.lines()
        .map(|line| {
            forum_obs::json::Json::parse(line)
                .unwrap_or_else(|e| panic!("invalid JSON line {line:?}: {e}"))
        })
        .collect()
}

fn find<'a>(metrics: &'a [forum_obs::json::Json], name: &str) -> Option<&'a forum_obs::json::Json> {
    metrics
        .iter()
        .find(|m| m.get("name").and_then(|n| n.as_str()) == Some(name))
}

#[test]
fn cli_explain_and_metrics_out() {
    // Own directory (not `temp_dir()`): the other tests remove theirs on
    // completion, and tests in one binary run concurrently.
    let dir = std::env::temp_dir().join(format!("intentmatch-cli-obs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let posts = dir.join("posts.txt");
    let store = dir.join("store.imp");
    // A generated corpus, not `write_posts`: EXPLAIN on a few endlessly
    // repeated themes is all zero weights (every term's probabilistic IDF
    // vanishes), which is faithful but makes the trace trivially empty.
    {
        let corpus = forum_corpus::Corpus::generate(&forum_corpus::GenConfig {
            domain: forum_corpus::Domain::TechSupport,
            num_posts: 150,
            seed: 3,
        });
        let mut f = std::fs::File::create(&posts).unwrap();
        for p in &corpus.posts {
            writeln!(f, "{}", p.text.replace('\n', " ")).unwrap();
        }
    }

    // index --metrics-out: valid JSON-lines with per-phase histograms.
    let index_metrics = dir.join("index-metrics.jsonl");
    let out = bin()
        .args([
            "index",
            posts.to_str().unwrap(),
            store.to_str().unwrap(),
            "--metrics-out",
            index_metrics.to_str().unwrap(),
        ])
        .output()
        .expect("run index --metrics-out");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let metrics = parse_metrics(&index_metrics);
    for phase in [
        "offline",
        "offline/parse_cm",
        "offline/segmentation",
        "offline/features",
        "offline/clustering",
        "offline/refinement_indexing",
    ] {
        let m = find(&metrics, phase).unwrap_or_else(|| panic!("missing {phase}"));
        assert_eq!(
            m.get("type").unwrap().as_str(),
            Some("histogram"),
            "{phase}"
        );
        assert_eq!(m.get("count").unwrap().as_u64(), Some(1), "{phase}");
        for field in ["p50", "p90", "p99", "buckets"] {
            assert!(m.get(field).is_some(), "{phase} lacks {field}");
        }
    }
    assert!(
        find(&metrics, "offline/clusters")
            .and_then(|m| m.get("value"))
            .and_then(forum_obs::json::Json::as_u64)
            .is_some_and(|v| v >= 1),
        "offline/clusters gauge missing or zero"
    );

    // query --doc --explain --metrics-out: per-cluster trace on stdout,
    // online metrics in the dump.
    let query_metrics = dir.join("query-metrics.jsonl");
    let out = bin()
        .args([
            "query",
            store.to_str().unwrap(),
            "--doc",
            "0",
            "-k",
            "3",
            "--explain",
            "--metrics-out",
            query_metrics.to_str().unwrap(),
        ])
        .output()
        .expect("run query --explain");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("EXPLAIN query doc #0"), "{stdout}");
    assert!(stdout.contains("intention cluster"), "{stdout}");
    assert!(stdout.contains("weight="), "{stdout}");
    assert!(stdout.contains("cand"), "{stdout}");
    assert!(stdout.contains("from cluster"), "{stdout}");
    let metrics = parse_metrics(&query_metrics);
    let scans = find(&metrics, "online/algo1_scans").expect("missing online/algo1_scans");
    assert!(scans.get("value").unwrap().as_u64().is_some_and(|v| v >= 1));
    assert!(find(&metrics, "online/algo1_ns").is_some());

    // --explain needs a collection-resident query document.
    let out = bin()
        .args([
            "query",
            store.to_str().unwrap(),
            "--text",
            "some new post",
            "--explain",
        ])
        .output()
        .expect("run query --text --explain");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--explain requires --doc"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_rejects_bad_usage() {
    let out = bin().output().expect("run bare");
    assert!(!out.status.success());

    let out = bin()
        .args(["query", "/nonexistent/store.imp", "--doc", "0"])
        .output()
        .expect("run query on missing store");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));

    let dir = temp_dir();
    let posts = dir.join("p.txt");
    let store = dir.join("s.imp");
    write_posts(&posts, 30);
    assert!(bin()
        .args(["index", posts.to_str().unwrap(), store.to_str().unwrap()])
        .output()
        .unwrap()
        .status
        .success());
    // --doc out of range
    let out = bin()
        .args(["query", store.to_str().unwrap(), "--doc", "999"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("out of range"));
    std::fs::remove_dir_all(&dir).ok();
}

/// The live path, end to end: two identical stores, one grown with
/// WAL-durable `ingest` + `compact`, the other with the full-resave `add`.
/// Their batch-query output must agree at printed (4-decimal) precision —
/// ingestion is allowed to differ from `add` only in float summation order
/// for the per-cluster average-unique-terms statistic.
#[test]
fn cli_ingest_compact_matches_add() {
    let dir = std::env::temp_dir().join(format!("intentmatch-cli-ingest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let posts = dir.join("posts.txt");
    let more = dir.join("more.txt");
    let ingested = dir.join("ingested.imp");
    let added = dir.join("added.imp");
    write_posts(&posts, 100);
    write_posts(&more, 12);

    for store in [&ingested, &added] {
        let out = bin()
            .args(["index", posts.to_str().unwrap(), store.to_str().unwrap()])
            .output()
            .expect("run index");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    // ingest: durable in the WAL, snapshot untouched.
    let snapshot_before = std::fs::read(&ingested).unwrap();
    let out = bin()
        .args([
            "ingest",
            ingested.to_str().unwrap(),
            more.to_str().unwrap(),
            "--metrics-out",
            dir.join("ingest-metrics.jsonl").to_str().unwrap(),
        ])
        .output()
        .expect("run ingest");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("ingested 12 posts"), "{stderr}");
    assert!(stderr.contains("ids 100..=111"), "{stderr}");
    let wal = dir.join("ingested.imp.wal");
    assert!(wal.exists(), "ingest should create {wal:?}");
    assert_eq!(
        std::fs::read(&ingested).unwrap(),
        snapshot_before,
        "ingest must not rewrite the snapshot"
    );
    let metrics = parse_metrics(&dir.join("ingest-metrics.jsonl"));
    assert_eq!(
        find(&metrics, "ingest/added")
            .and_then(|m| m.get("value"))
            .and_then(forum_obs::json::Json::as_u64),
        Some(12)
    );
    assert!(find(&metrics, "ingest/wal_append_ns").is_some());

    // stats and queries see the pending writes (WAL replay on open).
    let out = bin()
        .args(["stats", ingested.to_str().unwrap()])
        .output()
        .expect("run stats with pending WAL");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("posts:    112"), "{stdout}");
    assert!(stdout.contains("pending:  12 docs"), "{stdout}");

    let out = bin()
        .args([
            "query",
            ingested.to_str().unwrap(),
            "--doc",
            "105",
            "-k",
            "3",
        ])
        .output()
        .expect("query a pending doc");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // --explain refuses while writes are pending (it traces the snapshot).
    let out = bin()
        .args([
            "query",
            ingested.to_str().unwrap(),
            "--doc",
            "0",
            "--explain",
        ])
        .output()
        .expect("query --explain with pending WAL");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("compact"));

    // compact folds the WAL into the snapshot and truncates it.
    let out = bin()
        .args(["compact", ingested.to_str().unwrap()])
        .output()
        .expect("run compact");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("collection now 112"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = bin()
        .args(["stats", ingested.to_str().unwrap()])
        .output()
        .expect("run stats after compact");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("posts:    112"), "{stdout}");
    assert!(!stdout.contains("pending:"), "{stdout}");

    // a second compact is a no-op.
    let out = bin()
        .args(["compact", ingested.to_str().unwrap()])
        .output()
        .expect("run compact again");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("nothing to compact"));

    // grow the control store with `add`, then diff the rankings.
    let out = bin()
        .args(["add", added.to_str().unwrap(), more.to_str().unwrap()])
        .output()
        .expect("run add");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let batch = ["query", "", "--batch", "0-111", "-k", "5"];
    let run = |store: &std::path::Path| {
        let mut args = batch;
        args[1] = store.to_str().unwrap();
        let out = bin().args(args).output().expect("run batch query");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    assert_eq!(
        run(&ingested),
        run(&added),
        "ingest+compact and add must rank identically at printed precision"
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// `--metrics-out` works on every subcommand, including `add` and `stats`.
#[test]
fn cli_add_and_stats_accept_metrics_out() {
    let dir = std::env::temp_dir().join(format!("intentmatch-cli-mflag-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let posts = dir.join("posts.txt");
    let more = dir.join("more.txt");
    let store = dir.join("store.imp");
    write_posts(&posts, 60);
    write_posts(&more, 4);
    assert!(bin()
        .args(["index", posts.to_str().unwrap(), store.to_str().unwrap()])
        .output()
        .unwrap()
        .status
        .success());

    let add_metrics = dir.join("add-metrics.jsonl");
    let out = bin()
        .args([
            "add",
            store.to_str().unwrap(),
            more.to_str().unwrap(),
            "--metrics-out",
            add_metrics.to_str().unwrap(),
        ])
        .output()
        .expect("run add --metrics-out");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let metrics = parse_metrics(&add_metrics);
    assert_eq!(
        find(&metrics, "offline/posts_added")
            .and_then(|m| m.get("value"))
            .and_then(forum_obs::json::Json::as_u64),
        Some(4)
    );
    assert!(find(&metrics, "offline/add_post_ns").is_some());

    let stats_metrics = dir.join("stats-metrics.jsonl");
    let out = bin()
        .args([
            "stats",
            store.to_str().unwrap(),
            "--metrics-out",
            stats_metrics.to_str().unwrap(),
        ])
        .output()
        .expect("run stats --metrics-out");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let metrics = parse_metrics(&stats_metrics);
    // A compacted v2 store answers `stats` from the header alone: the
    // mapped view records its open cost, and no live epoch is published
    // (no hydration happened).
    assert!(find(&metrics, "offline/store_load_ns").is_some());
    assert!(find(&metrics, "store/bytes_mapped").is_some());
    assert!(find(&metrics, "ingest/epoch").is_none());

    std::fs::remove_dir_all(&dir).ok();
}

/// The `serve` subcommand through the real binary: ephemeral port, address
/// discovery on stdout, health, scrape, query, clean shutdown.
#[test]
fn cli_serve_smoke() {
    use std::io::{BufRead, BufReader, Read};
    use std::net::TcpStream;

    let dir = std::env::temp_dir().join(format!("intentmatch-cli-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let posts = dir.join("posts.txt");
    let store = dir.join("store.imp");
    write_posts(&posts, 60);
    assert!(bin()
        .args(["index", posts.to_str().unwrap(), store.to_str().unwrap()])
        .output()
        .unwrap()
        .status
        .success());

    let events_out = dir.join("events.jsonl");
    let mut child = bin()
        .args([
            "serve",
            store.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--events-out",
            events_out.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn serve");

    // The bound address is the first stdout line.
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    stdout.read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("listening on http://")
        .unwrap_or_else(|| panic!("unexpected serve banner: {line:?}"))
        .to_string();

    let request = |raw: &str| -> (u16, String) {
        let mut stream = TcpStream::connect(&addr).unwrap();
        std::io::Write::write_all(&mut stream, raw.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        let status = out
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let body = out
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    };

    let (status, body) = request("GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    let (status, metrics) = request("GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 200);
    forum_obs::prometheus::validate_exposition(&metrics).expect("exposition must validate");
    assert!(metrics.contains("serve_online_query_ns"), "{metrics}");

    let (status, body) = request("GET /query?doc=0&k=3 HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 200, "{body}");
    let v = forum_obs::json::Json::parse(body.trim()).unwrap();
    assert!(v.get("results").is_some());

    let (status, _) = request("POST /shutdown HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n");
    assert_eq!(status, 200);
    let exit = child.wait().expect("serve must exit after shutdown");
    assert!(exit.success());

    // Events streamed to the sink (the open published an epoch).
    let text = std::fs::read_to_string(&events_out).unwrap();
    assert!(
        text.lines()
            .filter_map(|l| forum_obs::json::Json::parse(l).ok())
            .any(|e| e.get("kind").and_then(|k| k.as_str().map(String::from))
                == Some("epoch_swap".to_string())),
        "{text}"
    );

    std::fs::remove_dir_all(&dir).ok();
}
