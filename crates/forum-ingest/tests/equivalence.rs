//! The live store's core contract: ingestion is a *deferral* of index
//! maintenance, not an approximation of it.
//!
//! * With nothing pending, the epoch query path is bit-identical to the
//!   offline engine.
//! * After ingest + compact, the persisted state is bit-identical to a
//!   direct offline assembly of the same documents with the same cluster
//!   assignments — for every query, at every thread count.
//! * Against a *true* full rebuild (re-segmented, re-clustered), results
//!   may differ — the frozen-centroid divergence DESIGN.md documents — but
//!   only boundedly so, which a property test pins down.
//! * A crash mid-append loses at most the torn record; the snapshot is
//!   never touched.

use forum_corpus::{Corpus, Domain, GenConfig};
use forum_ingest::{wal_path_for, IngestConfig, LiveStore};
use intentmatch::pipeline::{ClusterIndex, PipelineConfig, RefinedSegment};
use intentmatch::{store, IntentPipeline, PostCollection, QueryEngine};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("forum-ingest-eq-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn corpus_texts(num_posts: usize, seed: u64) -> Vec<String> {
    Corpus::generate(&GenConfig {
        domain: Domain::TechSupport,
        num_posts,
        seed,
    })
    .posts
    .iter()
    .map(|p| p.text.clone())
    .collect()
}

/// Builds and saves an offline store over a generated corpus.
fn build_store(path: &Path, num_posts: usize, seed: u64) {
    let corpus = Corpus::generate(&GenConfig {
        domain: Domain::TechSupport,
        num_posts,
        seed,
    });
    let coll = PostCollection::from_corpus(&corpus);
    let pipe = IntentPipeline::build(&coll, &PipelineConfig::default());
    store::save(path, &coll, &pipe).unwrap();
}

fn open(path: &Path) -> LiveStore {
    LiveStore::open(path, PipelineConfig::default(), IngestConfig::default()).unwrap()
}

/// Collapses a ranking into comparable-by-`Eq` form (f64 → raw bits).
fn bits(hits: &[(u32, f64)]) -> Vec<(u32, u64)> {
    hits.iter().map(|&(d, s)| (d, s.to_bits())).collect()
}

#[test]
fn empty_delta_epoch_is_bit_identical_to_engine() {
    let dir = temp_dir("nodelta");
    let path = dir.join("store.imp");
    build_store(&path, 120, 41);

    let live = open(&path);
    let epoch = live.current();
    assert!(!epoch.has_pending());
    let (coll, pipe) = (&epoch.base.collection, &epoch.base.pipeline);
    for q in 0..coll.len() {
        assert_eq!(
            bits(&epoch.top_k(q as u32, 5)),
            bits(&pipe.top_k(coll, q, 5)),
            "query {q}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn live_epoch_serves_pending_writes_and_hides_deletes() {
    let dir = temp_dir("visibility");
    let path = dir.join("store.imp");
    build_store(&path, 80, 42);
    let mut live = open(&path);
    let base_len = live.current().base.len() as u32;

    let new_texts = corpus_texts(10, 1042);
    let ids = live.add_batch(&new_texts).unwrap();
    assert_eq!(ids, (base_len..base_len + 10).collect::<Vec<_>>());

    let deleted = ids[3];
    live.delete(deleted).unwrap();
    live.update(ids[0], &new_texts[5]).unwrap();
    assert!(matches!(
        live.delete(deleted),
        Err(forum_ingest::IngestError::UnknownDoc(_))
    ));
    assert!(matches!(
        live.update(base_len + 500, "nope"),
        Err(forum_ingest::IngestError::UnknownDoc(_))
    ));

    let epoch = live.current();
    assert_eq!(epoch.num_docs(), base_len as usize + 10);
    assert_eq!(epoch.num_live_docs(), base_len as usize + 9);
    assert!(epoch.doc_text(deleted).is_none());
    assert!(epoch.top_k(deleted, 5).is_empty());
    // The updated document serves its *new* text.
    assert_eq!(epoch.doc_text(ids[0]), epoch.doc_text(ids[5]));

    // No query surfaces the deleted document, base or delta resident.
    let old_doc = 7u32;
    live.delete(old_doc).unwrap();
    let epoch = live.current();
    for q in 0..epoch.num_docs() as u32 {
        let hits = epoch.top_k(q, 8);
        assert!(
            hits.iter().all(|&(d, _)| d != deleted && d != old_doc),
            "query {q} surfaced a deleted doc: {hits:?}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// After a mixed batch (adds, one update, one base delete, one delta
/// delete), compaction must produce exactly the state a direct offline
/// assembly of the surviving documents + assignments produces — same
/// segmentations, same refined segments, and bit-identical rankings at
/// every thread count.
#[test]
fn compact_is_bit_identical_to_direct_assembly() {
    let dir = temp_dir("oracle");
    let path = dir.join("store.imp");
    build_store(&path, 90, 43);
    let mut live = open(&path);
    let base_len = live.current().base.len() as u32;

    let new_texts = corpus_texts(14, 7043);
    let ids = live.add_batch(&new_texts).unwrap();
    live.update(5, &new_texts[2]).unwrap(); // base doc rewritten
    live.update(ids[1], &new_texts[9]).unwrap(); // delta doc rewritten
    live.delete(11).unwrap(); // base doc gone
    live.delete(ids[6]).unwrap(); // delta doc gone

    // Oracle: assemble collection + pipeline directly from the pre-compact
    // epoch's components, the way a from-scratch builder with identical
    // cluster assignments would.
    let epoch = live.current();
    let base = epoch.base.clone();
    let n = epoch.num_docs();
    let mut docs = Vec::with_capacity(n);
    let mut raw_segmentations = Vec::with_capacity(n);
    let mut doc_segments: Vec<Vec<RefinedSegment>> = Vec::with_capacity(n);
    for id in 0..n as u32 {
        if let Some(dd) = epoch.delta.doc(id) {
            docs.push(dd.doc.clone());
            raw_segmentations.push(dd.raw_seg.clone());
            doc_segments.push(dd.refined.clone());
        } else if id < base_len && !epoch.delta.deleted.contains(&id) {
            docs.push(base.collection.docs[id as usize].clone());
            raw_segmentations.push(base.pipeline.raw_segmentations[id as usize].clone());
            doc_segments.push(base.pipeline.doc_segments[id as usize].clone());
        } else {
            docs.push(forum_segment::CmDoc::new(
                forum_text::Document::parse_clean(forum_text::document::DocId(id), ""),
            ));
            raw_segmentations.push(forum_text::Segmentation::single(1));
            doc_segments.push(Vec::new());
        }
    }
    let oracle_coll = PostCollection { docs };
    let num_clusters = base.pipeline.num_clusters();
    let mut builders: Vec<forum_index::IndexBuilder> = (0..num_clusters)
        .map(|_| forum_index::IndexBuilder::new())
        .collect();
    for (d, segs) in doc_segments.iter().enumerate() {
        for seg in segs {
            let terms = intentmatch::pipeline::segment_terms(&oracle_coll, d, seg);
            builders[seg.cluster].add_unit(d as u32, &terms);
        }
    }
    let oracle_pipe = IntentPipeline {
        raw_segmentations,
        doc_segments,
        clusters: builders
            .into_iter()
            .map(|b| ClusterIndex { index: b.build() })
            .collect(),
        centroids: base.pipeline.centroids.clone(),
        num_noise: base.pipeline.num_noise,
        timings: Default::default(),
        weighted_combination: base.pipeline.weighted_combination,
        weighting: base.pipeline.weighting,
    };

    live.compact().unwrap();
    assert!(!live.has_pending());
    assert_eq!(
        std::fs::read(wal_path_for(&path)).unwrap().len(),
        16,
        "compaction must truncate the WAL to its header"
    );
    let (coll, pipe) = store::load(&path).unwrap();

    assert_eq!(coll.len(), n);
    for (a, b) in coll.docs.iter().zip(&oracle_coll.docs) {
        assert_eq!(a.doc.text, b.doc.text);
    }
    assert_eq!(pipe.raw_segmentations, oracle_pipe.raw_segmentations);
    type SegShape = Vec<Vec<(usize, Vec<(usize, usize)>)>>;
    let shape = |segs: &[Vec<RefinedSegment>]| -> SegShape {
        segs.iter()
            .map(|s| s.iter().map(|r| (r.cluster, r.ranges.clone())).collect())
            .collect()
    };
    assert_eq!(shape(&pipe.doc_segments), shape(&oracle_pipe.doc_segments));

    let queries: Vec<usize> = (0..n).collect();
    let expected: Vec<Vec<(u32, u64)>> = queries
        .iter()
        .map(|&q| bits(&oracle_pipe.top_k(&oracle_coll, q, 5)))
        .collect();
    for threads in [1usize, 2, 4, 8] {
        let engine = QueryEngine::new(&coll, &pipe).with_threads(threads);
        let got: Vec<Vec<(u32, u64)>> = engine
            .top_k_batch(&queries, 5)
            .iter()
            .map(|h| bits(h))
            .collect();
        assert_eq!(got, expected, "threads={threads}");
    }

    // The compacted store also round-trips through the live path: reopen,
    // nothing pending, epoch == engine bitwise.
    let live = open(&path);
    let epoch = live.current();
    assert!(!epoch.has_pending());
    for &q in &queries {
        assert_eq!(bits(&epoch.top_k(q as u32, 5)), expected[q], "query {q}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_during_append_loses_only_the_torn_record() {
    let dir = temp_dir("crash");
    let path = dir.join("store.imp");
    build_store(&path, 60, 44);
    let snapshot = std::fs::read(&path).unwrap();

    let mut live = open(&path);
    let base_len = live.current().base.len();
    let texts = corpus_texts(3, 2044);
    live.add_batch(&texts).unwrap();
    drop(live);

    // Simulated kill mid-append: the last record's tail never reached disk.
    let wal = wal_path_for(&path);
    let bytes = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &bytes[..bytes.len() - 5]).unwrap();

    let mut live = open(&path);
    let epoch = live.current();
    assert_eq!(
        epoch.num_docs(),
        base_len + 2,
        "the two fully durable adds must survive"
    );
    assert_eq!(
        std::fs::read(&path).unwrap(),
        snapshot,
        "recovery must not touch the snapshot"
    );

    // The log keeps working; the torn record's id is reused by the next
    // add (it was never acknowledged as durable).
    let id = live.add(&texts[2]).unwrap();
    assert_eq!(id as usize, base_len + 2);
    drop(live);
    let live = open(&path);
    assert_eq!(live.current().num_docs(), base_len + 3);
    std::fs::remove_dir_all(&dir).ok();
}

/// Mean top-k overlap between (a) ingest + compact under frozen centroids
/// and (b) a true full rebuild that re-segments and re-clusters everything.
fn rebuild_overlap(dir: &Path, base_posts: usize, added_posts: usize, seed: u64) -> f64 {
    let path = dir.join(format!("s{seed}.imp"));
    build_store(&path, base_posts, seed);
    let mut live = open(&path);
    let added = corpus_texts(added_posts, seed + 10_000);
    live.add_batch(&added).unwrap();
    live.compact().unwrap();
    let (coll, pipe) = store::load(&path).unwrap();

    // The rebuild sees the same documents the compacted store holds (the
    // snapshot's parse_clean texts), but re-runs the whole offline
    // pipeline, clustering included.
    let texts: Vec<String> = coll.docs.iter().map(|d| d.doc.text.clone()).collect();
    let rebuilt_coll = PostCollection::from_raw_texts(&texts);
    let rebuilt_pipe = IntentPipeline::build(&rebuilt_coll, &PipelineConfig::default());

    let k = 5;
    let mut total = 0.0;
    let mut queries = 0usize;
    for q in 0..coll.len() {
        let a: std::collections::HashSet<u32> =
            pipe.top_k(&coll, q, k).iter().map(|&(d, _)| d).collect();
        let b: std::collections::HashSet<u32> = rebuilt_pipe
            .top_k(&rebuilt_coll, q, k)
            .iter()
            .map(|&(d, _)| d)
            .collect();
        if a.is_empty() && b.is_empty() {
            continue;
        }
        total += a.intersection(&b).count() as f64 / a.len().max(b.len()) as f64;
        queries += 1;
    }
    total / queries.max(1) as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Frozen-centroid ingestion is allowed to diverge from a full rebuild
    /// (different clusters → different candidate pools), but the rankings
    /// must stay recognizably related — the divergence is bounded, not
    /// open-ended.
    #[test]
    fn compacted_results_overlap_a_full_rebuild(
        base_posts in 50usize..80,
        added in 8usize..20,
        seed in 0u64..1_000,
    ) {
        let dir = temp_dir("overlap");
        let overlap = rebuild_overlap(&dir, base_posts, added, seed);
        std::fs::remove_dir_all(&dir).ok();
        prop_assert!(
            overlap >= 0.15,
            "mean top-k overlap {overlap:.3} below bound for seed {seed}"
        );
    }
}
