//! Integration tests for the observability serving surface (PR 9): the
//! background sampler, `/alerts`, `/series`, and `/dashboard` on a real
//! socket, against both the plain [`ServeApp`] and the sharded
//! [`ShardServeApp`].
//!
//! The load-bearing property is the acceptance criterion that the
//! sampler is *pure observation*: with a sampler scraping the registry
//! every 25 ms while queries run, rankings must stay bit-identical to a
//! sampler-free server over the same store.

use forum_corpus::{Corpus, Domain, GenConfig};
use forum_ingest::{
    wal_path_for, IngestConfig, LiveStore, ServeApp, ShardServeApp, ShardServeConfig,
};
use forum_obs::json::Json;
use forum_obs::serve::HttpServer;
use forum_obs::Registry;
use forum_shard::PoolServer;
use intentmatch::{store, IntentPipeline, PipelineConfig, PostCollection};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn temp_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("forum-ingest-alerting-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn build_store(path: &std::path::Path, num_posts: usize, seed: u64) {
    let corpus = Corpus::generate(&GenConfig {
        domain: Domain::TechSupport,
        num_posts,
        seed,
    });
    let coll = PostCollection::from_corpus(&corpus);
    let pipe = IntentPipeline::build(&coll, &PipelineConfig::default());
    store::save(path, &coll, &pipe).unwrap();
}

/// One HTTP exchange over a fresh connection; returns (status, body).
fn http(addr: SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(raw.as_bytes()).unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    let status = out
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = out
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    http(addr, &format!("GET {target} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

fn post(addr: SocketAddr, target: &str, body: &str) -> (u16, String) {
    http(
        addr,
        &format!(
            "POST {target} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// The `results` array of a `/query` response, scores as raw bits.
fn ranking_bits(body: &str) -> Vec<(u64, u64)> {
    let v = Json::parse(body.trim()).expect("query response must be JSON");
    v.get("results")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|r| {
            (
                r.get("doc").unwrap().as_u64().unwrap(),
                r.get("score").unwrap().as_f64().unwrap().to_bits(),
            )
        })
        .collect()
}

#[test]
fn sampler_keeps_rankings_bit_identical_and_serves_alerts_series_dashboard() {
    let registry = Registry::global();
    let registry_was = registry.is_enabled();
    registry.set_enabled(true);

    let store_path = temp_store("alerting.imp");
    build_store(&store_path, 80, 7);
    let live = LiveStore::open(
        &store_path,
        PipelineConfig::default(),
        IngestConfig::default(),
    )
    .unwrap();

    // Reference: plain app, no sampler.
    let reference = ServeApp::new(live.handle(), wal_path_for(&store_path));
    let ref_server = HttpServer::bind("127.0.0.1:0").unwrap();
    let ref_addr = ref_server.local_addr().unwrap();
    reference.set_stopper(ref_server.stopper().unwrap());
    let handler = reference.clone();
    let ref_join = std::thread::spawn(move || {
        ref_server.run(Arc::new(move |req: &forum_obs::serve::Request| {
            handler.handle(req)
        }))
    });

    // Under test: the sharded app with an aggressive 25 ms sampler, so
    // dozens of scrapes and SLO evaluations land *while* queries run.
    let app = ShardServeApp::new(
        live.handle(),
        wal_path_for(&store_path),
        ShardServeConfig {
            shards: 2,
            ..ShardServeConfig::default()
        },
    );
    let server = PoolServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap();
    app.set_stopper(server.stopper().unwrap());
    app.start_sampler(Duration::from_millis(25));
    let handler_app = app.clone();
    let join = std::thread::spawn(move || {
        server.run(Arc::new(move |req: &forum_obs::serve::Request| {
            handler_app.handle(req)
        }))
    });

    // Bit-identity with the sampler running: every query, both servers,
    // identical bits — repeated so samples demonstrably interleave.
    for round in 0..3 {
        for doc in [0u32, 5, 17, 40, 63] {
            let body = format!("{{\"doc\": {doc}, \"k\": 5}}");
            let (s1, b1) = post(ref_addr, "/query", &body);
            let (s2, b2) = post(addr, "/query", &body);
            assert_eq!((s1, s2), (200, 200), "round {round} doc {doc}: {b1} / {b2}");
            assert_eq!(
                ranking_bits(&b1),
                ranking_bits(&b2),
                "round {round} doc {doc}: sampler changed the ranking"
            );
        }
        std::thread::sleep(Duration::from_millis(30));
    }

    // The sampler must by now have derived per-second rate series from
    // the request counters; /series serves them as JSON.
    let mut series_body = String::new();
    for _ in 0..200 {
        let (status, body) = get(addr, "/series?name=serve/http_requests&window=fine");
        if status == 200 {
            series_body = body;
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(!series_body.is_empty(), "series never appeared");
    let series = Json::parse(series_body.trim()).unwrap();
    assert_eq!(
        series.get("name").unwrap().as_str(),
        Some("serve/http_requests")
    );
    assert_eq!(series.get("window").unwrap().as_str(), Some("fine"));
    let samples = series.get("samples").unwrap().as_arr().unwrap();
    assert!(!samples.is_empty());
    for s in samples {
        assert!(s.get("unix_ms").unwrap().as_u64().is_some());
        assert!(s.get("value").unwrap().as_f64().is_some());
    }

    // /series error paths: missing name, bad window, unknown series.
    let (status, _) = get(addr, "/series");
    assert_eq!(status, 400);
    let (status, _) = get(addr, "/series?name=serve/http_requests&window=hourly");
    assert_eq!(status, 400);
    let (status, body) = get(addr, "/series?name=no/such/series");
    assert_eq!(status, 404, "{body}");

    // /alerts: the four default objectives, all quiet under this load.
    let (status, body) = get(addr, "/alerts");
    assert_eq!(status, 200, "{body}");
    let alerts = Json::parse(body.trim()).unwrap();
    assert!(alerts.get("unix_ms").unwrap().as_u64().is_some());
    let objectives = alerts.get("objectives").unwrap().as_arr().unwrap();
    let names: Vec<&str> = objectives
        .iter()
        .map(|o| o.get("name").unwrap().as_str().unwrap())
        .collect();
    assert_eq!(
        names,
        [
            "availability",
            "latency_p99",
            "drift_delta_ratio",
            "drift_noise_rate"
        ]
    );
    for o in objectives {
        assert_eq!(o.get("state").unwrap().as_str(), Some("ok"), "{o}");
        assert!(o.get("burn_fast").unwrap().as_f64().is_some());
        assert!(o.get("burn_slow").unwrap().as_f64().is_some());
    }

    // /dashboard: self-contained HTML with sparklines, SLO status rows,
    // and (on the sharded app) per-shard rows.
    let (status, page) = get(addr, "/dashboard");
    assert_eq!(status, 200);
    assert!(page.starts_with("<!DOCTYPE html>"), "not an HTML page");
    assert!(page.contains("<svg"), "no sparklines");
    assert!(page.contains("slo availability"));
    assert!(page.contains("shard 0") && page.contains("shard 1"));
    for needle in ["src=", "href=", "url(", "@import", "<script"] {
        assert!(
            !page.contains(needle),
            "dashboard is not self-contained: found {needle:?}"
        );
    }
    // The un-sharded reference serves the same page minus shard rows.
    let (status, ref_page) = get(ref_addr, "/dashboard");
    assert_eq!(status, 200);
    assert!(ref_page.starts_with("<!DOCTYPE html>"));
    assert!(!ref_page.contains("shard 0"));

    // The new routes are GET-only.
    for target in ["/alerts", "/series?name=x", "/dashboard"] {
        let (status, _) = post(addr, target, "");
        assert_eq!(status, 405, "{target} accepted POST");
    }

    // /metrics carries the SLO families while the sampler runs.
    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(metrics.contains("slo_state{objective=\"availability\"}"));
    assert!(metrics.contains("slo_burn_rate{objective=\"latency_p99\"}"));
    forum_obs::prometheus::validate_exposition(&metrics).unwrap();

    let (status, body) = post(addr, "/shutdown", "");
    assert_eq!((status, body.as_str()), (200, "stopping\n"));
    join.join().unwrap();
    let (status, _) = post(ref_addr, "/shutdown", "");
    assert_eq!(status, 200);
    ref_join.join().unwrap();

    drop(live);
    registry.set_enabled(registry_was);
}

#[test]
fn slo_overrides_parse_and_reject_bad_specs() {
    let deadline = Duration::from_millis(2000);
    let objectives = forum_ingest::parse_slo_overrides(
        &["availability=0.99,latency_ms=50".to_string()],
        deadline,
    )
    .unwrap();
    let avail = objectives
        .iter()
        .find(|o| o.name == "availability")
        .unwrap();
    match &avail.kind {
        forum_obs::ObjectiveKind::ErrorRatio { target, .. } => assert_eq!(*target, 0.99),
        k => panic!("wrong kind {k:?}"),
    }
    let latency = objectives.iter().find(|o| o.name == "latency_p99").unwrap();
    match &latency.kind {
        forum_obs::ObjectiveKind::UpperBound { ceiling, .. } => {
            assert_eq!(*ceiling, 50.0 * 1_000_000.0);
        }
        k => panic!("wrong kind {k:?}"),
    }

    assert!(
        forum_ingest::parse_slo_overrides(&["availability=1.5".to_string()], deadline).is_err()
    );
    assert!(forum_ingest::parse_slo_overrides(&["latency_ms=0".to_string()], deadline).is_err());
    assert!(forum_ingest::parse_slo_overrides(&["bogus=1".to_string()], deadline).is_err());
    assert!(forum_ingest::parse_slo_overrides(&["availability".to_string()], deadline).is_err());
}
