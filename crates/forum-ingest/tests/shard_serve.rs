//! Integration tests for the shard-parallel serving tier: a real
//! [`forum_shard::PoolServer`] on a real socket, the real
//! [`forum_ingest::ShardServeApp`] over a real store.
//!
//! The load-bearing property is the tentpole's acceptance criterion:
//! the sharded scatter/gather ranking is **bit-identical** to the
//! sequential single-shard path for any shard count, both over a
//! freshly-compacted store and with pending delta writes. On top of
//! that: the production guards (`k` cap, `threshold`, `board` filter),
//! per-shard readiness including the degraded state, the per-shard
//! labeled metric families, and the admission-control promise that a
//! shed request never reaches the scatter path.

use forum_corpus::{Corpus, Domain, GenConfig};
use forum_ingest::{
    wal_path_for, IngestConfig, LiveStore, ServeApp, ShardServeApp, ShardServeConfig,
};
use forum_obs::json::Json;
use forum_obs::serve::HttpServer;
use forum_obs::{prometheus, Registry};
use forum_shard::PoolServer;
use intentmatch::{store, IntentPipeline, PipelineConfig, PostCollection};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn temp_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("forum-shard-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn build_store(path: &std::path::Path, num_posts: usize, seed: u64) {
    let corpus = Corpus::generate(&GenConfig {
        domain: Domain::TechSupport,
        num_posts,
        seed,
    });
    let coll = PostCollection::from_corpus(&corpus);
    let pipe = IntentPipeline::build(&coll, &PipelineConfig::default());
    store::save(path, &coll, &pipe).unwrap();
}

/// One HTTP exchange over a fresh connection; returns the raw response.
fn http_raw(addr: SocketAddr, raw: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(raw.as_bytes()).unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    out
}

/// One HTTP exchange; returns (status, body).
fn http(addr: SocketAddr, raw: &str) -> (u16, String) {
    let out = http_raw(addr, raw);
    let status = out
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = out
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    http(addr, &format!("GET {target} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

fn post(addr: SocketAddr, target: &str, body: &str) -> (u16, String) {
    http(
        addr,
        &format!(
            "POST {target} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// Collapses a ranking into comparable-by-`Eq` form (f64 → raw bits).
fn bits(hits: &[(u32, f64)]) -> Vec<(u32, u64)> {
    hits.iter().map(|&(d, s)| (d, s.to_bits())).collect()
}

/// The `results` array of a `/query` response as `(doc, score)` pairs.
fn ranking_of(body: &str) -> Vec<(u32, f64)> {
    let v = Json::parse(body.trim()).expect("query response must be JSON");
    v.get("results")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|r| {
            (
                r.get("doc").unwrap().as_u64().unwrap() as u32,
                r.get("score").unwrap().as_f64().unwrap(),
            )
        })
        .collect()
}

/// Spawns a [`PoolServer`] over a [`ShardServeApp`]; returns the bound
/// address and the server thread's join handle.
fn spawn_pool(
    app: &Arc<ShardServeApp>,
    configure: impl FnOnce(PoolServer) -> PoolServer,
) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let server = configure(PoolServer::bind("127.0.0.1:0").unwrap());
    let addr = server.local_addr().unwrap();
    app.set_stopper(server.stopper().unwrap());
    let handler_app = app.clone();
    let join = std::thread::spawn(move || {
        server.run(Arc::new(move |req: &forum_obs::serve::Request| {
            handler_app.handle(req)
        }))
    });
    (addr, join)
}

/// The tentpole's acceptance criterion: for the same store and the same
/// queries, every shard count produces the *same bits* as the sequential
/// single-engine path — before and after a pending delta write.
#[test]
fn sharded_ranking_is_bit_identical_for_any_shard_count() {
    let store_path = temp_store("identity.imp");
    build_store(&store_path, 80, 7);
    let mut live = LiveStore::open(
        &store_path,
        PipelineConfig::default(),
        IngestConfig::default(),
    )
    .unwrap();

    // Sequential reference: the plain (unsharded) app on the plain
    // thread-per-connection server, over the same live handle.
    let reference = ServeApp::new(live.handle(), wal_path_for(&store_path));
    let ref_server = HttpServer::bind("127.0.0.1:0").unwrap();
    let ref_addr = ref_server.local_addr().unwrap();
    reference.set_stopper(ref_server.stopper().unwrap());
    let handler = reference.clone();
    let ref_join = std::thread::spawn(move || {
        ref_server.run(Arc::new(move |req: &forum_obs::serve::Request| {
            handler.handle(req)
        }))
    });

    let mut sharded = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let app = ShardServeApp::new(
            live.handle(),
            wal_path_for(&store_path),
            ShardServeConfig {
                shards,
                ..ShardServeConfig::default()
            },
        );
        let (addr, join) = spawn_pool(&app, |s| s);
        sharded.push((shards, addr, join));
    }

    let queries = [0u64, 3, 17, 29, 54];
    let compare = |label: &str| {
        for &q in &queries {
            let (status, body) = post(ref_addr, "/query", &format!("{{\"doc\": {q}, \"k\": 5}}"));
            assert_eq!(status, 200, "{body}");
            let want = bits(&ranking_of(&body));
            for (shards, addr, _) in &sharded {
                let (status, body) = post(*addr, "/query", &format!("{{\"doc\": {q}, \"k\": 5}}"));
                assert_eq!(status, 200, "{body}");
                let v = Json::parse(body.trim()).unwrap();
                assert_eq!(v.get("shards").and_then(Json::as_u64), Some(*shards as u64));
                assert_eq!(
                    bits(&ranking_of(&body)),
                    want,
                    "{label}: query {q} over {shards} shard(s) must be bit-identical \
                     to the sequential path"
                );
            }
        }
    };

    compare("compacted store");

    // A pending write moves the epoch: the shard view rebuilds and the
    // delta scans join the scatter — the bits must still agree.
    live.add("my raid controller degrades the whole array performance")
        .unwrap();
    live.add("the kernel driver update broke my wireless adapter again")
        .unwrap();
    compare("pending delta");

    for (_, addr, join) in sharded {
        let (status, _) = post(addr, "/shutdown", "");
        assert_eq!(status, 200);
        join.join().unwrap();
    }
    let (status, _) = post(ref_addr, "/shutdown", "");
    assert_eq!(status, 200);
    ref_join.join().unwrap();
    std::fs::remove_file(&store_path).ok();
    std::fs::remove_file(wal_path_for(&store_path)).ok();
}

/// The production guards: `k` is clamped to the configured cap,
/// `threshold` is a pure post-merge filter (a prefix of the unfiltered
/// ranking), `board` threads a document filter into the scans, and the
/// per-shard labeled families land on `/metrics` and validate.
#[test]
fn production_guards_clamp_filter_and_expose_per_shard_metrics() {
    let store_path = temp_store("guards.imp");
    build_store(&store_path, 80, 11);
    let live = LiveStore::open(
        &store_path,
        PipelineConfig::default(),
        IngestConfig::default(),
    )
    .unwrap();

    // Even docs on "hardware", odd docs on "software".
    let boards: HashMap<u32, String> = (0u32..80)
        .map(|d| {
            (
                d,
                if d.is_multiple_of(2) {
                    "hardware"
                } else {
                    "software"
                }
                .to_string(),
            )
        })
        .collect();
    let app = ShardServeApp::new(
        live.handle(),
        wal_path_for(&store_path),
        ShardServeConfig {
            shards: 4,
            max_k: 10,
            boards: Some(boards),
        },
    );
    let (addr, join) = spawn_pool(&app, |s| s);

    // k clamp: a request for an unbounded merge gets the ceiling.
    let (status, body) = get(addr, "/query?doc=3&k=5000");
    assert_eq!(status, 200, "{body}");
    let v = Json::parse(body.trim()).unwrap();
    assert_eq!(v.get("k").and_then(Json::as_u64), Some(10));
    assert!(ranking_of(&body).len() <= 10);

    // threshold: a pure post-merge filter — the surviving list is exactly
    // the prefix of the unfiltered ranking that clears the bar.
    let (status, body) = get(addr, "/query?doc=3&k=5");
    assert_eq!(status, 200, "{body}");
    let unfiltered = ranking_of(&body);
    assert!(unfiltered.len() >= 2, "need hits to threshold: {body}");
    let bar = unfiltered[1].1;
    let (status, body) = get(addr, &format!("/query?doc=3&k=5&threshold={bar}"));
    assert_eq!(status, 200, "{body}");
    let expect: Vec<_> = unfiltered
        .iter()
        .copied()
        .filter(|&(_, s)| s >= bar)
        .collect();
    assert_eq!(bits(&ranking_of(&body)), bits(&expect));
    let (status, _) = get(addr, "/query?doc=3&threshold=nan");
    assert_eq!(status, 400, "non-finite threshold must be a 400");

    // board filter: only documents on the requested board may surface.
    let (status, body) = get(addr, "/query?doc=2&k=10&board=hardware");
    assert_eq!(status, 200, "{body}");
    let hw = ranking_of(&body);
    assert!(
        hw.iter().all(|&(d, _)| d.is_multiple_of(2)),
        "board=hardware must only surface even docs: {body}"
    );
    let (status, body) = get(addr, "/query?doc=2&k=10&board=software");
    assert_eq!(status, 200, "{body}");
    assert!(
        ranking_of(&body).iter().all(|&(d, _)| d % 2 == 1),
        "board=software must only surface odd docs: {body}"
    );

    // Validation failures stay 400s.
    let (status, _) = post(addr, "/query", "{\"k\": 5}");
    assert_eq!(status, 400, "missing doc must be a 400");
    let (status, _) = get(addr, "/query?doc=99999");
    assert_eq!(status, 400, "out-of-range doc must be a 400");

    // The scrape carries the per-shard labeled families and validates —
    // including the duplicate-TYPE check, which would fire if the shard
    // families collided with the inner exposition.
    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    prometheus::validate_exposition(&metrics).expect("exposition must validate");
    for family in [
        "serve_shard_scans",
        "serve_shard_postings_scanned",
        "serve_shard_scan_ns",
        "serve_shard_ready",
    ] {
        for shard in 0..4 {
            assert!(
                metrics.contains(&format!("{family}{{shard=\"{shard}\"}}")),
                "missing {family}{{shard=\"{shard}\"}}:\n{metrics}"
            );
        }
    }
    // The queries above scanned clusters on every shard's behalf; the
    // readiness gauge reads 1 across the board.
    assert!(
        metrics.contains("serve_shard_ready{shard=\"0\"} 1"),
        "{metrics}"
    );

    let (status, _) = post(addr, "/shutdown", "");
    assert_eq!(status, 200);
    join.join().unwrap();
    std::fs::remove_file(&store_path).ok();
    std::fs::remove_file(wal_path_for(&store_path)).ok();
}

/// `/readyz` walks the three states: ready → degraded (some shards out,
/// still 200 — degraded serves) → unready (503) → ready again.
#[test]
fn readyz_reports_per_shard_degradation() {
    let store_path = temp_store("readyz.imp");
    build_store(&store_path, 40, 13);
    let live = LiveStore::open(
        &store_path,
        PipelineConfig::default(),
        IngestConfig::default(),
    )
    .unwrap();
    let app = ShardServeApp::new(
        live.handle(),
        wal_path_for(&store_path),
        ShardServeConfig {
            shards: 4,
            ..ShardServeConfig::default()
        },
    );
    let (addr, join) = spawn_pool(&app, |s| s);

    let state_of = |status: u16, body: &str| -> (u16, String, Vec<bool>) {
        let v = Json::parse(body.trim()).unwrap();
        let state = v.get("state").and_then(Json::as_str).unwrap().to_string();
        let shards = v
            .get("shards")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|s| s.get("ready") == Some(&Json::Bool(true)))
            .collect();
        (status, state, shards)
    };

    let (status, body) = get(addr, "/readyz");
    assert_eq!(
        state_of(status, &body),
        (200, "ready".to_string(), vec![true; 4]),
        "{body}"
    );

    app.stats().mark_unready(2);
    let (status, body) = get(addr, "/readyz");
    assert_eq!(
        state_of(status, &body),
        (200, "degraded".to_string(), vec![true, true, false, true]),
        "a partially-down shard set still serves: {body}"
    );

    for shard in 0..4 {
        app.stats().mark_unready(shard);
    }
    let (status, body) = get(addr, "/readyz");
    assert_eq!(status, 503, "no ready shards means unready: {body}");
    assert_eq!(state_of(status, &body).1, "unready");

    app.stats().mark_all_ready();
    let (status, body) = get(addr, "/readyz");
    assert_eq!(state_of(status, &body).1, "ready", "{body}");

    let (status, _) = post(addr, "/shutdown", "");
    assert_eq!(status, 200);
    join.join().unwrap();
    std::fs::remove_file(&store_path).ok();
    std::fs::remove_file(wal_path_for(&store_path)).ok();
}

/// The admission-control promise: a shed request is refused whole — it
/// never reaches the handler, so it never starts a scatter. A single
/// wedged worker sheds the backlog with `Retry-After` instead of running
/// late queries, and the per-shard scan counters stay at zero.
#[test]
fn shed_requests_never_reach_the_scatter_path() {
    let registry = Registry::global();
    let registry_was = registry.is_enabled();
    registry.set_enabled(true);
    let shed_before = registry.snapshot().counter("serve/shed_total");

    let store_path = temp_store("shed.imp");
    build_store(&store_path, 40, 17);
    let live = LiveStore::open(
        &store_path,
        PipelineConfig::default(),
        IngestConfig::default(),
    )
    .unwrap();
    let app = ShardServeApp::new(
        live.handle(),
        wal_path_for(&store_path),
        ShardServeConfig {
            shards: 2,
            ..ShardServeConfig::default()
        },
    );
    let inner = app.clone();
    // One worker, a one-slot queue, and a deadline shorter than the wedge:
    // everything behind the sleeper must shed, nothing may run late.
    let server = PoolServer::bind("127.0.0.1:0")
        .unwrap()
        .with_workers(1)
        .with_queue_depth(1)
        .with_deadline(Duration::from_millis(250));
    let addr = server.local_addr().unwrap();
    app.set_stopper(server.stopper().unwrap());
    let join = std::thread::spawn(move || {
        server.run(Arc::new(move |req: &forum_obs::serve::Request| {
            if req.path == "/sleep" {
                std::thread::sleep(Duration::from_millis(700));
                return forum_obs::serve::Response::text(200, "slept\n");
            }
            inner.handle(req)
        }))
    });

    // Wedge the only worker.
    let sleeper = std::thread::spawn(move || get(addr, "/sleep"));
    std::thread::sleep(Duration::from_millis(100));

    // Flood queries while the worker is wedged: every one must shed with
    // a 503 and a Retry-After hint — none may execute.
    let floods: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                http_raw(addr, "GET /query?doc=1&k=5 HTTP/1.1\r\nHost: t\r\n\r\n")
            })
        })
        .collect();
    for flood in floods {
        let raw = flood.join().unwrap();
        assert!(
            raw.starts_with("HTTP/1.1 503"),
            "wedged pool must shed, got:\n{raw}"
        );
        assert!(
            raw.contains("Retry-After:"),
            "shed response must carry Retry-After:\n{raw}"
        );
    }
    let (status, body) = sleeper.join().unwrap();
    assert_eq!((status, body.as_str()), (200, "slept\n"));

    // The promise itself: no shed request started a scatter — the
    // per-app shard counters never moved.
    let scanned: u64 = (0..2).map(|i| app.stats().counters(i).scans).sum();
    assert_eq!(
        scanned, 0,
        "a shed request must never partially execute a scatter"
    );
    let shed_after = registry.snapshot().counter("serve/shed_total");
    assert!(
        shed_after >= shed_before + 4,
        "all four floods must be counted as shed ({shed_before} -> {shed_after})"
    );

    // The pool recovers: once the wedge clears, queries serve again.
    let (status, body) = get(addr, "/query?doc=1&k=5");
    assert_eq!(status, 200, "{body}");
    assert!(
        (0..2).map(|i| app.stats().counters(i).scans).sum::<u64>() > 0,
        "the recovered pool must scan again"
    );

    let (status, _) = post(addr, "/shutdown", "");
    assert_eq!(status, 200);
    join.join().unwrap();
    registry.set_enabled(registry_was);
    std::fs::remove_file(&store_path).ok();
    std::fs::remove_file(wal_path_for(&store_path)).ok();
}
