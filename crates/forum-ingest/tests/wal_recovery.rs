//! Crash-recovery fuzzing for the write-ahead log: every truncation point
//! and a byte-flip sweep. Recovery must return the valid record prefix or a
//! structural error — never panic, and never touch the snapshot the log
//! rides beside.

use forum_ingest::{Wal, WalError, WalRecord};
use std::path::{Path, PathBuf};

const HEADER_LEN: usize = 16;
const TAG: u64 = 0x5eed_f00d_cafe_0001;

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("forum-ingest-walfuzz-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn sample_records() -> Vec<WalRecord> {
    vec![
        WalRecord::Add {
            text: "first post about RAID controllers".into(),
        },
        WalRecord::Add {
            text: "second post about printer jams and paper trays".into(),
        },
        WalRecord::Update {
            doc: 0,
            text: "first post, now about degraded RAID arrays".into(),
        },
        WalRecord::Delete { doc: 1 },
        WalRecord::Add {
            text: String::new(),
        },
    ]
}

/// Writes a fresh WAL holding `records` and returns its raw bytes.
fn build_wal(path: &Path, records: &[WalRecord]) -> Vec<u8> {
    std::fs::remove_file(path).ok();
    let (mut wal, replayed) = Wal::open(path, TAG).unwrap();
    assert!(replayed.is_empty());
    for r in records {
        wal.append(r).unwrap();
    }
    std::fs::read(path).unwrap()
}

/// The number of records a freshly reopened log reports, plus the check
/// that a *second* reopen agrees (recovery truncates to what it kept, so
/// it must be idempotent).
fn recovered_len(path: &Path, records: &[WalRecord]) -> Result<usize, WalError> {
    let (_, first) = Wal::open(path, TAG)?;
    for (got, want) in first.iter().zip(records) {
        assert_eq!(got, want, "recovered records must be a prefix");
    }
    let (_, second) = Wal::open(path, TAG)?;
    assert_eq!(first, second, "recovery must be idempotent");
    Ok(first.len())
}

#[test]
fn truncation_at_every_offset_recovers_a_prefix() {
    let path = temp_path("truncate.wal");
    let records = sample_records();
    let full = build_wal(&path, &records);

    let mut last_recovered = records.len();
    for cut in (0..=full.len()).rev() {
        std::fs::write(&path, &full[..cut]).unwrap();
        let n = recovered_len(&path, &records)
            .unwrap_or_else(|e| panic!("cut at {cut}: recovery errored: {e}"));
        // Shorter files can only lose records, and a cut below the header
        // resets to an empty log.
        assert!(n <= last_recovered, "cut at {cut} recovered more records");
        if cut < HEADER_LEN {
            assert_eq!(n, 0, "cut at {cut} is inside the header");
        }
        last_recovered = n;
    }
    assert_eq!(last_recovered, 0);

    // The full file recovers everything.
    std::fs::write(&path, &full).unwrap();
    assert_eq!(recovered_len(&path, &records).unwrap(), records.len());
    std::fs::remove_file(&path).ok();
}

#[test]
fn byte_flips_recover_a_prefix_or_error_cleanly() {
    let path = temp_path("byteflip.wal");
    let records = sample_records();
    let full = build_wal(&path, &records);

    // Stride mirrors the snapshot corruption sweep in `intentmatch::store`:
    // cheap, but hits length fields, checksums, payloads, and the header.
    for pos in (0..full.len()).step_by(3) {
        let mut bytes = full.clone();
        bytes[pos] ^= 0x5A;
        std::fs::write(&path, &bytes).unwrap();
        match Wal::open(&path, TAG) {
            Ok((_, recovered)) => {
                assert!(recovered.len() <= records.len(), "flip at {pos}");
                for (got, want) in recovered.iter().zip(&records) {
                    if pos >= HEADER_LEN {
                        assert_eq!(got, want, "flip at {pos}: kept records must match");
                    }
                }
            }
            Err(WalError::Corrupt { .. }) => {} // structural: header or undecodable payload
            Err(WalError::Io(e)) => panic!("flip at {pos}: unexpected I/O error {e}"),
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn append_after_recovery_continues_the_log() {
    let path = temp_path("continue.wal");
    let records = sample_records();
    let full = build_wal(&path, &records);

    // Cut into the middle of the last record, reopen, append a new record:
    // the torn tail is gone, the new record lands after the valid prefix.
    std::fs::write(&path, &full[..full.len() - 3]).unwrap();
    let (mut wal, recovered) = Wal::open(&path, TAG).unwrap();
    assert_eq!(recovered.len(), records.len() - 1);
    let extra = WalRecord::Add {
        text: "post-recovery append".into(),
    };
    wal.append(&extra).unwrap();

    let (_, replayed) = Wal::open(&path, TAG).unwrap();
    assert_eq!(replayed.len(), records.len());
    assert_eq!(replayed.last(), Some(&extra));
    std::fs::remove_file(&path).ok();
}

#[test]
fn header_corruption_is_a_structural_error() {
    let path = temp_path("badheader.wal");
    let records = sample_records();
    let full = build_wal(&path, &records);

    // Wrong magic.
    let mut bytes = full.clone();
    bytes[0..4].copy_from_slice(b"NOPE");
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        Wal::open(&path, TAG),
        Err(WalError::Corrupt { .. })
    ));

    // Wrong version.
    let mut bytes = full.clone();
    bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        Wal::open(&path, TAG),
        Err(WalError::Corrupt { .. })
    ));

    // A foreign snapshot tag is not corruption: the log belongs to an older
    // snapshot and its records are already folded in, so it is discarded.
    std::fs::write(&path, &full).unwrap();
    let (_, records) = Wal::open(&path, TAG ^ 1).unwrap();
    assert!(records.is_empty());
    std::fs::remove_file(&path).ok();
}
