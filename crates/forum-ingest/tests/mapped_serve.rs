//! Socket-level integration test of the mapped serving tier: a real
//! [`forum_shard::PoolServer`] over a real [`forum_ingest::MappedServeApp`]
//! whose only state is an `Arc<intentmatch::StoreView>` — every ranking
//! served off the mmap view must be **bit-identical** to the heap
//! engine's, at every worker count.

use forum_corpus::{Corpus, Domain, GenConfig};
use forum_ingest::{pending_wal_records, IngestConfig, LiveStore, MappedServeApp};
use forum_obs::json::Json;
use forum_shard::PoolServer;
use intentmatch::{store, IntentPipeline, PipelineConfig, PostCollection, StoreView};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("forum-ingest-mapped-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn build_store(
    path: &std::path::Path,
    num_posts: usize,
    seed: u64,
) -> (PostCollection, IntentPipeline) {
    let corpus = Corpus::generate(&GenConfig {
        domain: Domain::TechSupport,
        num_posts,
        seed,
    });
    let coll = PostCollection::from_corpus(&corpus);
    let pipe = IntentPipeline::build(&coll, &PipelineConfig::default());
    store::save(path, &coll, &pipe).unwrap();
    (coll, pipe)
}

/// One HTTP exchange over a fresh connection; returns (status, body).
fn http(addr: SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(raw.as_bytes()).unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    let status = out
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = out
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    http(addr, &format!("GET {target} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

fn post(addr: SocketAddr, target: &str, body: &str) -> (u16, String) {
    http(
        addr,
        &format!(
            "POST {target} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// Collapses a ranking into comparable-by-`Eq` form (f64 → raw bits).
fn bits(hits: &[(u32, f64)]) -> Vec<(u32, u64)> {
    hits.iter().map(|&(d, s)| (d, s.to_bits())).collect()
}

/// The `results` array of a `/query` response as `(doc, score)` pairs.
fn ranking_of(body: &str) -> Vec<(u32, f64)> {
    let v = Json::parse(body.trim()).expect("query response must be JSON");
    v.get("results")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|r| {
            (
                r.get("doc").unwrap().as_u64().unwrap() as u32,
                r.get("score").unwrap().as_f64().unwrap(),
            )
        })
        .collect()
}

#[test]
fn mapped_server_matches_heap_rankings_at_every_worker_count() {
    const K: usize = 5;
    let store_path = temp_dir().join("mapped-e2e.imp");
    let (coll, pipe) = build_store(&store_path, 100, 11);
    let heap: Vec<Vec<(u32, f64)>> = (0..coll.len()).map(|q| pipe.top_k(&coll, q, K)).collect();

    for workers in [1usize, 2, 4, 8] {
        let view = Arc::new(StoreView::open(&store_path).unwrap());
        let app = MappedServeApp::new(view.clone());
        let server = PoolServer::bind("127.0.0.1:0")
            .unwrap()
            .with_workers(workers);
        let addr = server.local_addr().unwrap();
        app.set_stopper(server.stopper().unwrap());
        let handler_app = app.clone();
        let join = std::thread::spawn(move || {
            server.run(Arc::new(move |req: &forum_obs::serve::Request| {
                handler_app.handle(req)
            }))
        });

        // Readiness reflects the mapped view, nothing resident yet.
        let (status, body) = get(addr, "/readyz");
        assert_eq!(status, 200, "{body}");
        let ready = Json::parse(body.trim()).unwrap();
        assert_eq!(ready.get("ready"), Some(&Json::Bool(true)));
        let detail = ready.get("detail").unwrap();
        assert_eq!(detail.get("mapped"), Some(&Json::Bool(true)));
        assert_eq!(
            detail.get("num_docs").unwrap().as_u64(),
            Some(coll.len() as u64)
        );

        // Every query over the socket, against the heap baseline. The
        // pool serves them across `workers` threads; scores must agree
        // bit for bit, not approximately.
        for (q, expected) in heap.iter().enumerate() {
            let (status, body) = post(addr, &format!("/query?doc={q}&k={K}"), "");
            assert_eq!(status, 200, "query {q} at {workers} workers: {body}");
            assert_eq!(
                bits(expected),
                bits(&ranking_of(&body)),
                "query {q} at {workers} workers"
            );
        }

        // Only consulted clusters materialized, and never more than exist.
        let resident = view.num_resident_clusters();
        assert!(resident > 0, "queries must have materialized something");
        assert!(resident <= view.num_clusters());

        // EXPLAIN needs the hydrated engine; the mapped reader says so.
        let (status, body) = post(addr, "/query?doc=0&explain=1", "");
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("explain"), "{body}");

        let (status, _) = post(addr, "/shutdown", "");
        assert_eq!(status, 200);
        join.join().unwrap();
    }
}

#[test]
fn pending_wal_records_gate_the_mapped_reader() {
    let store_path = temp_dir().join("mapped-pending.imp");
    let (coll, _pipe) = build_store(&store_path, 30, 12);
    assert_eq!(pending_wal_records(&store_path).unwrap(), 0);

    // One durable write: the snapshot is now stale, the gate must trip.
    let mut live = LiveStore::open(
        &store_path,
        PipelineConfig::default(),
        IngestConfig::default(),
    )
    .unwrap();
    live.add_batch(&["The RAID rebuild stalls at the same block every time.".to_string()])
        .unwrap();
    assert_eq!(pending_wal_records(&store_path).unwrap(), 1);

    // Compaction folds the delta in and resets the WAL; the mapped view
    // then serves the new snapshot bit-identically to the heap engine.
    live.compact().unwrap();
    assert_eq!(pending_wal_records(&store_path).unwrap(), 0);
    drop(live);
    let view = StoreView::open(&store_path).unwrap();
    assert_eq!(view.num_docs(), coll.len() + 1);
    let (coll2, pipe2) = store::load(&store_path).unwrap();
    let mut scratch = intentmatch::pipeline::QueryScratch::new();
    for q in 0..coll2.len() {
        assert_eq!(
            bits(&pipe2.top_k(&coll2, q, 5)),
            bits(&view.top_k(q, 5, &mut scratch).unwrap()),
            "query {q}"
        );
    }
}
