//! In-process integration test of `intentmatch serve`'s application layer:
//! a real [`forum_obs::serve::HttpServer`] on a real socket, the real
//! [`forum_ingest::ServeApp`] over a real store — health, readiness,
//! Prometheus scrape, queries (bit-identical to the offline engine),
//! EXPLAIN, the event log, and clean shutdown.

use forum_corpus::{Corpus, Domain, GenConfig};
use forum_ingest::{wal_path_for, IngestConfig, LiveStore, ServeApp};
use forum_obs::json::Json;
use forum_obs::serve::HttpServer;
use forum_obs::{prometheus, EventLog, Registry};
use intentmatch::{store, IntentPipeline, PipelineConfig, PostCollection, QueryEngine};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;

fn temp_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("forum-ingest-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn build_store(path: &std::path::Path, num_posts: usize, seed: u64) {
    let corpus = Corpus::generate(&GenConfig {
        domain: Domain::TechSupport,
        num_posts,
        seed,
    });
    let coll = PostCollection::from_corpus(&corpus);
    let pipe = IntentPipeline::build(&coll, &PipelineConfig::default());
    store::save(path, &coll, &pipe).unwrap();
}

/// One HTTP exchange over a fresh connection; returns (status, body).
fn http(addr: SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(raw.as_bytes()).unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    let status = out
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = out
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    http(addr, &format!("GET {target} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

fn post(addr: SocketAddr, target: &str, body: &str) -> (u16, String) {
    http(
        addr,
        &format!(
            "POST {target} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// Collapses a ranking into comparable-by-`Eq` form (f64 → raw bits).
fn bits(hits: &[(u32, f64)]) -> Vec<(u32, u64)> {
    hits.iter().map(|&(d, s)| (d, s.to_bits())).collect()
}

/// The `results` array of a `/query` response as `(doc, score)` pairs.
fn ranking_of(body: &str) -> Vec<(u32, f64)> {
    let v = Json::parse(body.trim()).expect("query response must be JSON");
    v.get("results")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|r| {
            (
                r.get("doc").unwrap().as_u64().unwrap() as u32,
                r.get("score").unwrap().as_f64().unwrap(),
            )
        })
        .collect()
}

#[test]
fn serve_app_end_to_end_over_a_real_socket() {
    let registry = Registry::global();
    let registry_was = registry.is_enabled();
    registry.set_enabled(true);
    let events = EventLog::global();
    let events_was = events.is_enabled();
    events.set_enabled(true);

    let store_path = temp_store("e2e.imp");
    build_store(&store_path, 80, 7);
    let mut live = LiveStore::open(
        &store_path,
        PipelineConfig::default(),
        IngestConfig::default(),
    )
    .unwrap();
    let app = ServeApp::new(live.handle(), wal_path_for(&store_path));

    let server = HttpServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap();
    app.set_stopper(server.stopper().unwrap());
    let handler_app = app.clone();
    let join = std::thread::spawn(move || {
        server.run(Arc::new(move |req: &forum_obs::serve::Request| {
            handler_app.handle(req)
        }))
    });

    // Liveness and readiness.
    let (status, body) = get(addr, "/healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    let (status, body) = get(addr, "/readyz");
    assert_eq!(status, 200, "{body}");
    let ready = Json::parse(body.trim()).unwrap();
    assert_eq!(ready.get("ready"), Some(&Json::Bool(true)));
    let detail = ready.get("detail").unwrap();
    assert_eq!(detail.get("store_loaded"), Some(&Json::Bool(true)));
    assert_eq!(detail.get("wal_writable"), Some(&Json::Bool(true)));
    assert_eq!(detail.get("num_docs").unwrap().as_u64(), Some(80));
    assert_eq!(detail.get("pending_docs").unwrap().as_u64(), Some(0));
    assert!(detail.get("epoch").unwrap().as_u64().is_some());

    // A scrape BEFORE any query must already expose the pre-registered
    // request-level histogram, and the exposition must validate.
    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    prometheus::validate_exposition(&metrics).expect("exposition must validate");
    assert!(
        metrics.contains("serve_online_query_ns"),
        "pre-registered histogram missing:\n{metrics}"
    );

    // Queries: bit-identical to the offline engine over the same store.
    let (coll, pipe) = store::load(&store_path).unwrap();
    let engine = QueryEngine::new(&coll, &pipe);
    for q in [0usize, 3, 17] {
        let (status, body) = post(addr, "/query", &format!("{{\"doc\": {q}, \"k\": 5}}"));
        assert_eq!(status, 200, "{body}");
        assert_eq!(
            bits(&ranking_of(&body)),
            bits(&engine.top_k(q, 5)),
            "query {q} must be bit-identical to the offline engine"
        );
    }

    // EXPLAIN: same ranking, plus the trace.
    let (status, body) = get(addr, "/query?doc=3&k=5&explain=1");
    assert_eq!(status, 200, "{body}");
    assert_eq!(bits(&ranking_of(&body)), bits(&engine.top_k(3, 5)));
    let v = Json::parse(body.trim()).unwrap();
    let explain = v.get("explain").expect("explain=1 must attach the trace");
    assert!(
        !explain
            .get("clusters")
            .unwrap()
            .as_arr()
            .unwrap()
            .is_empty()
            || explain.get("results").is_some()
    );

    // Bad input handling.
    let (status, _) = post(addr, "/query", "{\"k\": 5}");
    assert_eq!(status, 400, "missing doc must be a 400");
    let (status, _) = get(addr, "/query?doc=99999");
    assert_eq!(status, 400, "out-of-range doc must be a 400");
    let (status, _) = post(addr, "/query", "not json");
    assert_eq!(status, 400);
    let (status, _) = http(addr, "PUT /query HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 405);

    // A pending write: queries still answer (over the epoch view), but
    // EXPLAIN refuses with 409 — it traces the compacted snapshot only.
    live.add("my raid controller degrades the whole array performance")
        .unwrap();
    let (status, _) = get(addr, "/query?doc=3&k=5&explain=1");
    assert_eq!(status, 409);
    let (status, body) = get(addr, "/query?doc=3&k=5");
    assert_eq!(status, 200, "{body}");
    let (status, body) = get(addr, "/readyz");
    assert_eq!(status, 200);
    let ready = Json::parse(body.trim()).unwrap();
    assert_eq!(
        ready
            .get("detail")
            .unwrap()
            .get("pending_docs")
            .unwrap()
            .as_u64(),
        Some(1)
    );

    // The event log saw the epoch swaps; every line is flat JSONL.
    let (status, body) = get(addr, "/events?tail=50");
    assert_eq!(status, 200);
    let mut kinds = Vec::new();
    for line in body.lines() {
        let e = Json::parse(line).expect("event lines must parse");
        kinds.push(e.get("kind").unwrap().as_str().unwrap().to_string());
    }
    assert!(
        kinds.iter().any(|k| k == "epoch_swap"),
        "expected an epoch_swap event, got {kinds:?}"
    );

    // After the queries above, the scrape shows recorded observations and
    // the windowed-rate gauges (two spaced snapshots exist by now).
    let (_, metrics) = get(addr, "/metrics");
    let samples = prometheus::validate_exposition(&metrics).unwrap();
    assert!(samples > 0);
    assert!(metrics.contains("serve_online_query_ns_count"), "{metrics}");
    assert!(metrics.contains("serve_http_requests"), "{metrics}");

    // Clean shutdown via the route.
    let (status, _) = post(addr, "/shutdown", "");
    assert_eq!(status, 200);
    join.join().unwrap();

    registry.set_enabled(registry_was);
    events.set_enabled(events_was);
    std::fs::remove_file(&store_path).ok();
    std::fs::remove_file(wal_path_for(&store_path)).ok();
}

/// `POST /query` with a caller-pinned `X-Intentmatch-Trace` id.
fn post_traced(addr: SocketAddr, target: &str, body: &str, trace_id: &str) -> (u16, String) {
    http(
        addr,
        &format!(
            "POST {target} HTTP/1.1\r\nHost: t\r\nX-Intentmatch-Trace: {trace_id}\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// The tentpole's two acceptance properties, over a real socket: turning
/// tracing on must not move a single result bit, and a query over the
/// slow threshold must land in `/slowlog` with its EXPLAIN and per-phase
/// cost counters attached.
#[test]
fn tracing_is_bit_identical_and_slow_queries_reach_the_slowlog() {
    let registry = Registry::global();
    let registry_was = registry.is_enabled();
    registry.set_enabled(true);

    let store_path = temp_store("trace.imp");
    build_store(&store_path, 60, 11);
    let live = LiveStore::open(
        &store_path,
        PipelineConfig::default(),
        IngestConfig::default(),
    )
    .unwrap();
    let app = ServeApp::new(live.handle(), wal_path_for(&store_path));
    let server = HttpServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap();
    app.set_stopper(server.stopper().unwrap());
    let handler_app = app.clone();
    let join = std::thread::spawn(move || {
        server.run(Arc::new(move |req: &forum_obs::serve::Request| {
            handler_app.handle(req)
        }))
    });

    let traces = forum_obs::TraceStore::global();
    let traces_was = traces.is_enabled();

    // Baseline rankings with tracing off: no trace id in the response.
    traces.set_enabled(false);
    let queries = [0u64, 5, 9];
    let mut baseline = Vec::new();
    for q in queries {
        let (status, body) = post(addr, "/query", &format!("{{\"doc\": {q}, \"k\": 5}}"));
        assert_eq!(status, 200, "{body}");
        let v = Json::parse(body.trim()).unwrap();
        assert!(
            v.get("trace").is_none(),
            "tracing off must not emit a trace id: {body}"
        );
        baseline.push(bits(&ranking_of(&body)));
    }

    // Tracing on (keep everything, nothing is slow yet): every ranking
    // must match the untraced baseline bit for bit, the caller's header
    // id must come back and resolve on /traces/<id>.
    traces.set_enabled(true);
    traces.set_sample_every(1);
    traces.set_slow_threshold(std::time::Duration::from_secs(3600));
    for (i, q) in queries.iter().enumerate() {
        let id = format!("pin-{q}");
        let (status, body) =
            post_traced(addr, "/query", &format!("{{\"doc\": {q}, \"k\": 5}}"), &id);
        assert_eq!(status, 200, "{body}");
        assert_eq!(
            bits(&ranking_of(&body)),
            baseline[i],
            "tracing on must be bit-identical for query {q}"
        );
        let v = Json::parse(body.trim()).unwrap();
        assert_eq!(
            v.get("trace").and_then(Json::as_str),
            Some(id.as_str()),
            "propagated trace id must come back: {body}"
        );
        let (status, body) = get(addr, &format!("/traces/{id}"));
        assert_eq!(status, 200, "trace {id} must resolve: {body}");
        let t = Json::parse(body.trim()).unwrap();
        assert_eq!(t.get("kind").and_then(Json::as_str), Some("query"));
        assert!(t.get("total_ns").and_then(Json::as_u64).is_some());
        let spans = t.get("spans").and_then(Json::as_arr).unwrap();
        assert!(
            spans
                .iter()
                .any(|s| s.get("name").and_then(Json::as_str) == Some("engine/algo2")),
            "compacted-path trace must carry the engine span: {body}"
        );
    }

    // Slow threshold zero: the next query is by definition slow — it must
    // land in /slowlog with EXPLAIN and the per-phase cost counters.
    traces.set_slow_threshold(std::time::Duration::ZERO);
    let (status, body) = post_traced(addr, "/query", "{\"doc\": 7, \"k\": 4}", "pin-slow");
    assert_eq!(status, 200, "{body}");
    let (status, body) = get(addr, "/slowlog?tail=100");
    assert_eq!(status, 200);
    let v = Json::parse(body.trim()).unwrap();
    let slow = v
        .get("traces")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .find(|t| t.get("id").and_then(Json::as_str) == Some("pin-slow"))
        .unwrap_or_else(|| panic!("slow query must be in the slowlog: {body}"))
        .clone();
    assert_eq!(slow.get("slow"), Some(&Json::Bool(true)));
    assert!(
        slow.get("explain").is_some(),
        "slow trace must carry its EXPLAIN: {slow:?}"
    );
    let costs = slow.get("costs").expect("slow trace must carry costs");
    assert!(
        costs
            .get("postings_scanned")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            > 0
            || costs
                .get("clusters_routed")
                .and_then(Json::as_u64)
                .unwrap_or(0)
                > 0,
        "cost counters must be populated: {slow:?}"
    );

    // Restore the global store's defaults before the sibling test's
    // scrapes see them.
    traces.set_slow_threshold(std::time::Duration::MAX);
    traces.set_enabled(traces_was);

    let (status, _) = post(addr, "/shutdown", "");
    assert_eq!(status, 200);
    join.join().unwrap();
    registry.set_enabled(registry_was);
    std::fs::remove_file(&store_path).ok();
    std::fs::remove_file(wal_path_for(&store_path)).ok();
}
