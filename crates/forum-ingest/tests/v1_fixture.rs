//! Compatibility tests against the **checked-in** v1 store fixture at
//! `testdata/legacy-v1.imp`: legacy stores must keep loading
//! transparently, and v1 → v2 migration must preserve rankings bit for
//! bit. CI's `store_smoke` step migrates the same fixture through the
//! real `intentmatch migrate` binary.
//!
//! The fixture is a real v1 file committed to the repository (not
//! regenerated per run) so decode compatibility is tested against bytes
//! a current build did not produce. To regenerate after an intentional
//! model change:
//!
//! ```text
//! cargo test -p forum-ingest --test v1_fixture -- --ignored regenerate
//! ```

use intentmatch::pipeline::QueryScratch;
use intentmatch::{store, IntentPipeline, PipelineConfig, PostCollection, StoreView};
use std::path::PathBuf;

fn testdata() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../testdata")
}

fn fixture_posts() -> Vec<String> {
    let text = std::fs::read_to_string(testdata().join("legacy-posts.txt"))
        .expect("testdata/legacy-posts.txt is checked in");
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(str::to_string)
        .collect()
}

/// Regenerates the committed fixture. Ignored by default: the whole
/// point is that normal runs read bytes an older build wrote.
#[test]
#[ignore = "rewrites the checked-in fixture; run explicitly after model changes"]
fn regenerate() {
    let posts = fixture_posts();
    let collection = PostCollection::from_raw_texts(&posts);
    let pipeline = IntentPipeline::build(&collection, &PipelineConfig::default());
    let path = testdata().join("legacy-v1.imp");
    store::save_v1(&path, &collection, &pipeline).unwrap();
    eprintln!(
        "wrote {} ({} bytes)",
        path.display(),
        std::fs::metadata(&path).unwrap().len()
    );
}

#[test]
fn checked_in_v1_store_loads_and_migrates_bit_identically() {
    let v1_path = testdata().join("legacy-v1.imp");
    let head = std::fs::read(&v1_path).expect("testdata/legacy-v1.imp is checked in");
    assert_eq!(&head[0..4], b"IMP1", "fixture must stay a v1 file");

    // Transparent load of the legacy format.
    let (collection, pipeline) = store::load(&v1_path).expect("v1 store loads");
    assert_eq!(collection.len(), fixture_posts().len());
    assert!(pipeline.num_clusters() > 0);

    // The legacy layout has no section directory for the mapped reader.
    assert!(StoreView::open(&v1_path).is_err());

    // Migration (load + save, exactly what `intentmatch migrate` runs)
    // produces a v2 file whose mapped rankings match the hydrated v1
    // state bit for bit.
    let dir = std::env::temp_dir().join(format!("intentmatch-v1-fixture-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let v2_path = dir.join("migrated.imp");
    store::save(&v2_path, &collection, &pipeline).expect("save v2");
    let view = StoreView::open(&v2_path).expect("migrated store opens mapped");
    assert_eq!(view.num_docs(), collection.len());
    let mut scratch = QueryScratch::new();
    for q in 0..collection.len() {
        let heap = pipeline.top_k(&collection, q, 5);
        let mapped = view.top_k(q, 5, &mut scratch).expect("mapped query");
        let as_bits =
            |r: &[(u32, f64)]| r.iter().map(|&(d, s)| (d, s.to_bits())).collect::<Vec<_>>();
        assert_eq!(as_bits(&heap), as_bits(&mapped), "query {q}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
