//! Equivalence and corruption tests for the v2 store + `StoreView`:
//!
//! * heap-decoded vs mmap vs pread query paths are **bit-identical**
//!   (scores compared by their IEEE-754 bit patterns),
//! * the property holds across 1/2/4/8 worker threads,
//! * every truncation prefix of a valid store fails `StoreView::open`
//!   cleanly (no panic, no partial state),
//! * flipping bytes in the header or any section is detected by the
//!   checksums on (at the latest) first touch of that section,
//! * v1 stores stay loadable and v1→v2 migration preserves every byte of
//!   the logical state.

use intentmatch::pipeline::{query_cluster_groups, PipelineConfig};
use intentmatch::store::{self, StoreError};
use intentmatch::store_v2;
use intentmatch::view::{top_k_many, BackingMode, HeapStore, StoreView};
use intentmatch::{IntentPipeline, PostCollection, QueryEngine};
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

const K: usize = 5;

fn build(posts: usize, seed: u64) -> (PostCollection, IntentPipeline) {
    let corpus = forum_corpus::Corpus::generate(&forum_corpus::GenConfig {
        domain: forum_corpus::Domain::TechSupport,
        num_posts: posts,
        seed,
    });
    let coll = PostCollection::from_corpus(&corpus);
    let pipe = IntentPipeline::build(&coll, &PipelineConfig::default());
    (coll, pipe)
}

/// One shared built state + saved v2 store for the whole test binary
/// (building the pipeline is the expensive part).
fn fixture() -> (&'static (PostCollection, IntentPipeline), &'static Path) {
    static BUILT: OnceLock<(PostCollection, IntentPipeline)> = OnceLock::new();
    static STORE: OnceLock<PathBuf> = OnceLock::new();
    let built = BUILT.get_or_init(|| build(150, 77));
    let path = STORE.get_or_init(|| {
        let dir = std::env::temp_dir().join("intentmatch-store-view-test");
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("fixture.imp");
        store::save(&path, &built.0, &built.1).expect("save v2");
        path
    });
    (built, path)
}

/// Scores compared as raw bit patterns: "bit-identical" means exactly
/// that, not merely approximately equal.
fn bits(results: &[(u32, f64)]) -> Vec<(u32, u64)> {
    results.iter().map(|&(d, s)| (d, s.to_bits())).collect()
}

#[test]
fn mapped_results_bit_identical_to_heap() {
    let ((coll, pipe), path) = fixture();
    let mapped = StoreView::open_with(path, BackingMode::Mmap).expect("mmap open");
    let pread = StoreView::open_with(path, BackingMode::Pread).expect("pread open");
    assert_eq!(mapped.backing_name(), "mmap");
    assert_eq!(pread.backing_name(), "pread");
    let mut scratch = intentmatch::pipeline::QueryScratch::new();
    for q in 0..coll.len() {
        let heap = pipe.top_k(coll, q, K);
        let via_mmap = mapped.top_k(q, K, &mut scratch).expect("mmap query");
        let via_pread = pread.top_k(q, K, &mut scratch).expect("pread query");
        assert_eq!(bits(&heap), bits(&via_mmap), "query {q} (mmap)");
        assert_eq!(bits(&heap), bits(&via_pread), "query {q} (pread)");
    }
}

#[test]
fn property_bit_identical_across_thread_counts() {
    let ((coll, pipe), path) = fixture();
    let queries: Vec<usize> = (0..coll.len()).collect();
    let (heap_coll, heap_pipe) = store::decode(&store::encode(coll, pipe)).expect("clone state");
    let heap = HeapStore {
        collection: heap_coll,
        pipeline: heap_pipe,
    };
    let baseline = top_k_many(&heap, &queries, K, 1).expect("heap baseline");
    let view = StoreView::open(path).expect("open");
    for threads in [1usize, 2, 4, 8] {
        let mapped = top_k_many(&view, &queries, K, threads).expect("mapped batch");
        assert_eq!(baseline.len(), mapped.len());
        for (q, (a, b)) in baseline.iter().zip(&mapped).enumerate() {
            assert_eq!(bits(a), bits(b), "query {q} at {threads} threads");
        }
        // The engine-accelerated heap path sits behind the same trait.
        let engine = QueryEngine::new(coll, pipe).with_threads(threads);
        let via_engine = top_k_many(&engine, &queries, K, 1).expect("engine batch");
        for (q, (a, b)) in baseline.iter().zip(&via_engine).enumerate() {
            assert_eq!(bits(a), bits(b), "engine query {q} at {threads} threads");
        }
    }
}

#[test]
fn hydrated_v2_store_is_structurally_identical() {
    let ((coll, pipe), path) = fixture();
    let (coll2, pipe2) = store::load(path).expect("load v2");
    // The strongest equality we can state: the v1 encoding of the
    // hydrated state is byte-for-byte the v1 encoding of the original.
    assert_eq!(store::encode(&coll2, &pipe2), store::encode(coll, pipe));
}

#[test]
fn lazy_loading_touches_only_consulted_clusters() {
    let ((_, pipe), path) = fixture();
    let view = StoreView::open(path).expect("open");
    assert_eq!(view.num_resident_clusters(), 0, "nothing resident at open");
    let q = 0usize;
    let mut scratch = intentmatch::pipeline::QueryScratch::new();
    view.top_k(q, K, &mut scratch).expect("query");
    let consulted = query_cluster_groups(&pipe.doc_segments, q).len();
    assert_eq!(
        view.num_resident_clusters(),
        consulted,
        "exactly the consulted clusters materialize"
    );
    let resident = view.resident_clusters();
    for g in query_cluster_groups(&pipe.doc_segments, q) {
        assert!(resident[g.cluster], "cluster {} resident", g.cluster);
    }
}

#[test]
fn header_answers_stats_without_touching_sections() {
    let ((coll, pipe), path) = fixture();
    let view = StoreView::open(path).expect("open");
    assert_eq!(view.num_docs(), coll.len());
    assert_eq!(view.num_clusters(), pipe.clusters.len());
    assert_eq!(view.num_noise(), pipe.num_noise);
    assert_eq!(view.weighted_combination(), pipe.weighted_combination);
    for (c, meta) in view.cluster_meta().iter().enumerate() {
        let index = &pipe.clusters[c].index;
        assert_eq!(meta.units as usize, index.num_units(), "cluster {c}");
        assert_eq!(meta.vocab as usize, index.vocabulary().len(), "cluster {c}");
        assert_eq!(meta.postings as usize, index.num_postings(), "cluster {c}");
        assert_eq!(
            meta.avg_unique.to_bits(),
            index.avg_unique_terms().to_bits()
        );
    }
    assert_eq!(
        view.num_resident_clusters(),
        0,
        "stats must not materialize"
    );
}

#[test]
fn every_truncation_prefix_fails_cleanly() {
    // A small dedicated store: the fuzz opens the file once per prefix.
    let (tiny_coll, tiny_pipe) = build(12, 78);
    let dir = std::env::temp_dir().join("intentmatch-store-truncation-test");
    std::fs::create_dir_all(&dir).expect("create dir");
    let path = dir.join("tiny.imp");
    store::save(&path, &tiny_coll, &tiny_pipe).expect("save");
    let full = std::fs::read(&path).expect("read").len() as u64;
    assert!(StoreView::open(&path).is_ok(), "full file opens");

    // Shrink in place one byte at a time; every prefix must fail cleanly.
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&path)
        .expect("open for truncation");
    for cut in (0..full).rev() {
        file.set_len(cut).expect("truncate");
        match StoreView::open(&path) {
            Ok(_) => panic!("prefix {cut} of {full} must not open"),
            Err(StoreError::Io(_) | StoreError::Decode(_) | StoreError::Format(_)) => {}
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn byte_flips_are_detected_by_checksums() {
    let (coll, pipe) = build(12, 79);
    let dir = std::env::temp_dir().join("intentmatch-store-byteflip-test");
    std::fs::create_dir_all(&dir).expect("create dir");
    let path = dir.join("flip.imp");
    store::save(&path, &coll, &pipe).expect("save");
    let good = std::fs::read(&path).expect("read");
    let evil_path = dir.join("evil.imp");

    // Any header byte: open itself must fail.
    for offset in 0..store_v2::HEADER_BYTES {
        let mut evil = good.clone();
        evil[offset] ^= 0x10;
        std::fs::write(&evil_path, &evil).expect("write");
        assert!(StoreView::open(&evil_path).is_err(), "header byte {offset}");
    }

    // Any directory byte: open must fail (directory checksum).
    let view = StoreView::open(&path).expect("open good");
    let dir_offset = view.header().dir_offset as usize;
    let dir_len = view.header().dir_len as usize;
    let sections: Vec<_> = view.sections().to_vec();
    drop(view);
    for offset in (dir_offset..dir_offset + dir_len).step_by(7) {
        let mut evil = good.clone();
        evil[offset] ^= 0x10;
        std::fs::write(&evil_path, &evil).expect("write");
        assert!(
            StoreView::open(&evil_path).is_err(),
            "directory byte {offset}"
        );
    }

    // A byte inside each section: detected at (latest) first touch of
    // that section — exercised here by hydrating everything.
    for entry in &sections {
        if entry.len == 0 {
            continue;
        }
        for probe in [0, entry.len / 2, entry.len - 1] {
            let offset = (entry.offset + probe) as usize;
            let mut evil = good.clone();
            evil[offset] ^= 0x10;
            std::fs::write(&evil_path, &evil).expect("write");
            match StoreView::open(&evil_path) {
                // META is verified at open; other sections on touch.
                Err(_) => {}
                Ok(v) => {
                    let hydrate_all = || -> Result<(), StoreError> {
                        for q in 0..v.num_docs() {
                            v.document(q)?;
                            v.doc_segments(q)?;
                        }
                        for c in 0..v.num_clusters() {
                            v.cluster(c)?;
                        }
                        v.centroids()?;
                        v.raw_segmentations()?;
                        Ok(())
                    };
                    assert!(
                        hydrate_all().is_err(),
                        "flip in {} at +{probe} undetected",
                        entry.describe()
                    );
                }
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn v1_store_remains_loadable_and_migrates() {
    let ((coll, pipe), _) = fixture();
    let dir = std::env::temp_dir().join("intentmatch-store-v1compat-test");
    std::fs::create_dir_all(&dir).expect("create dir");
    let v1_path = dir.join("legacy.imp");
    store::save_v1(&v1_path, coll, pipe).expect("save v1");
    let head = std::fs::read(&v1_path).expect("read");
    assert_eq!(&head[0..4], b"IMP1");

    // The v1 file loads transparently…
    let (coll1, pipe1) = store::load(&v1_path).expect("load v1");
    assert_eq!(store::encode(&coll1, &pipe1), store::encode(coll, pipe));
    // …but refuses StoreView with a clear error.
    let err = StoreView::open(&v1_path).expect_err("v1 must not open as v2");
    assert!(err.to_string().contains("magic"), "got: {err}");

    // Migration = load + save; the v2 file then serves identical results.
    let v2_path = dir.join("migrated.imp");
    store::save(&v2_path, &coll1, &pipe1).expect("save v2");
    let view = StoreView::open(&v2_path).expect("open migrated");
    let mut scratch = intentmatch::pipeline::QueryScratch::new();
    for q in [0usize, 7, 42] {
        assert_eq!(
            bits(&pipe.top_k(coll, q, K)),
            bits(&view.top_k(q, K, &mut scratch).expect("query")),
            "query {q}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
