//! Composition contract: `NormIndex` norm-band pruning (inside the DBSCAN
//! that forms the intention clusters) and impact-ordered early termination
//! (inside each cluster's index scan) must compose without changing a
//! single ranking. The clusters a query routes to are shaped by the
//! band-pruned neighbourhood scans; the postings each scan touches are
//! shaped by the per-term upper bounds — if either pruning layer were
//! inexact, the composed top-n would diverge from the exhaustive oracle
//! somewhere across random corpora, densities, and depths.

use forum_corpus::{Corpus, Domain, GenConfig};
use forum_index::{ScoreScratch, SegmentIndex};
use intentmatch::pipeline::{segment_terms, PipelineConfig};
use intentmatch::{IntentPipeline, PostCollection};
use proptest::prelude::*;

fn build(num_posts: usize, seed: u64, eps: f64) -> (PostCollection, IntentPipeline) {
    let corpus = Corpus::generate(&GenConfig {
        domain: Domain::TechSupport,
        num_posts,
        seed,
    });
    let coll = PostCollection::from_corpus(&corpus);
    let mut cfg = PipelineConfig::default();
    cfg.dbscan.eps = eps;
    let pipe = IntentPipeline::build(&coll, &cfg);
    (coll, pipe)
}

/// Replays every (document, refined segment) scan of the pipeline at the
/// given depths, pruned vs exhaustive, and asserts bit-identical rankings
/// plus posting-work conservation: every posting the pruned path did not
/// score must be accounted for as an early exit.
fn assert_pruned_matches_exhaustive(
    coll: &PostCollection,
    pipe: &IntentPipeline,
    depths: &[usize],
) {
    let scheme = pipe.weighting;
    let mut scratch = ScoreScratch::new();
    let mut scans = 0usize;
    for q in 0..coll.len() {
        for seg in &pipe.doc_segments[q] {
            let terms = segment_terms(coll, q, seg);
            if terms.is_empty() {
                continue;
            }
            let query = SegmentIndex::query_from_terms(&terms);
            let index = &pipe.clusters[seg.cluster].index;
            assert!(index.has_impacts(), "cluster index lost its impact sidecar");
            for &n in depths {
                let pruned =
                    index.top_owners_with_scratch(&query, n, scheme, Some(q as u32), &mut scratch);
                let pruned_costs = scratch.costs.take();
                let exhaustive =
                    index.top_owners_exhaustive(&query, n, scheme, Some(q as u32), &mut scratch);
                let exhaustive_costs = scratch.costs.take();
                assert_eq!(
                    pruned, exhaustive,
                    "pruned+terminated top-{n} diverges (doc {q}, cluster {})",
                    seg.cluster
                );
                assert_eq!(
                    pruned_costs.postings_scanned + pruned_costs.early_exits,
                    exhaustive_costs.postings_scanned,
                    "posting-work conservation broken (doc {q}, n = {n})"
                );
                scans += 1;
            }
        }
    }
    assert!(
        scans > 0,
        "corpus produced no scans — the test checked nothing"
    );
}

/// The fixed-threshold sweep the issue asks for: eps 0 degenerates every
/// norm band to (near-)exact matches, mid is the production default, high
/// chains most segments into few dense clusters with long postings lists —
/// the regime where early termination actually fires.
#[test]
fn composes_across_density_thresholds() {
    for &eps in &[0.0, 0.7, 2.0] {
        let (coll, pipe) = build(90, 20180417, eps);
        assert_pruned_matches_exhaustive(&coll, &pipe, &[1, 5, 50]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random corpora under random seeds: the composition must hold for
    /// every density threshold and depth, not just the curated defaults.
    #[test]
    fn composes_for_random_corpora(
        posts in 30usize..80,
        seed in 1u64..10_000,
        eps_sel in 0usize..3,
    ) {
        let eps = [0.0, 0.7, 2.0][eps_sel];
        let (coll, pipe) = build(posts, seed, eps);
        assert_pruned_matches_exhaustive(&coll, &pipe, &[1, 5, 50]);
    }
}
