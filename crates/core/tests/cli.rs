//! End-to-end test of the `intentmatch` CLI binary: index → stats → query
//! → add → query, through real files and the real executable.

use std::io::Write;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_intentmatch"))
}

fn temp_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("intentmatch-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A tiny but varied collection: three repeated themes with variations.
fn write_posts(path: &std::path::Path, n: usize) {
    let themes = [
        "I have an HP system with a RAID 0 controller. The array shows as degraded. \
         Do you know whether the RAID 0 controller would degrade performance?",
        "My HP LaserJet printer jams on every page. I replaced the ink cartridge. \
         How can I fix the paper tray myself?",
        "The wireless card drops the connection every hour. I reinstalled the driver. \
         Is the wireless card compatible with Linux?",
        "My HP Pavilion shuts down after 15 minutes. I cleaned the fan with compressed air. \
         Should I replace the heat sink or send it for repair?",
    ];
    let extras = [
        "I am asking because I do not want to lose my data.",
        "Thanks in advance.",
        "It was fine before the update.",
        "I even called the technical department before posting here.",
    ];
    let mut f = std::fs::File::create(path).unwrap();
    for i in 0..n {
        writeln!(f, "{} {}", themes[i % themes.len()], extras[i % extras.len()]).unwrap();
    }
}

#[test]
fn cli_full_workflow() {
    let dir = temp_dir();
    let posts = dir.join("posts.txt");
    let store = dir.join("store.imp");
    write_posts(&posts, 120);

    // index
    let out = bin()
        .args(["index", posts.to_str().unwrap(), store.to_str().unwrap()])
        .output()
        .expect("run index");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(store.exists());

    // stats
    let out = bin()
        .args(["stats", store.to_str().unwrap()])
        .output()
        .expect("run stats");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("posts:    120"), "{stdout}");
    assert!(stdout.contains("clusters:"), "{stdout}");

    // query by doc id
    let out = bin()
        .args(["query", store.to_str().unwrap(), "--doc", "0", "-k", "3"])
        .output()
        .expect("run query");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // query by new text
    let out = bin()
        .args([
            "query",
            store.to_str().unwrap(),
            "--text",
            "My RAID array is degraded. Will performance suffer with the RAID 0 controller?",
            "-k",
            "3",
        ])
        .output()
        .expect("run query --text");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // add
    let more = dir.join("more.txt");
    write_posts(&more, 5);
    let out = bin()
        .args(["add", store.to_str().unwrap(), more.to_str().unwrap()])
        .output()
        .expect("run add");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("collection now 125"), "{stderr}");

    // stats reflects the growth
    let out = bin()
        .args(["stats", store.to_str().unwrap()])
        .output()
        .expect("run stats again");
    assert!(String::from_utf8_lossy(&out.stdout).contains("posts:    125"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_rejects_bad_usage() {
    let out = bin().output().expect("run bare");
    assert!(!out.status.success());

    let out = bin()
        .args(["query", "/nonexistent/store.imp", "--doc", "0"])
        .output()
        .expect("run query on missing store");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));

    let dir = temp_dir();
    let posts = dir.join("p.txt");
    let store = dir.join("s.imp");
    write_posts(&posts, 30);
    assert!(bin()
        .args(["index", posts.to_str().unwrap(), store.to_str().unwrap()])
        .output()
        .unwrap()
        .status
        .success());
    // --doc out of range
    let out = bin()
        .args(["query", store.to_str().unwrap(), "--doc", "999"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("out of range"));
    std::fs::remove_dir_all(&dir).ok();
}
