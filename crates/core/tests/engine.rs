//! Determinism contract of the batch query engine: whatever the thread
//! count, whatever the configuration, [`QueryEngine`] results are
//! bit-identical to the sequential [`IntentPipeline::top_k`].

use intentmatch::pipeline::PipelineConfig;
use intentmatch::{IntentPipeline, PostCollection, QueryEngine};

use forum_corpus::{Corpus, Domain, GenConfig};
use proptest::prelude::*;

fn build(num_posts: usize, seed: u64, cfg: &PipelineConfig) -> (PostCollection, IntentPipeline) {
    let corpus = Corpus::generate(&GenConfig {
        domain: Domain::TechSupport,
        num_posts,
        seed,
    });
    let coll = PostCollection::from_corpus(&corpus);
    let pipe = IntentPipeline::build(&coll, cfg);
    (coll, pipe)
}

/// Batch results must equal the sequential per-query path bit for bit, for
/// every thread count — the tentpole's non-negotiable invariant.
fn assert_batch_equals_sequential(coll: &PostCollection, pipe: &IntentPipeline, k: usize) {
    let queries: Vec<usize> = (0..coll.len()).collect();
    let expected: Vec<Vec<(u32, f64)>> = queries.iter().map(|&q| pipe.top_k(coll, q, k)).collect();
    for threads in [1usize, 2, 4, 8] {
        let engine = QueryEngine::new(coll, pipe).with_threads(threads);
        let got = engine.top_k_batch(&queries, k);
        assert_eq!(got, expected, "threads={threads}");
    }
}

#[test]
fn batch_matches_sequential_default_config() {
    let (coll, pipe) = build(150, 9001, &PipelineConfig::default());
    assert_batch_equals_sequential(&coll, &pipe, 5);
}

#[test]
fn batch_matches_sequential_skip_refinement() {
    // Without refinement a document may hold several segments (and several
    // index units) in one cluster — the exact shape the double-counting
    // and owner-dedup fixes target. Equivalence must hold here too.
    let cfg = PipelineConfig {
        skip_refinement: true,
        ..Default::default()
    };
    let (coll, pipe) = build(150, 9002, &cfg);
    assert_batch_equals_sequential(&coll, &pipe, 5);
}

#[test]
fn batch_matches_sequential_unweighted() {
    let cfg = PipelineConfig {
        weighted_combination: false,
        ..Default::default()
    };
    let (coll, pipe) = build(120, 9003, &cfg);
    assert_batch_equals_sequential(&coll, &pipe, 5);
}

#[test]
fn intra_query_parallelism_is_bit_identical() {
    let (coll, pipe) = build(150, 9004, &PipelineConfig::default());
    let forced = QueryEngine::new(&coll, &pipe)
        .with_threads(4)
        .with_intra_query_min_clusters(1);
    for q in 0..coll.len() {
        assert_eq!(forced.top_k(q, 5), pipe.top_k(&coll, q, 5), "query {q}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random corpora, seeds, thread counts, k and refinement settings:
    /// the batch engine always reproduces the sequential ranking exactly.
    #[test]
    fn batch_equivalence_holds_for_random_corpora(
        num_posts in 30usize..90,
        seed in 0u64..10_000,
        threads in 1usize..9,
        k in 1usize..8,
        skip_refinement in 0u32..2,
    ) {
        let cfg = PipelineConfig {
            skip_refinement: skip_refinement == 1,
            ..Default::default()
        };
        let (coll, pipe) = build(num_posts, seed, &cfg);
        let queries: Vec<usize> = (0..coll.len()).step_by(3).collect();
        let expected: Vec<Vec<(u32, f64)>> =
            queries.iter().map(|&q| pipe.top_k(&coll, q, k)).collect();
        let engine = QueryEngine::new(&coll, &pipe).with_threads(threads);
        prop_assert_eq!(engine.top_k_batch(&queries, k), expected);
    }
}
