//! `StoreView`: lazy, zero-copy access to a v2 store file.
//!
//! [`StoreView::open`] reads only the 64-byte header, the section
//! directory, and the small per-cluster `META` records — O(header), not
//! O(store) — and memory-maps the rest (falling back to positioned reads
//! when mapping is unavailable). Documents, segment tables, and
//! per-cluster indices materialize on *first consultation* and stay
//! resident (eviction-free): forum workloads touch a small hot set of
//! intention clusters per epoch, so resident memory tracks the working
//! set instead of the corpus.
//!
//! The query path mirrors [`crate::pipeline::mr_top_k_scratch`] using the
//! same building blocks — [`crate::pipeline::query_cluster_groups_of`],
//! [`crate::pipeline::cluster_weight_for_terms`],
//! [`SegmentIndex::top_owners_filtered`], and the shared final ranking —
//! so results are bit-identical to the heap path (asserted by unit,
//! property, and socket tests).
//!
//! Metrics (process-wide [`forum_obs::Registry`], when enabled):
//! * `offline/store_load_ns` — time to open the view,
//! * `store/bytes_mapped` — bytes whose checksums have been verified
//!   (header + directory at open, each section on first touch),
//! * `store/lazy_loads` — lazy materializations (clusters, documents,
//!   per-document segment lists).

use crate::collection::PostCollection;
use crate::pipeline::{
    cluster_weight_for_terms, doc_ranges_terms, query_cluster_groups_of, rank_combined,
    BuildTimings, ClusterIndex, IntentPipeline, QueryScratch, RefinedSegment,
};
use crate::store::StoreError;
use crate::store_v2::{
    self, fnv1a, ClusterMeta, SectionEntry, V2Header, DIR_ENTRY_BYTES, HEADER_BYTES,
};
use forum_index::flat::FlatIndexView;
use forum_index::{SegmentIndex, WeightingScheme};
use forum_obs::Registry;
use forum_segment::CmDoc;
use forum_text::{document::DocId, Document, Segmentation};
use std::ops::Deref;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// How [`StoreView::open_with`] should back the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackingMode {
    /// Memory-map when possible, fall back to positioned reads.
    Auto,
    /// Memory-map or fail.
    Mmap,
    /// Positioned reads only (the std-only fallback path).
    Pread,
}

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    /// A read-only private mapping of a whole file (thin std-only wrapper;
    /// no external crates).
    pub struct Mmap {
        ptr: *mut c_void,
        len: usize,
    }

    // The mapping is read-only and owned; the raw pointer is only ever
    // reborrowed as `&[u8]`.
    unsafe impl Send for Mmap {}
    unsafe impl Sync for Mmap {}

    impl Mmap {
        pub fn map(file: &File, len: u64) -> io::Result<Mmap> {
            let len = usize::try_from(len)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file too large"))?;
            if len == 0 {
                return Err(io::Error::new(io::ErrorKind::InvalidInput, "empty file"));
            }
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Mmap { ptr, len })
        }

        pub fn bytes(&self) -> &[u8] {
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

#[cfg(not(unix))]
mod sys {
    use std::fs::File;
    use std::io;

    /// Mapping is unix-only; other platforms always use positioned reads.
    pub struct Mmap;

    impl Mmap {
        pub fn map(_file: &File, _len: u64) -> io::Result<Mmap> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "mmap unavailable on this platform",
            ))
        }

        pub fn bytes(&self) -> &[u8] {
            &[]
        }
    }
}

/// A positioned-read handle that needs no seek state.
struct PreadFile {
    #[cfg(unix)]
    file: std::fs::File,
    #[cfg(not(unix))]
    file: std::sync::Mutex<std::fs::File>,
}

impl PreadFile {
    fn new(file: std::fs::File) -> Self {
        #[cfg(unix)]
        {
            PreadFile { file }
        }
        #[cfg(not(unix))]
        {
            PreadFile {
                file: std::sync::Mutex::new(file),
            }
        }
    }

    fn read_into(&self, offset: u64, buf: &mut [u8]) -> std::io::Result<()> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_exact_at(buf, offset)
        }
        #[cfg(not(unix))]
        {
            use std::io::{Read, Seek, SeekFrom};
            let mut f = self.file.lock().expect("pread lock");
            f.seek(SeekFrom::Start(offset))?;
            f.read_exact(buf)
        }
    }
}

enum Backing {
    Mmap(sys::Mmap),
    Pread(PreadFile),
}

/// An owned byte buffer whose base is 8-aligned (backed by `Vec<u64>`),
/// so flat fixed-width records can be reinterpreted from it exactly like
/// from a page-aligned map.
pub struct AlignedBuf {
    storage: Vec<u64>,
    len: usize,
}

impl AlignedBuf {
    fn zeroed(len: usize) -> AlignedBuf {
        AlignedBuf {
            storage: vec![0u64; len.div_ceil(8)],
            len,
        }
    }

    fn as_mut_bytes(&mut self) -> &mut [u8] {
        // Safe: u64 storage reinterpreted as bytes, no padding, len within
        // the allocation by construction.
        unsafe { std::slice::from_raw_parts_mut(self.storage.as_mut_ptr().cast::<u8>(), self.len) }
    }

    fn as_bytes(&self) -> &[u8] {
        unsafe { std::slice::from_raw_parts(self.storage.as_ptr().cast::<u8>(), self.len) }
    }
}

/// Bytes of one section (or sub-range): borrowed straight from the map,
/// or owned (8-aligned) when read through the pread fallback.
pub enum SectionBytes<'a> {
    /// A zero-copy slice of the mapping.
    Borrowed(&'a [u8]),
    /// An owned aligned copy (pread backing).
    Owned(AlignedBuf),
}

impl Deref for SectionBytes<'_> {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        match self {
            SectionBytes::Borrowed(b) => b,
            SectionBytes::Owned(b) => b.as_bytes(),
        }
    }
}

/// A lazily-decoded offset table (`TEXTS` / `DOCSEGS` sections): byte
/// offsets of each record within the section's payload region.
struct OffsetTable {
    /// `count + 1` nondecreasing offsets; `offsets[i]..offsets[i+1]` is
    /// record `i`'s payload range.
    offsets: Vec<u64>,
    /// Absolute file offset of the payload region.
    payload_abs: u64,
}

type Cached<T> = OnceLock<Result<T, String>>;

/// Lazy, checksum-verified access to a v2 store file.
///
/// Open is O(header); every section is verified and materialized on first
/// touch and stays resident. Safe to share across threads (`Sync`): the
/// caches are `OnceLock`s whose racing initializations are idempotent.
pub struct StoreView {
    path: PathBuf,
    backing: Backing,
    file_len: u64,
    header: V2Header,
    sections: Vec<SectionEntry>,
    /// First-touch checksum verification state, parallel to `sections`.
    verified: Vec<Cached<()>>,
    /// Directory positions of META/TEXTS/RAWSEGS/DOCSEGS/CENTROIDS.
    singles: [usize; 5],
    /// Directory position of each cluster's section.
    cluster_pos: Vec<usize>,
    /// Per-cluster summary records (decoded eagerly at open; tiny).
    meta: Vec<ClusterMeta>,
    texts_table: Cached<OffsetTable>,
    segs_table: Cached<OffsetTable>,
    doc_cache: Vec<Cached<Arc<CmDoc>>>,
    segs_cache: Vec<Cached<Arc<Vec<RefinedSegment>>>>,
    cluster_cache: Vec<Cached<Arc<SegmentIndex>>>,
    /// Query-time weighting scheme (the store does not persist it; the
    /// paper's scheme, matching what [`crate::store::load`] restores).
    weighting: WeightingScheme,
}

fn format_err(msg: impl Into<String>) -> StoreError {
    StoreError::Format(msg.into())
}

impl std::fmt::Debug for StoreView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreView")
            .field("path", &self.path)
            .field("backing", &self.backing_name())
            .field("num_docs", &self.num_docs())
            .field("num_clusters", &self.num_clusters())
            .field("resident_clusters", &self.num_resident_clusters())
            .finish_non_exhaustive()
    }
}

impl StoreView {
    /// Opens a v2 store, mapping it when possible.
    pub fn open(path: &Path) -> Result<StoreView, StoreError> {
        Self::open_with(path, BackingMode::Auto)
    }

    /// Opens a v2 store with an explicit backing choice.
    pub fn open_with(path: &Path, mode: BackingMode) -> Result<StoreView, StoreError> {
        Self::open_inner(path, mode, true)
    }

    pub(crate) fn open_inner(
        path: &Path,
        mode: BackingMode,
        record_metrics: bool,
    ) -> Result<StoreView, StoreError> {
        let obs = Registry::global();
        let timer = (record_metrics && obs.is_enabled()).then(Instant::now);
        let file = std::fs::File::open(path)?;
        let file_len = file.metadata()?.len();
        if file_len < HEADER_BYTES as u64 {
            return Err(format_err(format!(
                "file too short for v2 header: {file_len} bytes"
            )));
        }
        let backing = match mode {
            BackingMode::Mmap => Backing::Mmap(sys::Mmap::map(&file, file_len)?),
            BackingMode::Pread => Backing::Pread(PreadFile::new(file)),
            BackingMode::Auto => match sys::Mmap::map(&file, file_len) {
                Ok(m) => Backing::Mmap(m),
                Err(_) => Backing::Pread(PreadFile::new(file)),
            },
        };

        let header_bytes = read_backing(&backing, file_len, 0, HEADER_BYTES as u64)?;
        let header = store_v2::parse_header(&header_bytes)?;
        drop(header_bytes);

        header
            .dir_offset
            .checked_add(header.dir_len)
            .filter(|&end| end <= file_len)
            .ok_or_else(|| {
                format_err(format!(
                    "directory [{}..+{}] exceeds file length {file_len}",
                    header.dir_offset, header.dir_len
                ))
            })?;
        if header.dir_len != (header.section_count as u64) * DIR_ENTRY_BYTES as u64 {
            return Err(format_err(format!(
                "directory length {} does not match {} sections",
                header.dir_len, header.section_count
            )));
        }
        let dir_bytes = read_backing(&backing, file_len, header.dir_offset, header.dir_len)?;
        let computed = fnv1a(&dir_bytes);
        if computed != header.dir_checksum {
            return Err(format_err(format!(
                "directory checksum mismatch: stored {:#018x}, computed {computed:#018x}",
                header.dir_checksum
            )));
        }
        let sections = store_v2::parse_directory(&dir_bytes)?;
        drop(dir_bytes);
        let (singles, cluster_pos) = store_v2::validate_directory(&header, &sections, file_len)?;

        // META is tiny (24 bytes per cluster); verify and decode it now so
        // `stats` answers without touching anything else.
        let meta_entry = sections[singles[0]];
        let meta_bytes = read_backing(&backing, file_len, meta_entry.offset, meta_entry.len)?;
        if fnv1a(&meta_bytes) != meta_entry.checksum {
            return Err(format_err("META section checksum mismatch"));
        }
        let meta = store_v2::decode_meta(&meta_bytes, header.num_clusters as usize)?;
        drop(meta_bytes);

        let num_docs = header.num_docs as usize;
        let num_clusters = header.num_clusters as usize;
        let mut verified: Vec<Cached<()>> = Vec::with_capacity(sections.len());
        verified.resize_with(sections.len(), OnceLock::new);
        // META was just verified.
        verified[singles[0]].set(Ok(())).ok();

        let view = StoreView {
            path: path.to_path_buf(),
            backing,
            file_len,
            header,
            sections,
            verified,
            singles,
            cluster_pos,
            meta,
            texts_table: OnceLock::new(),
            segs_table: OnceLock::new(),
            doc_cache: {
                let mut v = Vec::with_capacity(num_docs);
                v.resize_with(num_docs, OnceLock::new);
                v
            },
            segs_cache: {
                let mut v = Vec::with_capacity(num_docs);
                v.resize_with(num_docs, OnceLock::new);
                v
            },
            cluster_cache: {
                let mut v = Vec::with_capacity(num_clusters);
                v.resize_with(num_clusters, OnceLock::new);
                v
            },
            weighting: WeightingScheme::PaperTfIdf,
        };
        if record_metrics && obs.is_enabled() {
            obs.incr(
                "store/bytes_mapped",
                HEADER_BYTES as u64 + view.header.dir_len + meta_entry.len,
            );
            if let Some(t) = timer {
                obs.record_duration("offline/store_load_ns", t.elapsed());
            }
        }
        Ok(view)
    }

    /// The store file this view reads.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The store file's length in bytes.
    pub fn file_len(&self) -> u64 {
        self.file_len
    }

    /// The parsed header.
    pub fn header(&self) -> &V2Header {
        &self.header
    }

    /// The section directory.
    pub fn sections(&self) -> &[SectionEntry] {
        &self.sections
    }

    /// Per-cluster summary records (from the `META` section).
    pub fn cluster_meta(&self) -> &[ClusterMeta] {
        &self.meta
    }

    /// Number of documents.
    pub fn num_docs(&self) -> usize {
        self.header.num_docs as usize
    }

    /// Number of intention clusters.
    pub fn num_clusters(&self) -> usize {
        self.header.num_clusters as usize
    }

    /// DBSCAN noise-segment count recorded at build time.
    pub fn num_noise(&self) -> usize {
        self.header.num_noise as usize
    }

    /// Whether queries combine per-intention lists weighted.
    pub fn weighted_combination(&self) -> bool {
        self.header.weighted_combination()
    }

    /// `"mmap"` or `"pread"` — which backing this view runs on.
    pub fn backing_name(&self) -> &'static str {
        match self.backing {
            Backing::Mmap(_) => "mmap",
            Backing::Pread(_) => "pread",
        }
    }

    /// The eviction-free resident bitmap: which cluster indices have been
    /// materialized so far.
    pub fn resident_clusters(&self) -> Vec<bool> {
        self.cluster_cache
            .iter()
            .map(|c| matches!(c.get(), Some(Ok(_))))
            .collect()
    }

    /// Number of resident (materialized) cluster indices.
    pub fn num_resident_clusters(&self) -> usize {
        self.resident_clusters().iter().filter(|&&r| r).count()
    }

    fn read_range(&self, offset: u64, len: u64) -> Result<SectionBytes<'_>, StoreError> {
        read_backing(&self.backing, self.file_len, offset, len)
    }

    /// Verifies a section's checksum on first touch; later touches are
    /// free. Racing initializations both compute the same verdict.
    fn ensure_verified(&self, pos: usize) -> Result<(), StoreError> {
        let r = self.verified[pos].get_or_init(|| {
            let e = self.sections[pos];
            let data = match self.read_range(e.offset, e.len) {
                Ok(d) => d,
                Err(err) => return Err(format!("section {}: {err}", e.describe())),
            };
            let computed = fnv1a(&data);
            if computed != e.checksum {
                return Err(format!(
                    "section {} checksum mismatch: stored {:#018x}, computed {computed:#018x}",
                    e.describe(),
                    e.checksum
                ));
            }
            Registry::global().incr("store/bytes_mapped", e.len);
            Ok(())
        });
        r.clone().map_err(StoreError::Format)
    }

    /// Verified bytes of a whole section.
    fn section_bytes(&self, pos: usize) -> Result<SectionBytes<'_>, StoreError> {
        self.ensure_verified(pos)?;
        let e = self.sections[pos];
        self.read_range(e.offset, e.len)
    }

    fn offset_table<'a>(
        &self,
        cache: &'a Cached<OffsetTable>,
        pos: usize,
        what: &str,
    ) -> Result<&'a OffsetTable, StoreError> {
        let r = cache.get_or_init(|| {
            let build = || -> Result<OffsetTable, StoreError> {
                self.ensure_verified(pos)?;
                let e = self.sections[pos];
                let prefix_len = 8 + 8 * (self.num_docs() as u64 + 1);
                if e.len < prefix_len {
                    return Err(format_err(format!("{what} section too short")));
                }
                let prefix = self.read_range(e.offset, prefix_len)?;
                let mut r = forum_index::Reader::new(&prefix);
                let count = r.u32("record count").map_err(StoreError::Decode)? as usize;
                let _pad = r.u32("pad").map_err(StoreError::Decode)?;
                if count != self.num_docs() {
                    return Err(format_err(format!(
                        "{what} records {count} documents, header claims {}",
                        self.num_docs()
                    )));
                }
                let mut offsets = Vec::with_capacity(count + 1);
                for _ in 0..=count {
                    offsets.push(r.u64("record offset").map_err(StoreError::Decode)?);
                }
                let payload_len = e.len - prefix_len;
                if offsets[0] != 0
                    || offsets.windows(2).any(|w| w[0] > w[1])
                    || *offsets.last().expect("count+1 offsets") != payload_len
                {
                    return Err(format_err(format!("{what} offset table is inconsistent")));
                }
                Ok(OffsetTable {
                    offsets,
                    payload_abs: e.offset + prefix_len,
                })
            };
            build().map_err(|e| e.to_string())
        });
        r.as_ref().map_err(|e| StoreError::Format(e.clone()))
    }

    /// The raw text of document `q` (an owned copy; it is immediately
    /// parsed into a cached [`CmDoc`] by [`Self::document`]).
    pub fn doc_text(&self, q: usize) -> Result<String, StoreError> {
        self.check_doc(q)?;
        let table = self.offset_table(&self.texts_table, self.singles[1], "TEXTS")?;
        let (a, b) = (table.offsets[q], table.offsets[q + 1]);
        let bytes = self.read_range(table.payload_abs + a, b - a)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| format_err(format!("document {q} text is not valid UTF-8")))
    }

    /// The parsed, CM-annotated document `q`, materialized on first touch.
    pub fn document(&self, q: usize) -> Result<Arc<CmDoc>, StoreError> {
        self.check_doc(q)?;
        let r = self.doc_cache[q].get_or_init(|| {
            let text = self.doc_text(q).map_err(|e| e.to_string())?;
            let obs = Registry::global();
            obs.incr("store/lazy_loads", 1);
            Ok(Arc::new(CmDoc::new(Document::parse_clean(
                DocId(q as u32),
                &text,
            ))))
        });
        r.clone().map_err(StoreError::Format)
    }

    /// Document `q`'s refined segments, materialized on first touch.
    pub fn doc_segments(&self, q: usize) -> Result<Arc<Vec<RefinedSegment>>, StoreError> {
        self.check_doc(q)?;
        let r = self.segs_cache[q].get_or_init(|| {
            let build = || -> Result<Vec<RefinedSegment>, StoreError> {
                let table = self.offset_table(&self.segs_table, self.singles[3], "DOCSEGS")?;
                let (a, b) = (table.offsets[q], table.offsets[q + 1]);
                let bytes = self.read_range(table.payload_abs + a, b - a)?;
                decode_doc_segments_record(&bytes, self.num_clusters())
            };
            match build() {
                Ok(segs) => {
                    Registry::global().incr("store/lazy_loads", 1);
                    Ok(Arc::new(segs))
                }
                Err(e) => Err(e.to_string()),
            }
        });
        r.clone().map_err(StoreError::Format)
    }

    fn check_doc(&self, q: usize) -> Result<(), StoreError> {
        if q >= self.num_docs() {
            return Err(format_err(format!(
                "document {q} out of range ({} documents)",
                self.num_docs()
            )));
        }
        Ok(())
    }

    /// Cluster `c`'s index, materialized from its flat section on first
    /// consultation and resident thereafter.
    pub fn cluster(&self, c: usize) -> Result<Arc<SegmentIndex>, StoreError> {
        if c >= self.num_clusters() {
            return Err(format_err(format!(
                "cluster {c} out of range ({} clusters)",
                self.num_clusters()
            )));
        }
        let r = self.cluster_cache[c].get_or_init(|| match self.materialize_cluster(c) {
            Ok(ix) => {
                Registry::global().incr("store/lazy_loads", 1);
                Ok(Arc::new(ix))
            }
            Err(e) => Err(e.to_string()),
        });
        r.clone().map_err(StoreError::Format)
    }

    /// Parses + materializes cluster `c` fresh (used by the lazy cache and
    /// by full hydration), cross-checking the `META` record.
    pub(crate) fn materialize_cluster(&self, c: usize) -> Result<SegmentIndex, StoreError> {
        let bytes = self.section_bytes(self.cluster_pos[c])?;
        let flat = FlatIndexView::parse(&bytes)?;
        let meta = &self.meta[c];
        if flat.num_units() != meta.units as usize
            || flat.num_terms() != meta.vocab as usize
            || flat.num_postings() as u64 != meta.postings
        {
            return Err(format_err(format!(
                "cluster {c} flat index disagrees with META record"
            )));
        }
        Ok(flat.materialize()?)
    }

    /// Decodes all raw (pre-refinement) segmentations — full hydration
    /// and integrity checks only; the query path never needs them.
    pub fn raw_segmentations(&self) -> Result<Vec<Segmentation>, StoreError> {
        let bytes = self.section_bytes(self.singles[2])?;
        let mut r = forum_index::Reader::new(&bytes);
        let count = r.u32("segmentation count").map_err(StoreError::Decode)? as usize;
        let _pad = r.u32("pad").map_err(StoreError::Decode)?;
        let mut offsets = Vec::with_capacity(r.capacity_hint(count + 1, 8));
        for _ in 0..=count {
            offsets.push(r.u64("segmentation offset").map_err(StoreError::Decode)?);
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let units = r
                .u32("segmentation units")
                .map_err(StoreError::Decode)?
                .max(1) as usize;
            let n_borders = r.u32("border count").map_err(StoreError::Decode)? as usize;
            let mut borders = Vec::with_capacity(r.capacity_hint(n_borders, 4));
            for _ in 0..n_borders {
                let b = r.u32("border").map_err(StoreError::Decode)? as usize;
                if b < 1 || b >= units {
                    return Err(format_err(format!(
                        "border {b} out of range (units {units})"
                    )));
                }
                borders.push(b);
            }
            out.push(Segmentation::from_borders(units, borders));
        }
        if !r.is_at_end() {
            return Err(format_err("trailing bytes after RAWSEGS records"));
        }
        Ok(out)
    }

    /// Decodes the centroid matrix.
    pub fn centroids(&self) -> Result<Vec<Vec<f64>>, StoreError> {
        let bytes = self.section_bytes(self.singles[4])?;
        let mut r = forum_index::Reader::new(&bytes);
        let count = r.u32("centroid count").map_err(StoreError::Decode)? as usize;
        let dim = r.u32("centroid dim").map_err(StoreError::Decode)? as usize;
        let mut out = Vec::with_capacity(r.capacity_hint(count, 8 * dim.max(1)));
        for _ in 0..count {
            let mut row = Vec::with_capacity(r.capacity_hint(dim, 8));
            for _ in 0..dim {
                row.push(r.f64("centroid value").map_err(StoreError::Decode)?);
            }
            out.push(row);
        }
        if !r.is_at_end() {
            return Err(format_err("trailing bytes after CENTROIDS records"));
        }
        Ok(out)
    }

    /// Top-k related posts for query document `q` with the default
    /// candidate depth `n = 2k` — the mapped Algorithm 2, bit-identical to
    /// [`crate::pipeline::mr_top_k_scratch`].
    pub fn top_k(
        &self,
        q: usize,
        k: usize,
        scratch: &mut QueryScratch,
    ) -> Result<Vec<(u32, f64)>, StoreError> {
        self.top_k_with_n(q, k, 2 * k, scratch)
    }

    /// [`Self::top_k`] with an explicit per-intention candidate depth.
    pub fn top_k_with_n(
        &self,
        q: usize,
        k: usize,
        n: usize,
        scratch: &mut QueryScratch,
    ) -> Result<Vec<(u32, f64)>, StoreError> {
        let obs = Registry::global();
        let timer = obs.is_enabled().then(Instant::now);
        let segs = self.doc_segments(q)?;
        let groups = query_cluster_groups_of(&segs);
        let weighted = self.weighted_combination();
        scratch.acc.clear();
        let doc = if groups.is_empty() {
            None
        } else {
            Some(self.document(q)?)
        };
        for group in &groups {
            let doc = doc.as_ref().expect("document loaded for non-empty groups");
            let index = self.cluster(group.cluster)?;
            // The heap path computes this term list twice (once for the
            // weight, once inside the scan); computing it once is
            // byte-identical because both uses see the same ranges.
            let terms = doc_ranges_terms(doc, &group.ranges);
            let weight = if weighted {
                cluster_weight_for_terms(&index, &terms)
            } else {
                1.0
            };
            if weight <= 0.0 {
                continue;
            }
            if terms.is_empty() {
                // Mirrors the heap path: an empty-term scan returns no
                // hits before recording any Algorithm-1 metrics.
                continue;
            }
            let scan_timer = obs.is_enabled().then(Instant::now);
            let query = SegmentIndex::query_from_terms(&terms);
            let hits = index.top_owners_filtered(
                &query,
                n,
                self.weighting,
                Some(q as u32),
                None,
                &mut scratch.index,
            );
            if let Some(t) = scan_timer {
                obs.incr("online/algo1_scans", 1);
                obs.record_duration("online/algo1_ns", t.elapsed());
            }
            for (owner, score) in hits {
                *scratch.acc.entry(owner).or_insert(0.0) += weight * score;
            }
        }
        let out = rank_combined(&scratch.acc, k);
        if let Some(t) = timer {
            obs.incr("online/queries", 1);
            obs.record_duration("online/algo2_ns", t.elapsed());
        }
        Ok(out)
    }
}

fn read_backing<'a>(
    backing: &'a Backing,
    file_len: u64,
    offset: u64,
    len: u64,
) -> Result<SectionBytes<'a>, StoreError> {
    let end = offset
        .checked_add(len)
        .filter(|&end| end <= file_len)
        .ok_or_else(|| {
            format_err(format!(
                "read [{offset}..+{len}] exceeds file length {file_len}"
            ))
        })?;
    match backing {
        Backing::Mmap(m) => m
            .bytes()
            .get(offset as usize..end as usize)
            .map(SectionBytes::Borrowed)
            .ok_or_else(|| format_err("mapping shorter than file length")),
        Backing::Pread(f) => {
            let len = usize::try_from(len)
                .map_err(|_| format_err("section too large for this platform"))?;
            let mut buf = AlignedBuf::zeroed(len);
            f.read_into(offset, buf.as_mut_bytes())?;
            Ok(SectionBytes::Owned(buf))
        }
    }
}

/// Decodes one document's `DOCSEGS` record.
fn decode_doc_segments_record(
    bytes: &[u8],
    num_clusters: usize,
) -> Result<Vec<RefinedSegment>, StoreError> {
    let mut r = forum_index::Reader::new(bytes);
    let n = r.u32("refined count").map_err(StoreError::Decode)? as usize;
    let mut segs = Vec::with_capacity(r.capacity_hint(n, 8));
    for _ in 0..n {
        let cluster = r.u32("cluster id").map_err(StoreError::Decode)? as usize;
        if cluster >= num_clusters {
            return Err(format_err(format!(
                "refined segment names cluster {cluster}, store has {num_clusters}"
            )));
        }
        let n_ranges = r.u32("range count").map_err(StoreError::Decode)? as usize;
        let mut ranges = Vec::with_capacity(r.capacity_hint(n_ranges, 8));
        for _ in 0..n_ranges {
            let a = r.u32("range start").map_err(StoreError::Decode)? as usize;
            let b = r.u32("range end").map_err(StoreError::Decode)? as usize;
            ranges.push((a, b));
        }
        segs.push(RefinedSegment { cluster, ranges });
    }
    if !r.is_at_end() {
        return Err(format_err("trailing bytes after refined segments"));
    }
    Ok(segs)
}

/// Fully hydrates a v2 store into the heap structures [`crate::store::load`]
/// returns — every section verified and decoded.
pub(crate) fn hydrate(view: &StoreView) -> Result<(PostCollection, IntentPipeline), StoreError> {
    let mut docs = Vec::with_capacity(view.num_docs());
    for i in 0..view.num_docs() {
        let text = view.doc_text(i)?;
        docs.push(CmDoc::new(Document::parse_clean(DocId(i as u32), &text)));
    }
    let collection = PostCollection { docs };

    let raw_segmentations = view.raw_segmentations()?;
    let mut doc_segments = Vec::with_capacity(view.num_docs());
    for i in 0..view.num_docs() {
        let table = view.offset_table(&view.segs_table, view.singles[3], "DOCSEGS")?;
        let (a, b) = (table.offsets[i], table.offsets[i + 1]);
        let bytes = view.read_range(table.payload_abs + a, b - a)?;
        doc_segments.push(decode_doc_segments_record(&bytes, view.num_clusters())?);
    }
    let centroids = view.centroids()?;
    let mut clusters = Vec::with_capacity(view.num_clusters());
    for c in 0..view.num_clusters() {
        clusters.push(ClusterIndex {
            index: view.materialize_cluster(c)?,
        });
    }
    Ok((
        collection,
        IntentPipeline {
            raw_segmentations,
            doc_segments,
            clusters,
            centroids,
            num_noise: view.num_noise(),
            timings: BuildTimings::default(),
            weighted_combination: view.weighted_combination(),
            // The weighting scheme is a query-time choice; restored
            // pipelines default to the paper's scheme (same as v1).
            weighting: WeightingScheme::PaperTfIdf,
        },
    ))
}

/// Anything that can answer Algorithm 2 top-k queries — the trait both
/// the heap path ([`HeapStore`], [`crate::engine::QueryEngine`]) and the
/// mapped path ([`StoreView`]) implement, so callers and equivalence
/// tests swap them freely.
pub trait QuerySource: Sync {
    /// Number of queryable documents.
    fn num_docs(&self) -> usize;

    /// Top-k related posts for query `q` with candidate depth `n`.
    fn query_top_k_with_n(
        &self,
        q: usize,
        k: usize,
        n: usize,
        scratch: &mut QueryScratch,
    ) -> Result<Vec<(u32, f64)>, StoreError>;

    /// Top-k with the default candidate depth `n = 2k`.
    fn query_top_k(
        &self,
        q: usize,
        k: usize,
        scratch: &mut QueryScratch,
    ) -> Result<Vec<(u32, f64)>, StoreError> {
        self.query_top_k_with_n(q, k, 2 * k, scratch)
    }
}

impl QuerySource for StoreView {
    fn num_docs(&self) -> usize {
        StoreView::num_docs(self)
    }

    fn query_top_k_with_n(
        &self,
        q: usize,
        k: usize,
        n: usize,
        scratch: &mut QueryScratch,
    ) -> Result<Vec<(u32, f64)>, StoreError> {
        self.top_k_with_n(q, k, n, scratch)
    }
}

/// The fully-decoded heap pair behind the [`QuerySource`] trait.
pub struct HeapStore {
    /// The parsed collection.
    pub collection: PostCollection,
    /// The decoded pipeline.
    pub pipeline: IntentPipeline,
}

impl QuerySource for HeapStore {
    fn num_docs(&self) -> usize {
        self.collection.len()
    }

    fn query_top_k_with_n(
        &self,
        q: usize,
        k: usize,
        n: usize,
        scratch: &mut QueryScratch,
    ) -> Result<Vec<(u32, f64)>, StoreError> {
        Ok(crate::pipeline::mr_top_k_scratch(
            &self.collection,
            &self.pipeline.doc_segments,
            &self.pipeline.clusters,
            q,
            k,
            n,
            self.pipeline.weighted_combination,
            self.pipeline.weighting,
            scratch,
        ))
    }
}

impl QuerySource for crate::engine::QueryEngine<'_> {
    fn num_docs(&self) -> usize {
        self.collection().len()
    }

    /// The engine manages its own per-worker scratches; the caller's
    /// scratch is unused.
    fn query_top_k_with_n(
        &self,
        q: usize,
        k: usize,
        n: usize,
        _scratch: &mut QueryScratch,
    ) -> Result<Vec<(u32, f64)>, StoreError> {
        self.try_top_k_with_n(q, k, n)
            .map_err(|e| StoreError::Format(format!("query worker panicked: {e}")))
    }
}

/// Evaluates `queries` over `source` with `threads` workers (contiguous
/// chunks, one scratch per worker), returning per-query results in input
/// order. Single-threaded for `threads <= 1`. Results are bit-identical
/// for every thread count — the property the equivalence tests sweep at
/// 1/2/4/8 threads.
pub fn top_k_many<S: QuerySource>(
    source: &S,
    queries: &[usize],
    k: usize,
    threads: usize,
) -> Result<Vec<Vec<(u32, f64)>>, StoreError> {
    if queries.is_empty() {
        return Ok(Vec::new());
    }
    let threads = threads.max(1).min(queries.len());
    if threads == 1 {
        let mut scratch = QueryScratch::new();
        return queries
            .iter()
            .map(|&q| source.query_top_k(q, k, &mut scratch))
            .collect();
    }
    let chunk = queries.len().div_ceil(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = queries
            .chunks(chunk)
            .map(|qs| {
                s.spawn(move || {
                    let mut scratch = QueryScratch::new();
                    qs.iter()
                        .map(|&q| source.query_top_k(q, k, &mut scratch))
                        .collect::<Result<Vec<_>, _>>()
                })
            })
            .collect();
        let mut out = Vec::with_capacity(queries.len());
        for h in handles {
            out.extend(h.join().expect("query worker panicked")?);
        }
        Ok(out)
    })
}
