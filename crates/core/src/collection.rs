//! A parsed, CM-annotated post collection.

use forum_corpus::Corpus;
use forum_segment::CmDoc;
use forum_text::{document::DocId, Document};

/// A collection of posts, parsed and CM-annotated once, shared by every
/// method under evaluation.
#[derive(Debug)]
pub struct PostCollection {
    /// One annotated document per post; index = document id.
    pub docs: Vec<CmDoc>,
}

impl PostCollection {
    /// Parses raw post texts (cleaning HTML if present).
    pub fn from_raw_texts<S: AsRef<str>>(texts: &[S]) -> Self {
        let _span = forum_obs::Registry::global().span("offline/parse_cm");
        let docs = texts
            .iter()
            .enumerate()
            .map(|(i, t)| CmDoc::new(Document::parse(DocId(i as u32), t.as_ref())))
            .collect();
        PostCollection { docs }
    }

    /// Parses raw post texts with up to `threads` workers (`0` = one per
    /// core). Parsing and CM annotation are per-document, so the result is
    /// identical to the sequential build.
    pub fn from_raw_texts_parallel<S: AsRef<str> + Sync>(texts: &[S], threads: usize) -> Self {
        let _span = forum_obs::Registry::global().span("offline/parse_cm");
        let indexed: Vec<(u32, &S)> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| (i as u32, t))
            .collect();
        let docs = crate::par::parallel_map(&indexed, threads, |(i, t)| {
            CmDoc::new(Document::parse(DocId(*i), t.as_ref()))
        });
        PostCollection { docs }
    }

    /// Parses the posts of a generated corpus (already clean text).
    pub fn from_corpus(corpus: &Corpus) -> Self {
        Self::from_corpus_parallel(corpus, 1)
    }

    /// Parallel variant of [`Self::from_corpus`].
    pub fn from_corpus_parallel(corpus: &Corpus, threads: usize) -> Self {
        let _span = forum_obs::Registry::global().span("offline/parse_cm");
        let indexed: Vec<(u32, &str)> = corpus
            .posts
            .iter()
            .enumerate()
            .map(|(i, p)| (i as u32, p.text.as_str()))
            .collect();
        let docs = crate::par::parallel_map(&indexed, threads, |(i, t)| {
            CmDoc::new(Document::parse_clean(DocId(*i), t))
        });
        PostCollection { docs }
    }

    /// Number of posts.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// The normalized terms of a whole document.
    pub fn doc_terms(&self, doc: usize) -> Vec<String> {
        self.docs[doc].doc.terms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forum_corpus::{Domain, GenConfig};

    #[test]
    fn from_corpus_parses_all_posts() {
        let corpus = Corpus::generate(&GenConfig {
            domain: Domain::TechSupport,
            num_posts: 25,
            seed: 1,
        });
        let coll = PostCollection::from_corpus(&corpus);
        assert_eq!(coll.len(), 25);
        for (cm, post) in coll.docs.iter().zip(&corpus.posts) {
            assert_eq!(cm.num_units(), post.num_sentences);
        }
    }

    #[test]
    fn from_raw_texts_cleans_html() {
        let coll = PostCollection::from_raw_texts(&[
            "<p>My printer is broken.</p> Can you help?",
            "Plain text post.",
        ]);
        assert_eq!(coll.len(), 2);
        assert!(!coll.docs[0].doc.text.contains('<'));
        assert_eq!(coll.docs[0].num_units(), 2);
    }

    #[test]
    fn doc_terms_are_normalized() {
        let coll = PostCollection::from_raw_texts(&["The printers were installed."]);
        assert_eq!(coll.doc_terms(0), vec!["printer", "instal"]);
    }
}
