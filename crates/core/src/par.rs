//! Minimal data-parallel map over document collections.
//!
//! The paper's large-collection run (Section 9.2.4) "divided the dataset in
//! 32 parts and ran the segmentation in parallel"; the per-document phases
//! of the offline pipeline (parsing, CM annotation, border selection,
//! feature extraction) are embarrassingly parallel, so the pipeline does
//! the same with scoped threads. Results are returned in input order, so
//! parallel and sequential runs are bit-identical.

use crossbeam::thread;

/// Applies `f` to every item, using up to `threads` worker threads
/// (`0` = one per available core). Output order matches input order.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    };
    let threads = threads.min(items.len().max(1));
    if threads <= 1 || items.len() < 2 {
        return items.iter().map(&f).collect();
    }

    // Split into `threads` contiguous chunks; each worker returns its chunk
    // index so the results reassemble in order.
    let chunk_size = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<R>> = thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(|_| chunk.iter().map(&f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("thread scope failed");

    let mut out = Vec::with_capacity(items.len());
    for chunk in &mut chunks {
        out.append(chunk);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(&items, 4, |&x| x * 2);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn matches_sequential_for_any_thread_count() {
        let items: Vec<u64> = (0..137).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [0usize, 1, 2, 3, 7, 64, 200] {
            assert_eq!(
                parallel_map(&items, threads, |&x| x * x + 1),
                expected,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(parallel_map(&[42u32], 4, |&x| x + 1), vec![43]);
    }
}
