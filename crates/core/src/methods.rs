//! The five methods of the paper's evaluation (Section 9.2, "The
//! Methods"), behind a single [`Matcher`] trait:
//!
//! | method | segmentation | clustering | matching |
//! |---|---|---|---|
//! | `FullText` | none (whole posts) | none | Eq. 7 weighting, one index |
//! | `LDA` | none | topics | θ-similarity scan |
//! | `Content-MR` | TextTiling (topic shifts) | k-means on TF/IDF | Algorithms 1 & 2 |
//! | `SentIntent-MR` | sentences | DBSCAN on CM weights | Algorithms 1 & 2 |
//! | `IntentIntent-MR` | Greedy on CM shifts | DBSCAN on CM weights | Algorithms 1 & 2 |

use crate::collection::PostCollection;
use crate::pipeline::{
    assemble_clusters, mr_top_k, ClusterIndex, IntentPipeline, PipelineConfig, RefinedSegment,
};
use forum_cluster::kmeans::{kmeans, KMeansConfig};
use forum_index::{IndexBuilder, SegmentIndex};
use forum_segment::strategies::Strategy;
use forum_segment::texttiling::{texttiling, TextTilingConfig};
use forum_text::Segment;
use forum_topics::lda::{intern_documents, Lda, LdaConfig};
use forum_topics::retrieval::{rank_by_topics, TopicSimilarity};
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// A related-post retrieval method.
pub trait Matcher {
    /// The method's name as used in the paper's tables.
    fn name(&self) -> &'static str;
    /// The top-k documents most related to query document `q`.
    fn top_k(&self, q: usize, k: usize) -> Vec<(u32, f64)>;
}

/// Which method to build (Table 4 row order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodKind {
    /// LDA topic-similarity baseline.
    Lda,
    /// MySQL-style full-text matching over whole posts.
    FullText,
    /// TextTiling segmentation + TF/IDF content clusters + MR matching.
    ContentMr,
    /// Sentence "segmentation" + intention clusters + MR matching.
    SentIntentMr,
    /// The paper's full method.
    IntentIntentMr,
}

impl MethodKind {
    /// All methods, in Table 4 column order.
    pub const ALL: [MethodKind; 5] = [
        MethodKind::Lda,
        MethodKind::FullText,
        MethodKind::ContentMr,
        MethodKind::SentIntentMr,
        MethodKind::IntentIntentMr,
    ];

    /// Builds the method over a collection.
    pub fn build<'a>(self, collection: &'a PostCollection, seed: u64) -> Box<dyn Matcher + 'a> {
        match self {
            MethodKind::Lda => Box::new(LdaMatcher::build(collection, seed)),
            MethodKind::FullText => Box::new(FullTextMatcher::build(collection)),
            MethodKind::ContentMr => Box::new(ContentMrMatcher::build(collection, seed)),
            MethodKind::SentIntentMr => Box::new(MrMatcher::build(
                collection,
                PipelineConfig {
                    strategy: Strategy::Sentences,
                    seed,
                    ..Default::default()
                },
                "SentIntent-MR",
            )),
            MethodKind::IntentIntentMr => Box::new(MrMatcher::build(
                collection,
                PipelineConfig {
                    seed,
                    ..Default::default()
                },
                "IntentIntent-MR",
            )),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            MethodKind::Lda => "LDA",
            MethodKind::FullText => "FullText",
            MethodKind::ContentMr => "Content-MR",
            MethodKind::SentIntentMr => "SentIntent-MR",
            MethodKind::IntentIntentMr => "IntentIntent-MR",
        }
    }
}

/// The FullText baseline: a single index over whole posts, Eq. 7 weighting.
pub struct FullTextMatcher<'a> {
    collection: &'a PostCollection,
    index: SegmentIndex,
}

impl<'a> FullTextMatcher<'a> {
    /// Indexes every post as one unit.
    pub fn build(collection: &'a PostCollection) -> Self {
        let mut b = IndexBuilder::new();
        for (d, _) in collection.docs.iter().enumerate() {
            b.add_unit(d as u32, &collection.doc_terms(d));
        }
        FullTextMatcher {
            collection,
            index: b.build(),
        }
    }
}

impl Matcher for FullTextMatcher<'_> {
    fn name(&self) -> &'static str {
        "FullText"
    }

    fn top_k(&self, q: usize, k: usize) -> Vec<(u32, f64)> {
        let query = SegmentIndex::query_from_terms(&self.collection.doc_terms(q));
        let mut out = Vec::with_capacity(k);
        for (unit, score) in self.index.top_n(&query, k + 1) {
            let owner = self.index.owner(unit);
            if owner as usize == q {
                continue;
            }
            out.push((owner, score));
            if out.len() == k {
                break;
            }
        }
        out
    }
}

/// The LDA baseline: topic model fitted on the collection, retrieval by θ
/// similarity.
pub struct LdaMatcher {
    lda: Lda,
}

impl LdaMatcher {
    /// Fits LDA (10 topics, 150 sweeps) on the collection's term documents.
    pub fn build(collection: &PostCollection, seed: u64) -> Self {
        let term_docs: Vec<Vec<String>> = (0..collection.len())
            .map(|d| collection.doc_terms(d))
            .collect();
        let (ids, vocab) = intern_documents(&term_docs);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let lda = Lda::fit(
            &ids,
            vocab.len(),
            LdaConfig {
                num_topics: 10,
                alpha: 0.5,
                beta: 0.01,
                iterations: 150,
            },
            &mut rng,
        );
        LdaMatcher { lda }
    }
}

impl Matcher for LdaMatcher {
    fn name(&self) -> &'static str {
        "LDA"
    }

    fn top_k(&self, q: usize, k: usize) -> Vec<(u32, f64)> {
        rank_by_topics(&self.lda, q, k, TopicSimilarity::Cosine)
            .into_iter()
            .map(|(d, s)| (d as u32, s))
            .collect()
    }
}

/// A multiple-ranking matcher over intention clusters — covers both
/// `SentIntent-MR` and `IntentIntent-MR`, which differ only in the
/// segmentation strategy the pipeline runs.
pub struct MrMatcher<'a> {
    collection: &'a PostCollection,
    /// The underlying pipeline (exposed for experiments that inspect the
    /// clusters, e.g. Fig. 3 centroids and Table 3 granularity).
    pub pipeline: IntentPipeline,
    name: &'static str,
}

impl<'a> MrMatcher<'a> {
    /// Builds the pipeline with the given configuration.
    pub fn build(collection: &'a PostCollection, cfg: PipelineConfig, name: &'static str) -> Self {
        MrMatcher {
            collection,
            pipeline: IntentPipeline::build(collection, &cfg),
            name,
        }
    }
}

impl Matcher for MrMatcher<'_> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn top_k(&self, q: usize, k: usize) -> Vec<(u32, f64)> {
        self.pipeline.top_k(self.collection, q, k)
    }
}

/// The Content-MR ablation: thematic TextTiling segmentation, TF/IDF
/// segment vectors clustered with k-means, same MR matching.
pub struct ContentMrMatcher<'a> {
    collection: &'a PostCollection,
    doc_segments: Vec<Vec<RefinedSegment>>,
    clusters: Vec<ClusterIndex>,
}

/// Dimensionality of the dense TF/IDF vectors Content-MR clusters (the
/// most frequent terms by document frequency).
const CONTENT_VECTOR_DIM: usize = 300;

/// Number of content clusters (matches the intention-cluster counts the
/// paper reports: 3–5 per dataset).
const CONTENT_CLUSTERS: usize = 5;

impl<'a> ContentMrMatcher<'a> {
    /// Builds the Content-MR structures.
    pub fn build(collection: &'a PostCollection, seed: u64) -> Self {
        // 1. Thematic segmentation.
        let tiling_cfg = TextTilingConfig::default();
        let mut seg_owner: Vec<(usize, Segment)> = Vec::new();
        let mut seg_terms: Vec<Vec<String>> = Vec::new();
        for (d, cm) in collection.docs.iter().enumerate() {
            let seg = texttiling(&cm.doc, &tiling_cfg);
            for s in seg.segments() {
                seg_owner.push((d, s));
                seg_terms.push(cm.doc.terms_in_sentences(s.first, s.end));
            }
        }

        // 2. Dense TF/IDF vectors over the top terms by document frequency.
        let mut df: HashMap<&str, usize> = HashMap::new();
        for terms in &seg_terms {
            let unique: std::collections::HashSet<&str> =
                terms.iter().map(String::as_str).collect();
            for t in unique {
                *df.entry(t).or_insert(0) += 1;
            }
        }
        let mut by_df: Vec<(&str, usize)> = df.iter().map(|(&t, &c)| (t, c)).collect();
        by_df.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        by_df.truncate(CONTENT_VECTOR_DIM);
        let dim = by_df.len();
        let term_slot: HashMap<&str, usize> = by_df
            .iter()
            .enumerate()
            .map(|(i, &(t, _))| (t, i))
            .collect();
        let n_segs = seg_terms.len() as f64;
        let idf: Vec<f64> = by_df
            .iter()
            .map(|&(_, c)| (n_segs / c as f64).ln().max(0.0) + 1.0)
            .collect();
        let vectors: Vec<Vec<f64>> = seg_terms
            .iter()
            .map(|terms| {
                let mut v = vec![0.0; dim];
                for t in terms {
                    if let Some(&slot) = term_slot.get(t.as_str()) {
                        v[slot] += idf[slot];
                    }
                }
                // L2 normalize so k-means compares directions.
                let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
                if norm > 0.0 {
                    for x in &mut v {
                        *x /= norm;
                    }
                }
                v
            })
            .collect();

        // 3. k-means content clusters.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let km = kmeans(
            &vectors,
            &KMeansConfig {
                k: CONTENT_CLUSTERS,
                ..Default::default()
            },
            &mut rng,
        );
        let labels: Vec<Option<usize>> = km.labels.iter().map(|&l| Some(l)).collect();

        // 4. Same refinement + indexing as the intention pipeline.
        let (doc_segments, clusters) =
            assemble_clusters(collection, &seg_owner, &labels, km.centroids.len(), false);
        ContentMrMatcher {
            collection,
            doc_segments,
            clusters,
        }
    }
}

impl Matcher for ContentMrMatcher<'_> {
    fn name(&self) -> &'static str {
        "Content-MR"
    }

    fn top_k(&self, q: usize, k: usize) -> Vec<(u32, f64)> {
        mr_top_k(
            self.collection,
            &self.doc_segments,
            &self.clusters,
            q,
            k,
            2 * k,
            true,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forum_corpus::{Corpus, Domain, GenConfig};

    fn setup(n: usize) -> (Corpus, PostCollection) {
        let corpus = Corpus::generate(&GenConfig {
            domain: Domain::TechSupport,
            num_posts: n,
            seed: 77,
        });
        let coll = PostCollection::from_corpus(&corpus);
        (corpus, coll)
    }

    #[test]
    fn all_methods_build_and_return_lists() {
        let (_, coll) = setup(60);
        for kind in MethodKind::ALL {
            let m = kind.build(&coll, 1);
            assert_eq!(m.name(), kind.name());
            let hits = m.top_k(0, 5);
            assert!(hits.len() <= 5, "{}", m.name());
            assert!(
                hits.iter().all(|&(d, _)| d as usize != 0),
                "{} returned the query",
                m.name()
            );
        }
    }

    #[test]
    fn fulltext_finds_same_problem_posts() {
        let (corpus, coll) = setup(200);
        let m = FullTextMatcher::build(&coll);
        let mut same_problem = 0usize;
        let mut total = 0usize;
        for q in 0..20 {
            for (d, _) in m.top_k(q, 5) {
                if corpus.posts[q].problem == corpus.posts[d as usize].problem {
                    same_problem += 1;
                }
                total += 1;
            }
        }
        // FullText is good at topical (problem) matching; that is exactly
        // its strength in the paper.
        assert!(
            same_problem as f64 / total.max(1) as f64 > 0.5,
            "{same_problem}/{total}"
        );
    }

    #[test]
    fn mr_scores_are_sorted() {
        let (_, coll) = setup(80);
        let m = MethodKind::IntentIntentMr.build(&coll, 5);
        for q in 0..5 {
            let hits = m.top_k(q, 5);
            for w in hits.windows(2) {
                assert!(w[0].1 >= w[1].1);
            }
        }
    }

    #[test]
    fn content_mr_builds_content_clusters() {
        let (_, coll) = setup(60);
        let m = ContentMrMatcher::build(&coll, 3);
        assert!(!m.clusters.is_empty());
        // Every document keeps at least one segment.
        assert!(m.doc_segments.iter().all(|s| !s.is_empty()));
    }
}
