//! The online query engine: many queries, shared immutable pipeline.
//!
//! The paper's online phase (Section 7, deployed at forum scale in Section
//! 9.2.4) answers each query with a handful of per-intention index scans
//! (Algorithm 1) combined into a top-k (Algorithm 2). Those scans touch
//! only immutable state — the per-cluster indices and the query document's
//! refined segments — so a serving process can evaluate arbitrarily many
//! queries concurrently over one [`IntentPipeline`] without locks.
//!
//! [`QueryEngine`] packages that:
//!
//! * **Batch evaluation** ([`QueryEngine::top_k_batch`]): queries are
//!   partitioned over scoped worker threads (the same machinery as the
//!   offline [`crate::par`] phases). Each worker owns one
//!   [`QueryScratch`] — the dense score accumulators and combination map
//!   — reused across every query it serves, so the steady-state path
//!   performs no postings-sized allocations.
//! * **Intra-query parallelism** ([`QueryEngine::top_k`]): when a single
//!   query consults enough intention clusters, its Algorithm 1 scans run
//!   in parallel and are combined in cluster order.
//! * **Determinism**: results are bit-identical to the sequential
//!   [`IntentPipeline::top_k`] for every thread count — workers only
//!   change *where* a query is evaluated, never its scan order, score
//!   accumulation order, or tie-breaking. Asserted by the equivalence
//!   tests in `tests/engine.rs`.
//!
//! Observability (process-wide [`Registry`], when enabled): per batch,
//! `online/batch_ns` (latency), `online/batch_queries` (size) and the
//! `online/qps` gauge (batch throughput); per worker,
//! `online/worker_busy_ns` and an `online/batch_workers` count.

use crate::collection::PostCollection;
use crate::par::{try_parallel_map_init_with, WorkerPanic};
use crate::pipeline::{
    cluster_weight_for_terms, mr_top_k_scratch, query_cluster_groups, ranges_terms,
    single_intention_scan, IntentPipeline, QueryScratch,
};
use forum_obs::{Registry, Trace, TraceCosts};
use std::collections::HashMap;
use std::time::Instant;

/// Maps index-level scan counters into the request-trace cost vocabulary.
pub(crate) fn scan_to_trace_costs(scan: forum_index::ScanCosts, clusters: u64) -> TraceCosts {
    TraceCosts {
        clusters_routed: clusters,
        postings_scanned: scan.postings_scanned,
        candidates_pruned: scan.candidates_pruned,
        heap_displacements: scan.heap_displacements,
        early_exits: scan.early_exits,
        distance_evals: 0,
    }
}

/// Default cluster count above which a single query's Algorithm 1 scans
/// run in parallel. Below it, fan-out overhead beats the scan time.
const DEFAULT_INTRA_QUERY_MIN_CLUSTERS: usize = 4;

/// Algorithm 2's gather step over per-cluster scan results: folds
/// `weight × score` per owner in the order the scans are supplied —
/// which callers MUST keep as cluster-consultation order, so every
/// floating-point sum matches the sequential [`IntentPipeline::top_k`]
/// bit for bit — then sorts (score desc, owner asc) and truncates to `k`.
///
/// This is the single merge both the engine's intra-query parallel path
/// and the shard-parallel serving tier (`forum-shard`) funnel through:
/// sharing the code is what makes "sharded ≡ unsharded" a structural
/// property rather than a re-implementation contract.
pub fn gather_weighted_scans<'a, I>(scans: I, k: usize) -> Vec<(u32, f64)>
where
    I: IntoIterator<Item = (f64, &'a [(u32, f64)])>,
{
    let mut acc: HashMap<u32, f64> = HashMap::new();
    for (weight, hits) in scans {
        for &(owner, score) in hits {
            *acc.entry(owner).or_insert(0.0) += weight * score;
        }
    }
    let mut out: Vec<(u32, f64)> = acc.into_iter().collect();
    out.sort_unstable_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("scores are finite")
            .then(a.0.cmp(&b.0))
    });
    out.truncate(k);
    out
}

/// A parallel, allocation-lean evaluator of Algorithm 2 queries over a
/// shared immutable pipeline. Cheap to construct (two references and two
/// integers); hold one per serving loop.
#[derive(Debug, Clone, Copy)]
pub struct QueryEngine<'a> {
    collection: &'a PostCollection,
    pipeline: &'a IntentPipeline,
    threads: usize,
    intra_query_min_clusters: usize,
}

impl<'a> QueryEngine<'a> {
    /// An engine over `pipeline` with one worker per core (`threads = 0`).
    pub fn new(collection: &'a PostCollection, pipeline: &'a IntentPipeline) -> Self {
        QueryEngine {
            collection,
            pipeline,
            threads: 0,
            intra_query_min_clusters: DEFAULT_INTRA_QUERY_MIN_CLUSTERS,
        }
    }

    /// The collection this engine queries.
    pub fn collection(&self) -> &'a PostCollection {
        self.collection
    }

    /// Sets the worker thread count: `1` = sequential, `0` = one per core.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the cluster count from which a single query parallelizes its
    /// per-intention scans ([`usize::MAX`] disables intra-query
    /// parallelism).
    pub fn with_intra_query_min_clusters(mut self, min: usize) -> Self {
        self.intra_query_min_clusters = min;
        self
    }

    /// The effective worker count for `items` work items.
    fn workers_for(&self, items: usize) -> usize {
        crate::par::auto_threads(self.threads).min(items.max(1))
    }

    /// Algorithm 2 for one query (`n = 2k`, the paper's choice) —
    /// bit-identical to [`IntentPipeline::top_k`].
    ///
    /// Panics if a scan worker panics; serving loops should prefer
    /// [`Self::try_top_k`].
    pub fn top_k(&self, q: usize, k: usize) -> Vec<(u32, f64)> {
        self.try_top_k(q, k).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Self::top_k`], returning a worker panic as an error instead of
    /// aborting the serving process: one poisoned query fails *that* query
    /// and the server keeps answering the rest.
    pub fn try_top_k(&self, q: usize, k: usize) -> Result<Vec<(u32, f64)>, WorkerPanic> {
        self.try_top_k_with_n(q, k, 2 * k)
    }

    /// Algorithm 2 for one query with an explicit per-intention list
    /// length. Runs the per-cluster scans in parallel when the query
    /// consults at least `intra_query_min_clusters` clusters and more than
    /// one worker is configured.
    ///
    /// Panics if a scan worker panics; serving loops should prefer
    /// [`Self::try_top_k_with_n`].
    pub fn top_k_with_n(&self, q: usize, k: usize, n: usize) -> Vec<(u32, f64)> {
        self.try_top_k_with_n(q, k, n)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Self::top_k_with_n`] with worker panics propagated as `Err`.
    pub fn try_top_k_with_n(
        &self,
        q: usize,
        k: usize,
        n: usize,
    ) -> Result<Vec<(u32, f64)>, WorkerPanic> {
        self.try_top_k_with_n_costed(q, k, n).map(|(out, _)| out)
    }

    /// [`Self::try_top_k_with_n`] that additionally returns the query's
    /// per-phase cost counters (clusters routed, postings scanned,
    /// candidates pruned, heap displacements) for request tracing. Counting
    /// is out-of-band — results are bit-identical to the uncosted call.
    pub fn try_top_k_with_n_costed(
        &self,
        q: usize,
        k: usize,
        n: usize,
    ) -> Result<(Vec<(u32, f64)>, TraceCosts), WorkerPanic> {
        let groups = query_cluster_groups(&self.pipeline.doc_segments, q);
        let clusters_routed = groups.len() as u64;
        let workers = self.workers_for(groups.len());
        if workers <= 1 || groups.len() < self.intra_query_min_clusters {
            let mut scratch = QueryScratch::new();
            let out = mr_top_k_scratch(
                self.collection,
                &self.pipeline.doc_segments,
                &self.pipeline.clusters,
                q,
                k,
                n,
                self.pipeline.weighted_combination,
                self.pipeline.weighting,
                &mut scratch,
            );
            return Ok((
                out,
                scan_to_trace_costs(scratch.take_costs(), clusters_routed),
            ));
        }

        // Parallel per-cluster scans. Mirrors `mr_top_k_scratch` exactly:
        // the scans are independent, and the fold below consumes their
        // results in cluster-consultation order, so accumulation order —
        // hence every floating-point sum and tie-break — matches the
        // sequential path bit for bit.
        let obs = Registry::global();
        let timer = obs.is_enabled().then(Instant::now);
        let weighted = self.pipeline.weighted_combination;
        let scheme = self.pipeline.weighting;
        type ClusterScan = (f64, Vec<(u32, f64)>, forum_index::ScanCosts);
        let scans: Vec<ClusterScan> = try_parallel_map_init_with(
            &groups,
            workers,
            forum_index::ScoreScratch::new,
            |scratch, group| {
                let weight = if weighted {
                    let terms = ranges_terms(self.collection, q, &group.ranges);
                    cluster_weight_for_terms(&self.pipeline.clusters[group.cluster].index, &terms)
                } else {
                    1.0
                };
                if weight <= 0.0 {
                    return (weight, Vec::new(), scratch.costs.take());
                }
                let hits = single_intention_scan(
                    self.collection,
                    &self.pipeline.clusters,
                    q,
                    group.cluster,
                    &group.ranges,
                    n,
                    scheme,
                    scratch,
                );
                (weight, hits, scratch.costs.take())
            },
            |r| {
                obs.record("online/worker_busy_ns", r.busy.as_nanos() as u64);
            },
        )?;

        let mut scan_costs = forum_index::ScanCosts::default();
        for (_, _, costs) in &scans {
            scan_costs.merge(costs);
        }
        let out = gather_weighted_scans(scans.iter().map(|(w, hits, _)| (*w, hits.as_slice())), k);
        if let Some(t) = timer {
            obs.incr("online/queries", 1);
            obs.record_duration("online/algo2_ns", t.elapsed());
        }
        Ok((out, scan_to_trace_costs(scan_costs, clusters_routed)))
    }

    /// [`Self::try_top_k`] recording an `engine/algo2` span (wall time +
    /// cost counters) into `trace` when one is supplied.
    pub fn try_top_k_traced(
        &self,
        q: usize,
        k: usize,
        trace: Option<&mut Trace>,
    ) -> Result<Vec<(u32, f64)>, WorkerPanic> {
        let start = Instant::now();
        let (out, costs) = self.try_top_k_with_n_costed(q, k, 2 * k)?;
        if let Some(t) = trace {
            t.push_span("engine/algo2", start, costs);
        }
        Ok(out)
    }

    /// Evaluates a batch of queries (`n = 2k` each), one result list per
    /// query in input order — each bit-identical to
    /// [`IntentPipeline::top_k`] on the same query.
    ///
    /// Panics if a batch worker panics; serving loops should prefer
    /// [`Self::try_top_k_batch`].
    pub fn top_k_batch(&self, queries: &[usize], k: usize) -> Vec<Vec<(u32, f64)>> {
        self.top_k_batch_with_n(queries, k, 2 * k)
    }

    /// [`Self::top_k_batch`] with worker panics propagated as `Err`: the
    /// failed batch is lost, the serving process is not.
    pub fn try_top_k_batch(
        &self,
        queries: &[usize],
        k: usize,
    ) -> Result<Vec<Vec<(u32, f64)>>, WorkerPanic> {
        self.try_top_k_batch_with_n(queries, k, 2 * k)
    }

    /// [`Self::top_k_batch`] with an explicit per-intention list length.
    ///
    /// Queries are partitioned into contiguous chunks, one per worker;
    /// each worker reuses a single [`QueryScratch`] across its chunk.
    ///
    /// Panics if a batch worker panics; serving loops should prefer
    /// [`Self::try_top_k_batch_with_n`].
    pub fn top_k_batch_with_n(
        &self,
        queries: &[usize],
        k: usize,
        n: usize,
    ) -> Vec<Vec<(u32, f64)>> {
        self.try_top_k_batch_with_n(queries, k, n)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Self::top_k_batch_with_n`] with worker panics propagated as `Err`.
    pub fn try_top_k_batch_with_n(
        &self,
        queries: &[usize],
        k: usize,
        n: usize,
    ) -> Result<Vec<Vec<(u32, f64)>>, WorkerPanic> {
        let obs = Registry::global();
        let timer = obs.is_enabled().then(Instant::now);
        let workers = self.workers_for(queries.len());
        let results = try_parallel_map_init_with(
            queries,
            workers,
            QueryScratch::new,
            |scratch, &q| {
                mr_top_k_scratch(
                    self.collection,
                    &self.pipeline.doc_segments,
                    &self.pipeline.clusters,
                    q,
                    k,
                    n,
                    self.pipeline.weighted_combination,
                    self.pipeline.weighting,
                    scratch,
                )
            },
            |r| {
                obs.record("online/worker_busy_ns", r.busy.as_nanos() as u64);
                obs.incr("online/batch_workers", 1);
            },
        )?;
        if let Some(t) = timer {
            let elapsed = t.elapsed();
            obs.incr("online/batch_queries", queries.len() as u64);
            obs.record_duration("online/batch_ns", elapsed);
            let secs = elapsed.as_secs_f64();
            if secs > 0.0 {
                obs.gauge("online/qps")
                    .set((queries.len() as f64 / secs) as i64);
            }
        }
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use forum_corpus::{Corpus, Domain, GenConfig};

    fn setup() -> (PostCollection, IntentPipeline) {
        let corpus = Corpus::generate(&GenConfig {
            domain: Domain::TechSupport,
            num_posts: 120,
            seed: 31,
        });
        let coll = PostCollection::from_corpus(&corpus);
        let pipe = IntentPipeline::build(&coll, &PipelineConfig::default());
        (coll, pipe)
    }

    #[test]
    fn single_query_matches_pipeline() {
        let (coll, pipe) = setup();
        let engine = QueryEngine::new(&coll, &pipe);
        for q in [0usize, 3, 57, 119] {
            assert_eq!(engine.top_k(q, 5), pipe.top_k(&coll, q, 5), "query {q}");
        }
    }

    #[test]
    fn intra_query_parallel_scans_match_sequential() {
        let (coll, pipe) = setup();
        // Force the parallel per-cluster path (threshold 1) and compare
        // against the plain path on every query.
        let par = QueryEngine::new(&coll, &pipe)
            .with_threads(4)
            .with_intra_query_min_clusters(1);
        let seq = QueryEngine::new(&coll, &pipe).with_threads(1);
        for q in 0..coll.len() {
            assert_eq!(par.top_k(q, 5), seq.top_k(q, 5), "query {q}");
        }
    }

    #[test]
    fn batch_preserves_query_order() {
        let (coll, pipe) = setup();
        let engine = QueryEngine::new(&coll, &pipe).with_threads(3);
        let queries: Vec<usize> = (0..coll.len()).rev().collect();
        let batch = engine.top_k_batch(&queries, 5);
        assert_eq!(batch.len(), queries.len());
        for (i, &q) in queries.iter().enumerate() {
            assert_eq!(batch[i], pipe.top_k(&coll, q, 5), "slot {i} (query {q})");
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let (coll, pipe) = setup();
        let engine = QueryEngine::new(&coll, &pipe);
        assert!(engine.top_k_batch(&[], 5).is_empty());
    }
}
