//! Mean-precision evaluation against simulated user judgments
//! (Section 9.2.1; Tables 4 & 5, Fig. 10).
//!
//! Protocol, mirroring the paper: sample query posts; for each query, each
//! method returns its top-5 list; every (query, candidate) pair is judged
//! related/unrelated by a three-rater majority; a method's score is the
//! *mean precision* — the mean over queries of the fraction of its list
//! judged related.

use crate::methods::Matcher;
use forum_corpus::oracle::{majority_judgment, RaterPanel};
use forum_corpus::Corpus;
use std::time::{Duration, Instant};

/// Evaluation parameters.
#[derive(Debug, Clone, Copy)]
pub struct EvalConfig {
    /// Number of query posts (sampled as the first `num_queries` ids; the
    /// generator is i.i.d., so any fixed subset is a uniform sample).
    pub num_queries: usize,
    /// List length (the paper evaluates top-5).
    pub k: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            num_queries: 50,
            k: 5,
        }
    }
}

/// One method's evaluation result.
#[derive(Debug, Clone)]
pub struct MethodEval {
    /// Method name.
    pub name: &'static str,
    /// Mean precision over queries.
    pub mean_precision: f64,
    /// Per-query precision values (the distribution behind Fig. 10).
    pub per_query: Vec<f64>,
    /// Number of evaluated (query, candidate) pairs.
    pub pairs: usize,
    /// Fraction of lists with zero true positives (the paper reports
    /// IntentIntent-MR reduces these by 28.6% on StackOverflow).
    pub zero_precision_lists: f64,
    /// Mean retrieval latency per query.
    pub avg_latency: Duration,
}

/// Evaluates one method.
pub fn evaluate_method(
    method: &dyn Matcher,
    corpus: &Corpus,
    panel: &RaterPanel,
    cfg: &EvalConfig,
) -> MethodEval {
    let queries = cfg.num_queries.min(corpus.len());
    let mut per_query = Vec::with_capacity(queries);
    let mut pairs = 0usize;
    let mut zero_lists = 0usize;
    let mut latency = Duration::ZERO;
    for q in 0..queries {
        let t = Instant::now();
        let list = method.top_k(q, cfg.k);
        latency += t.elapsed();
        if list.is_empty() {
            per_query.push(0.0);
            zero_lists += 1;
            continue;
        }
        let mut hits = 0usize;
        for &(d, _) in &list {
            pairs += 1;
            if majority_judgment(&panel.judgments(corpus, q, d as usize)) {
                hits += 1;
            }
        }
        if hits == 0 {
            zero_lists += 1;
        }
        per_query.push(hits as f64 / list.len() as f64);
    }
    let mean_precision = per_query.iter().sum::<f64>() / per_query.len().max(1) as f64;
    MethodEval {
        name: method.name(),
        mean_precision,
        per_query,
        pairs,
        zero_precision_lists: zero_lists as f64 / queries.max(1) as f64,
        avg_latency: latency / queries.max(1) as u32,
    }
}

/// Ranked-list quality metrics beyond mean precision, for richer method
/// comparisons than the paper's Table 4: reciprocal rank, average
/// precision and nDCG with binary gains.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedMetrics {
    /// Mean reciprocal rank of the first relevant result.
    pub mrr: f64,
    /// Mean average precision over the returned lists.
    pub map: f64,
    /// Mean normalized discounted cumulative gain at the list length.
    pub ndcg: f64,
}

/// Computes MRR / MAP / nDCG of a method over the first `num_queries`
/// posts, judging relevance by the rater panel's majority.
pub fn ranked_metrics(
    method: &dyn Matcher,
    corpus: &Corpus,
    panel: &RaterPanel,
    cfg: &EvalConfig,
) -> RankedMetrics {
    let queries = cfg.num_queries.min(corpus.len());
    let mut mrr = 0.0;
    let mut map = 0.0;
    let mut ndcg = 0.0;
    for q in 0..queries {
        let list = method.top_k(q, cfg.k);
        let rel: Vec<bool> = list
            .iter()
            .map(|&(d, _)| majority_judgment(&panel.judgments(corpus, q, d as usize)))
            .collect();
        // Reciprocal rank.
        if let Some(first) = rel.iter().position(|&r| r) {
            mrr += 1.0 / (first + 1) as f64;
        }
        // Average precision (within the returned list).
        let mut hits = 0usize;
        let mut ap = 0.0;
        for (i, &r) in rel.iter().enumerate() {
            if r {
                hits += 1;
                ap += hits as f64 / (i + 1) as f64;
            }
        }
        if hits > 0 {
            map += ap / hits as f64;
        }
        // Binary nDCG at k.
        let dcg: f64 = rel
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                if r {
                    1.0 / ((i + 2) as f64).log2()
                } else {
                    0.0
                }
            })
            .sum();
        let ideal: f64 = (0..hits).map(|i| 1.0 / ((i + 2) as f64).log2()).sum();
        if ideal > 0.0 {
            ndcg += dcg / ideal;
        }
    }
    let n = queries.max(1) as f64;
    RankedMetrics {
        mrr: mrr / n,
        map: map / n,
        ndcg: ndcg / n,
    }
}

/// Fleiss' κ of the rater panel over the judged pairs of a set of lists —
/// the inter-rater agreement the paper reports in Table 5.
pub fn rater_agreement(corpus: &Corpus, panel: &RaterPanel, lists: &[(usize, Vec<u32>)]) -> f64 {
    let mut table: Vec<Vec<u32>> = Vec::new();
    for (q, list) in lists {
        for &d in list {
            let judgments = panel.judgments(corpus, *q, d as usize);
            let yes = judgments.iter().filter(|&&j| j).count() as u32;
            let no = judgments.len() as u32 - yes;
            table.push(vec![yes, no]);
        }
    }
    if table.is_empty() {
        return 1.0;
    }
    forum_segment::agreement::fleiss_kappa(&table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::PostCollection;
    use crate::methods::MethodKind;
    use forum_corpus::{Domain, GenConfig};

    fn setup() -> (Corpus, PostCollection, RaterPanel) {
        let corpus = Corpus::generate(&GenConfig {
            domain: Domain::TechSupport,
            num_posts: 250,
            seed: 33,
        });
        let coll = PostCollection::from_corpus(&corpus);
        let panel = RaterPanel::new(3, 0.02, 7);
        (corpus, coll, panel)
    }

    #[test]
    fn evaluation_produces_sane_numbers() {
        let (corpus, coll, panel) = setup();
        let cfg = EvalConfig {
            num_queries: 20,
            k: 5,
        };
        let m = MethodKind::FullText.build(&coll, 1);
        let eval = evaluate_method(m.as_ref(), &corpus, &panel, &cfg);
        assert_eq!(eval.per_query.len(), 20);
        assert!((0.0..=1.0).contains(&eval.mean_precision));
        assert!((0.0..=1.0).contains(&eval.zero_precision_lists));
        assert!(eval.pairs <= 100);
    }

    #[test]
    fn intent_method_beats_lda_on_tech_corpus() {
        let (corpus, coll, panel) = setup();
        let cfg = EvalConfig {
            num_queries: 25,
            k: 5,
        };
        let intent = MethodKind::IntentIntentMr.build(&coll, 1);
        let lda = MethodKind::Lda.build(&coll, 1);
        let e_intent = evaluate_method(intent.as_ref(), &corpus, &panel, &cfg);
        let e_lda = evaluate_method(lda.as_ref(), &corpus, &panel, &cfg);
        assert!(
            e_intent.mean_precision > e_lda.mean_precision,
            "intent {} <= lda {}",
            e_intent.mean_precision,
            e_lda.mean_precision
        );
    }

    #[test]
    fn ranked_metrics_are_bounded_and_consistent() {
        let (corpus, coll, panel) = setup();
        let cfg = EvalConfig {
            num_queries: 20,
            k: 5,
        };
        let m = MethodKind::IntentIntentMr.build(&coll, 1);
        let rm = ranked_metrics(m.as_ref(), &corpus, &panel, &cfg);
        for v in [rm.mrr, rm.map, rm.ndcg] {
            assert!((0.0..=1.0).contains(&v), "{rm:?}");
        }
        // A method with non-zero precision must have non-zero MRR/nDCG.
        let eval = evaluate_method(m.as_ref(), &corpus, &panel, &cfg);
        if eval.mean_precision > 0.0 {
            assert!(rm.mrr > 0.0 && rm.ndcg > 0.0, "{rm:?}");
        }
    }

    #[test]
    fn rater_agreement_is_high_for_reliable_panel() {
        let (corpus, coll, panel) = setup();
        let m = MethodKind::FullText.build(&coll, 1);
        let lists: Vec<(usize, Vec<u32>)> = (0..15)
            .map(|q| (q, m.top_k(q, 5).into_iter().map(|(d, _)| d).collect()))
            .collect();
        let kappa = rater_agreement(&corpus, &panel, &lists);
        // Related pairs are rare, so the no-category dominates and chance
        // agreement is high; κ above 0.4 is already strong here.
        assert!(kappa > 0.4, "kappa = {kappa}");
    }
}
