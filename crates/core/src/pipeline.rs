//! The intention-based matching pipeline (Sections 4–7).
//!
//! Offline ([`IntentPipeline::build`]): segmentation → segment weight
//! vectors → DBSCAN intention clusters → segmentation refinement →
//! per-cluster full-text indices. Online ([`IntentPipeline::top_k`]):
//! Algorithm 1 per intention cluster, combined by Algorithm 2.

use crate::collection::PostCollection;
use forum_cluster::{dbscan_sampled_matrix, segment_features, DbscanConfig, PointMatrix};
use forum_index::{IndexBuilder, SegmentIndex};
use forum_obs::Registry;
use forum_segment::strategies::Strategy;
use forum_text::Segmentation;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Border-selection strategy (the paper selects Greedy with per-CM
    /// voting for the overall evaluation).
    pub strategy: Strategy,
    /// DBSCAN parameters for segment grouping. A `min_pts` of 0 means
    /// *auto*: 2% of the clustered points (at least 8). The high relative
    /// density threshold is what keeps the CM weight space from chaining
    /// into one giant cluster through sparse bridge segments.
    pub dbscan: DbscanConfig,
    /// Sample cap for [`dbscan_sampled_matrix`]; collections with more
    /// segments cluster a sample and assign the rest (Section 9.2.4 uses a
    /// large-dataset clustering library the same way). The default is high
    /// enough that realistic corpora cluster *exactly* — the banded
    /// parallel DBSCAN engine handles hundreds of thousands of segments —
    /// and sampling only kicks in beyond it.
    pub max_cluster_sample: usize,
    /// Assign DBSCAN noise segments to the nearest cluster centroid so
    /// every segment stays searchable. When false, noise segments are
    /// dropped from the indices.
    pub assign_noise: bool,
    /// Seed for the clustering sample.
    pub seed: u64,
    /// Skip the second weight type (Eq. 6) in segment features — ablation
    /// `ablate_weights`; the full method keeps both.
    pub type1_weights_only: bool,
    /// Skip segmentation refinement (concatenating same-document segments
    /// that share a cluster) — ablation `ablate_refinement`.
    pub skip_refinement: bool,
    /// Worker threads for the per-document offline phases (segmentation)
    /// and for clustering's region queries — `1` = sequential (default),
    /// `0` = one per core. Results are bit-identical for every value: the
    /// paper parallelizes segmentation for its 1.5M-post run (Section
    /// 9.2.4), and the DBSCAN engine merges worker-local clusters with a
    /// deterministic union-find.
    pub threads: usize,
    /// Combine per-intention lists with the weighted sum the paper's
    /// Section 7 sanctions ("different weights can be considered for each
    /// cluster"), using an unsupervised weight: the mean probabilistic IDF
    /// of the query segment's distinct terms within its cluster. Clusters
    /// where the query's segment is vocabulary-distinctive (requests,
    /// specific questions) count more than clusters of boilerplate context.
    /// `false` reverts to Algorithm 2's plain sum — ablation
    /// `ablate_weighted_sum`.
    pub weighted_combination: bool,
    /// Term-weighting scheme inside the per-cluster indices: the paper's
    /// Eq. 8 variant or Okapi BM25 (ablation `ablate_bm25`).
    pub weighting: forum_index::WeightingScheme,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            strategy: Strategy::GreedyVoting(Default::default()),
            dbscan: DbscanConfig {
                eps: 0.7,
                min_pts: 0, // auto
            },
            max_cluster_sample: 200_000,
            assign_noise: true,
            seed: 42,
            type1_weights_only: false,
            skip_refinement: false,
            threads: 1,
            weighted_combination: true,
            weighting: forum_index::WeightingScheme::PaperTfIdf,
        }
    }
}

/// Wall-clock cost of each offline phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildTimings {
    /// Border selection over all documents.
    pub segmentation: Duration,
    /// Weight-vector construction.
    pub features: Duration,
    /// DBSCAN (the paper's "segment grouping").
    pub clustering: Duration,
    /// Refinement + per-cluster index building.
    pub indexing: Duration,
}

impl BuildTimings {
    /// Total offline time.
    pub fn total(&self) -> Duration {
        self.segmentation + self.features + self.clustering + self.indexing
    }
}

/// A document's segment within one intention cluster, after refinement:
/// possibly several sentence ranges concatenated.
#[derive(Debug, Clone)]
pub struct RefinedSegment {
    /// The intention cluster this segment belongs to.
    pub cluster: usize,
    /// The sentence ranges (half-open) concatenated into this segment.
    pub ranges: Vec<(usize, usize)>,
}

/// One intention cluster's index.
#[derive(Debug)]
pub struct ClusterIndex {
    /// Full-text index whose units are this cluster's refined segments;
    /// unit owners are document ids.
    pub index: SegmentIndex,
}

/// The built pipeline.
#[derive(Debug)]
pub struct IntentPipeline {
    /// Raw (pre-refinement) segmentation of each document.
    pub raw_segmentations: Vec<Segmentation>,
    /// Refined segments per document, each tagged with its cluster.
    pub doc_segments: Vec<Vec<RefinedSegment>>,
    /// Per-cluster indices.
    pub clusters: Vec<ClusterIndex>,
    /// Cluster centroids in the 28-dim weight space (Fig. 3).
    pub centroids: Vec<Vec<f64>>,
    /// Number of segments DBSCAN labelled noise (before any reassignment).
    pub num_noise: usize,
    /// Offline phase timings.
    pub timings: BuildTimings,
    /// Whether [`IntentPipeline::top_k`] uses the weighted combination.
    pub weighted_combination: bool,
    /// The term-weighting scheme applied inside cluster indices.
    pub weighting: forum_index::WeightingScheme,
}

impl IntentPipeline {
    /// Runs the full offline phase over a collection.
    ///
    /// Observability: each phase runs under a [`forum_obs::Span`] in the
    /// process-wide registry (`offline/segmentation`, `offline/features`,
    /// `offline/clustering`, `offline/refinement_indexing`), and the
    /// parallel segmentation phase aggregates per-worker busy time into
    /// `par/worker_busy_ns`. [`BuildTimings`] is a view over the same span
    /// durations, so it stays populated even when the registry is disabled
    /// (the default).
    ///
    /// Panics if a segmentation worker panics; serving processes should
    /// prefer [`Self::try_build`].
    pub fn build(collection: &PostCollection, cfg: &PipelineConfig) -> IntentPipeline {
        Self::try_build(collection, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Self::build`], but a panic in a segmentation worker is returned as
    /// [`crate::par::WorkerPanic`] (with worker id, chunk range, and the
    /// payload message) instead of aborting the caller — a long-lived
    /// process can log the poisoned build and keep serving its current
    /// epoch.
    pub fn try_build(
        collection: &PostCollection,
        cfg: &PipelineConfig,
    ) -> Result<IntentPipeline, crate::par::WorkerPanic> {
        let obs = Registry::global();
        let build_span = obs.span("offline");
        let mut timings = BuildTimings::default();

        // Phase 1: segmentation (per-document; parallel when configured).
        let span = obs.span("segmentation");
        let raw_segmentations: Vec<Segmentation> = crate::par::try_parallel_map_with(
            &collection.docs,
            cfg.threads,
            |d| cfg.strategy.run(d),
            |r| {
                obs.record("par/worker_busy_ns", r.busy.as_nanos() as u64);
                obs.incr("par/items", r.items as u64);
                obs.incr("par/workers", 1);
            },
        )?;
        timings.segmentation = span.finish();

        // Phase 2: weight vectors, one per raw segment, built directly
        // into the flat storage the clustering kernels consume.
        let span = obs.span("features");
        let feature_dim = if cfg.type1_weights_only {
            forum_nlp::cm::NUM_FEATURES
        } else {
            forum_cluster::SEGMENT_FEATURE_DIM
        };
        let mut seg_owner: Vec<(usize, forum_text::Segment)> = Vec::new();
        let mut features = PointMatrix::with_dim(feature_dim);
        for (d, seg) in raw_segmentations.iter().enumerate() {
            let whole = collection.docs[d].whole();
            for s in seg.segments() {
                let tables = collection.docs[d].segment_tables(s);
                let mut f = segment_features(&tables, &whole);
                f.truncate(feature_dim);
                seg_owner.push((d, s));
                features.push(&f);
            }
        }
        timings.features = span.finish();
        obs.gauge("offline/raw_segments").set(features.len() as i64);

        // Phase 3: segment grouping (DBSCAN).
        let span = obs.span("clustering");
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut dbscan_cfg = cfg.dbscan;
        if dbscan_cfg.min_pts == 0 {
            let effective = features.len().min(cfg.max_cluster_sample);
            dbscan_cfg.min_pts = (effective / 50).max(8);
        }
        let result = dbscan_sampled_matrix(
            &features,
            &dbscan_cfg,
            cfg.max_cluster_sample,
            cfg.threads,
            &mut rng,
        );
        let num_noise = result.num_noise();
        let cluster_stats = result.stats;
        let mut centroids = result.centroids_matrix(&features);
        let mut labels: Vec<Option<usize>> = result.labels;
        if result.num_clusters == 0 {
            // Degenerate: no density anywhere (tiny or uniform input).
            // Fall back to a single cluster holding everything.
            labels = vec![Some(0); features.len()];
            centroids = vec![mean_vector(&features)];
        } else if cfg.assign_noise {
            for (i, l) in labels.iter_mut().enumerate() {
                if l.is_none() {
                    *l = Some(nearest_centroid(features.row(i), &centroids));
                }
            }
        }
        let num_clusters = centroids.len();
        timings.clustering = span.finish();
        obs.gauge("offline/clusters").set(num_clusters as i64);
        obs.gauge("offline/noise_segments").set(num_noise as i64);
        let events = forum_obs::EventLog::global();
        if events.is_enabled() {
            // Dist-eval ratio: distance evaluations as a fraction of the
            // n² a brute-force exact run would need — how much the norm
            // band plus sampling actually saved.
            let n = features.len() as f64;
            let ratio = if n > 0.0 {
                cluster_stats.dist_evals as f64 / (n * n)
            } else {
                0.0
            };
            events.emit(
                "cluster_built",
                forum_obs::json::Json::obj()
                    .with("points", features.len())
                    .with("clusters", num_clusters)
                    .with("noise", num_noise)
                    .with("duration_ms", timings.clustering.as_millis() as u64)
                    .with("dist_eval_ratio", (ratio * 1e6).round() / 1e6),
            );
        }

        // Phase 4: refinement + per-cluster indexing.
        let span = obs.span("refinement_indexing");
        let (doc_segments, clusters) = assemble_clusters(
            collection,
            &seg_owner,
            &labels,
            num_clusters,
            cfg.skip_refinement,
        );
        timings.indexing = span.finish();
        build_span.finish();

        Ok(IntentPipeline {
            raw_segmentations,
            doc_segments,
            clusters,
            centroids,
            num_noise,
            timings,
            weighted_combination: cfg.weighted_combination,
            weighting: cfg.weighting,
        })
    }

    /// Number of intention clusters.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Algorithm 1: the top-n documents related to query document `q` with
    /// respect to a single intention cluster, as `(doc, score)`.
    pub fn single_intention_top_n(
        &self,
        collection: &PostCollection,
        q: usize,
        cluster: usize,
        n: usize,
    ) -> Vec<(u32, f64)> {
        single_intention_top_n(
            collection,
            &self.doc_segments,
            &self.clusters,
            q,
            cluster,
            n,
        )
    }

    /// Algorithm 2: the top-k documents related to `q` across all
    /// intentions, combining per-cluster top-n lists with `n = 2k` (the
    /// paper's empirically good choice).
    pub fn top_k(&self, collection: &PostCollection, q: usize, k: usize) -> Vec<(u32, f64)> {
        self.top_k_with_n(collection, q, k, 2 * k)
    }

    /// Algorithm 2 with an explicit per-intention list length `n` (exposed
    /// for the `ablate_top_n` experiment).
    pub fn top_k_with_n(
        &self,
        collection: &PostCollection,
        q: usize,
        k: usize,
        n: usize,
    ) -> Vec<(u32, f64)> {
        mr_top_k_with(
            collection,
            &self.doc_segments,
            &self.clusters,
            q,
            k,
            n,
            self.weighted_combination,
            self.weighting,
        )
    }

    /// Matches a post that is *not* part of the collection: segments it,
    /// assigns each segment to the nearest intention-cluster centroid, and
    /// runs Algorithms 1 & 2 against the built indices.
    ///
    /// This is the online path a deployed system uses for a freshly
    /// submitted post (the collection-resident path, [`Self::top_k`],
    /// serves the paper's evaluation protocol where queries are sampled
    /// from the collection).
    pub fn match_new_post(
        &self,
        cfg: &PipelineConfig,
        raw_text: &str,
        k: usize,
    ) -> Vec<(u32, f64)> {
        Registry::global().incr("online/new_post_queries", 1);
        let doc = forum_text::Document::parse(forum_text::document::DocId(u32::MAX), raw_text);
        let cmdoc = forum_segment::CmDoc::new(doc);
        if cmdoc.num_units() == 0 {
            return Vec::new();
        }
        let seg = cfg.strategy.run(&cmdoc);
        let whole = cmdoc.whole();

        // Assign each raw segment to the nearest centroid, then refine:
        // same-cluster segments concatenate, as in the offline phase.
        let mut per_cluster: HashMap<usize, Vec<(usize, usize)>> = HashMap::new();
        for s in seg.segments() {
            let mut f = forum_cluster::segment_features(&cmdoc.segment_tables(s), &whole);
            if cfg.type1_weights_only {
                f.truncate(forum_nlp::cm::NUM_FEATURES);
            }
            let cluster = nearest_centroid(&f, &self.centroids);
            per_cluster
                .entry(cluster)
                .or_default()
                .push((s.first, s.end));
        }

        let n = 2 * k;
        let mut acc: HashMap<u32, f64> = HashMap::new();
        for (cluster, mut ranges) in per_cluster {
            ranges.sort_unstable();
            let mut terms = Vec::new();
            for &(a, b) in &ranges {
                terms.extend(cmdoc.doc.terms_in_sentences(a, b));
            }
            if terms.is_empty() {
                continue;
            }
            let index = &self.clusters[cluster].index;
            let weight = if self.weighted_combination {
                let mut distinct: Vec<&str> = terms.iter().map(String::as_str).collect();
                distinct.sort_unstable();
                distinct.dedup();
                let mean =
                    distinct.iter().map(|t| index.idf(t)).sum::<f64>() / distinct.len() as f64;
                mean * mean
            } else {
                1.0
            };
            if weight <= 0.0 {
                continue;
            }
            let query = SegmentIndex::query_from_terms(&terms);
            for (owner, score) in index.top_owners_with(&query, n, self.weighting, None) {
                *acc.entry(owner).or_insert(0.0) += weight * score;
            }
        }
        let mut out: Vec<(u32, f64)> = acc.into_iter().collect();
        out.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("scores are finite")
                .then(a.0.cmp(&b.0))
        });
        out.truncate(k);
        out
    }

    /// Incrementally adds a new post to the collection and the built
    /// pipeline: parses and annotates it, segments it, assigns its segments
    /// to the nearest existing intention clusters, and appends the refined
    /// segments to the per-cluster indices. Returns the new document id.
    ///
    /// Cluster centroids are intentionally left unchanged — the paper's
    /// position (Section 9.2) is that grouping is cheap enough to re-run
    /// periodically, and that intentions drift very little over time (their
    /// two-consecutive-years StackOverflow comparison; reproduced by the
    /// `exp_drift` experiment).
    pub fn add_post(
        &mut self,
        collection: &mut PostCollection,
        cfg: &PipelineConfig,
        raw_text: &str,
    ) -> forum_text::document::DocId {
        let obs = Registry::global();
        let timer = obs.is_enabled().then(std::time::Instant::now);
        let id = forum_text::document::DocId(collection.len() as u32);
        let doc = forum_text::Document::parse(id, raw_text);
        let cmdoc = forum_segment::CmDoc::new(doc);
        let seg = if cmdoc.num_units() == 0 {
            Segmentation::single(1)
        } else {
            cfg.strategy.run(&cmdoc)
        };
        let whole = cmdoc.whole();

        let mut per_cluster: HashMap<usize, Vec<(usize, usize)>> = HashMap::new();
        if cmdoc.num_units() > 0 {
            for s in seg.segments() {
                let mut f = forum_cluster::segment_features(&cmdoc.segment_tables(s), &whole);
                if cfg.type1_weights_only {
                    f.truncate(forum_nlp::cm::NUM_FEATURES);
                }
                let cluster = nearest_centroid(&f, &self.centroids);
                per_cluster
                    .entry(cluster)
                    .or_default()
                    .push((s.first, s.end));
            }
        }

        let mut refined: Vec<RefinedSegment> = per_cluster
            .into_iter()
            .map(|(cluster, mut ranges)| {
                ranges.sort_unstable();
                RefinedSegment { cluster, ranges }
            })
            .collect();
        refined.sort_unstable_by_key(|s| s.ranges[0]);

        collection.docs.push(cmdoc);
        let d = collection.len() - 1;
        for s in &refined {
            let terms = segment_terms(collection, d, s);
            self.clusters[s.cluster].index.append_unit(d as u32, &terms);
        }
        self.raw_segmentations.push(seg);
        self.doc_segments.push(refined);
        obs.incr("offline/posts_added", 1);
        if let Some(t) = timer {
            obs.record_duration("offline/add_post_ns", t.elapsed());
        }
        id
    }

    /// Histogram of segments-per-post for Table 3: `hist[i]` = number of
    /// posts with `i+1` segments (posts with more than `max` segments land
    /// in the last bucket). `refined` selects before/after grouping.
    pub fn granularity_histogram(&self, refined: bool, max: usize) -> Vec<usize> {
        let mut hist = vec![0usize; max];
        let counts: Vec<usize> = if refined {
            self.doc_segments.iter().map(Vec::len).collect()
        } else {
            self.raw_segmentations
                .iter()
                .map(Segmentation::num_segments)
                .collect()
        };
        for c in counts {
            let bucket = c.clamp(1, max) - 1;
            hist[bucket] += 1;
        }
        hist
    }
}

/// Reusable per-worker query scratch: the index-level scoring scratch plus
/// Algorithm 2's combination accumulator. One per thread; the batch
/// [`crate::engine::QueryEngine`] reuses it across every query a worker
/// serves, so the steady-state online path allocates nothing
/// postings-sized.
#[derive(Debug, Default)]
pub struct QueryScratch {
    /// Dense unit-score accumulators + owner aggregation (see
    /// [`forum_index::ScoreScratch`]).
    pub(crate) index: forum_index::ScoreScratch,
    /// Algorithm 2's per-document combined scores (crate-visible so the
    /// mapped [`crate::view::StoreView`] query path reuses the same
    /// accumulator).
    pub(crate) acc: HashMap<u32, f64>,
}

impl QueryScratch {
    /// An empty scratch; it grows to the working set of the queries it
    /// serves.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the scan-work counters accumulated since the last take (a
    /// query's cost attribution) and resets them.
    pub fn take_costs(&mut self) -> forum_index::ScanCosts {
        self.index.costs.take()
    }
}

/// One intention cluster consulted by a query document: every refined
/// segment of the query that falls in `cluster`, with sentence ranges
/// concatenated in segment order.
///
/// After segmentation refinement a document holds at most one segment per
/// cluster, so each group is exactly one segment. Under the
/// `skip_refinement` ablation a document may hold several segments in one
/// cluster; grouping them restores Algorithm 2's "one list per intention"
/// contract (scanning the cluster once with all of the query's terms for
/// that intention) instead of scanning the same cluster once per segment —
/// which double-counted every match.
#[derive(Debug, Clone)]
pub struct QueryClusterGroup {
    /// The intention cluster.
    pub cluster: usize,
    /// The query document's sentence ranges refined into this cluster.
    pub ranges: Vec<(usize, usize)>,
}

/// Groups `doc_segments[q]` by cluster, in first-appearance order.
pub fn query_cluster_groups(
    doc_segments: &[Vec<RefinedSegment>],
    q: usize,
) -> Vec<QueryClusterGroup> {
    query_cluster_groups_of(&doc_segments[q])
}

/// [`query_cluster_groups`] over one document's segments directly — the
/// mapped store path ([`crate::view::StoreView`]) holds a single
/// document's segment list, not the whole table, and must group it
/// exactly the way the heap path does.
pub fn query_cluster_groups_of(segs: &[RefinedSegment]) -> Vec<QueryClusterGroup> {
    let mut groups: Vec<QueryClusterGroup> = Vec::new();
    for seg in segs {
        // Linear scan: a document consults a handful of clusters at most.
        match groups.iter_mut().find(|g| g.cluster == seg.cluster) {
            Some(g) => g.ranges.extend_from_slice(&seg.ranges),
            None => groups.push(QueryClusterGroup {
                cluster: seg.cluster,
                ranges: seg.ranges.clone(),
            }),
        }
    }
    groups
}

/// The query document's sentence ranges falling in `cluster` (the ranges of
/// the matching [`QueryClusterGroup`], or empty if the query has no segment
/// there).
fn query_cluster_ranges(
    doc_segments: &[Vec<RefinedSegment>],
    q: usize,
    cluster: usize,
) -> Vec<(usize, usize)> {
    doc_segments[q]
        .iter()
        .filter(|s| s.cluster == cluster)
        .flat_map(|s| s.ranges.iter().copied())
        .collect()
}

/// Algorithm 1 as a free function over assembled MR structures.
pub fn single_intention_top_n(
    collection: &PostCollection,
    doc_segments: &[Vec<RefinedSegment>],
    clusters: &[ClusterIndex],
    q: usize,
    cluster: usize,
    n: usize,
) -> Vec<(u32, f64)> {
    single_intention_top_n_with(
        collection,
        doc_segments,
        clusters,
        q,
        cluster,
        n,
        forum_index::WeightingScheme::PaperTfIdf,
    )
}

/// [`single_intention_top_n`] with an explicit weighting scheme.
///
/// Each call counts as one Algorithm 1 scan in the process-wide metrics
/// registry (`online/algo1_scans`, latency in `online/algo1_ns`).
#[allow(clippy::too_many_arguments)]
pub fn single_intention_top_n_with(
    collection: &PostCollection,
    doc_segments: &[Vec<RefinedSegment>],
    clusters: &[ClusterIndex],
    q: usize,
    cluster: usize,
    n: usize,
    scheme: forum_index::WeightingScheme,
) -> Vec<(u32, f64)> {
    let ranges = query_cluster_ranges(doc_segments, q, cluster);
    single_intention_scan(
        collection,
        clusters,
        q,
        cluster,
        &ranges,
        n,
        scheme,
        &mut forum_index::ScoreScratch::new(),
    )
}

/// Algorithm 1's scan of one cluster: queries the cluster index with the
/// terms of the query document's `ranges` and returns the top `n` *distinct
/// non-query documents*, each scored by its best-matching unit.
#[allow(clippy::too_many_arguments)]
pub fn single_intention_scan(
    collection: &PostCollection,
    clusters: &[ClusterIndex],
    q: usize,
    cluster: usize,
    ranges: &[(usize, usize)],
    n: usize,
    scheme: forum_index::WeightingScheme,
    scratch: &mut forum_index::ScoreScratch,
) -> Vec<(u32, f64)> {
    single_intention_scan_filtered(
        collection, clusters, q, cluster, ranges, n, scheme, None, scratch,
    )
}

/// [`single_intention_scan`] with a per-document visibility
/// [`forum_index::DocFilter`] threaded into the postings scan: hidden
/// owners never consume a top-n slot (per-tenant board/category
/// filtering for the serving tier).
#[allow(clippy::too_many_arguments)]
pub fn single_intention_scan_filtered(
    collection: &PostCollection,
    clusters: &[ClusterIndex],
    q: usize,
    cluster: usize,
    ranges: &[(usize, usize)],
    n: usize,
    scheme: forum_index::WeightingScheme,
    filter: Option<forum_index::DocFilter>,
    scratch: &mut forum_index::ScoreScratch,
) -> Vec<(u32, f64)> {
    let terms = ranges_terms(collection, q, ranges);
    if terms.is_empty() {
        return Vec::new();
    }
    let obs = Registry::global();
    let timer = obs.is_enabled().then(Instant::now);
    let query = SegmentIndex::query_from_terms(&terms);
    let hits = clusters[cluster].index.top_owners_filtered(
        &query,
        n,
        scheme,
        Some(q as u32),
        filter,
        scratch,
    );
    if let Some(t) = timer {
        obs.incr("online/algo1_scans", 1);
        obs.record_duration("online/algo1_ns", t.elapsed());
    }
    hits
}

/// Algorithm 2 as a free function over assembled MR structures: combine
/// per-intention top-n lists into the final top-k.
pub fn mr_top_k(
    collection: &PostCollection,
    doc_segments: &[Vec<RefinedSegment>],
    clusters: &[ClusterIndex],
    q: usize,
    k: usize,
    n: usize,
    weighted: bool,
) -> Vec<(u32, f64)> {
    mr_top_k_with(
        collection,
        doc_segments,
        clusters,
        q,
        k,
        n,
        weighted,
        forum_index::WeightingScheme::PaperTfIdf,
    )
}

/// [`mr_top_k`] with an explicit weighting scheme.
///
/// Each call counts one query (`online/queries`) and the full combination
/// latency (`online/algo2_ns`) in the process-wide metrics registry.
#[allow(clippy::too_many_arguments)]
pub fn mr_top_k_with(
    collection: &PostCollection,
    doc_segments: &[Vec<RefinedSegment>],
    clusters: &[ClusterIndex],
    q: usize,
    k: usize,
    n: usize,
    weighted: bool,
    scheme: forum_index::WeightingScheme,
) -> Vec<(u32, f64)> {
    mr_top_k_scratch(
        collection,
        doc_segments,
        clusters,
        q,
        k,
        n,
        weighted,
        scheme,
        &mut QueryScratch::new(),
    )
}

/// The scratch-reusing core of [`mr_top_k_with`]: one Algorithm 1 scan per
/// *distinct* consulted cluster (see [`QueryClusterGroup`]), combined into
/// the final top-k. The batch engine (and the live-serving epoch view in
/// `forum-ingest`) call this with a per-worker scratch.
#[allow(clippy::too_many_arguments)]
pub fn mr_top_k_scratch(
    collection: &PostCollection,
    doc_segments: &[Vec<RefinedSegment>],
    clusters: &[ClusterIndex],
    q: usize,
    k: usize,
    n: usize,
    weighted: bool,
    scheme: forum_index::WeightingScheme,
    scratch: &mut QueryScratch,
) -> Vec<(u32, f64)> {
    let obs = Registry::global();
    let timer = obs.is_enabled().then(Instant::now);
    let groups = query_cluster_groups(doc_segments, q);
    scratch.acc.clear();
    for group in &groups {
        let weight = if weighted {
            let terms = ranges_terms(collection, q, &group.ranges);
            cluster_weight_for_terms(&clusters[group.cluster].index, &terms)
        } else {
            1.0
        };
        if weight <= 0.0 {
            continue;
        }
        let hits = single_intention_scan(
            collection,
            clusters,
            q,
            group.cluster,
            &group.ranges,
            n,
            scheme,
            &mut scratch.index,
        );
        for (owner, score) in hits {
            *scratch.acc.entry(owner).or_insert(0.0) += weight * score;
        }
    }
    let out = rank_combined(&scratch.acc, k);
    if let Some(t) = timer {
        obs.incr("online/queries", 1);
        obs.record_duration("online/algo2_ns", t.elapsed());
    }
    out
}

/// Algorithm 2's final ranking of the combined accumulator: score
/// descending, document id ascending on ties, truncated to `k`. Shared by
/// the heap path and the mapped [`crate::view::StoreView`] path so the
/// tie-break is identical byte for byte.
pub(crate) fn rank_combined(acc: &HashMap<u32, f64>, k: usize) -> Vec<(u32, f64)> {
    let mut out: Vec<(u32, f64)> = acc.iter().map(|(&d, &s)| (d, s)).collect();
    out.sort_unstable_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("scores are finite")
            .then(a.0.cmp(&b.0))
    });
    out.truncate(k);
    out
}

/// The unsupervised cluster weight of the weighted combination: the mean
/// probabilistic IDF of the distinct query terms within the cluster's
/// index, squared to sharpen the contrast between distinctive
/// (request-like) and boilerplate (context-like) segments.
pub fn cluster_weight_for_terms(index: &SegmentIndex, terms: &[String]) -> f64 {
    if terms.is_empty() {
        return 0.0;
    }
    // Deterministic iteration (a HashSet would make score sums vary in the
    // last ulps between runs).
    let mut distinct: Vec<&str> = terms.iter().map(String::as_str).collect();
    distinct.sort_unstable();
    distinct.dedup();
    let total: f64 = distinct.iter().map(|t| index.idf(t)).sum();
    let mean = total / distinct.len() as f64;
    mean * mean
}

/// The segmentation-refinement and indexing phase, shared by the
/// intention pipeline and the Content-MR ablation: groups each document's
/// segments by cluster label (concatenating same-cluster segments unless
/// `skip_refinement`), then builds one full-text index per cluster.
///
/// `seg_owner[i]` is the owning document and sentence range of segment `i`;
/// `labels[i]` its cluster (`None` = dropped as noise).
pub fn assemble_clusters(
    collection: &PostCollection,
    seg_owner: &[(usize, forum_text::Segment)],
    labels: &[Option<usize>],
    num_clusters: usize,
    skip_refinement: bool,
) -> (Vec<Vec<RefinedSegment>>, Vec<ClusterIndex>) {
    let mut doc_segments: Vec<Vec<RefinedSegment>> = vec![Vec::new(); collection.len()];
    if skip_refinement {
        for (i, &(d, s)) in seg_owner.iter().enumerate() {
            if let Some(c) = labels[i] {
                doc_segments[d].push(RefinedSegment {
                    cluster: c,
                    ranges: vec![(s.first, s.end)],
                });
            }
        }
    } else {
        // Per document, concatenate same-cluster segments.
        let mut per_doc: Vec<HashMap<usize, Vec<(usize, usize)>>> =
            vec![HashMap::new(); collection.len()];
        for (i, &(d, s)) in seg_owner.iter().enumerate() {
            if let Some(c) = labels[i] {
                per_doc[d].entry(c).or_default().push((s.first, s.end));
            }
        }
        for (d, groups) in per_doc.into_iter().enumerate() {
            let mut segs: Vec<RefinedSegment> = groups
                .into_iter()
                .map(|(cluster, mut ranges)| {
                    ranges.sort_unstable();
                    RefinedSegment { cluster, ranges }
                })
                .collect();
            segs.sort_unstable_by_key(|s| s.ranges[0]);
            doc_segments[d] = segs;
        }
    }

    let mut builders: Vec<IndexBuilder> = (0..num_clusters).map(|_| IndexBuilder::new()).collect();
    for (d, segs) in doc_segments.iter().enumerate() {
        for seg in segs {
            let terms = segment_terms(collection, d, seg);
            builders[seg.cluster].add_unit(d as u32, &terms);
        }
    }
    let clusters = builders
        .into_iter()
        .map(|b| ClusterIndex { index: b.build() })
        .collect();
    (doc_segments, clusters)
}

/// Mean of a set of vectors.
fn mean_vector(vecs: &PointMatrix) -> Vec<f64> {
    if vecs.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0.0; vecs.dim()];
    for v in vecs.iter_rows() {
        for (o, x) in out.iter_mut().zip(v) {
            *o += x;
        }
    }
    for o in &mut out {
        *o /= vecs.len() as f64;
    }
    out
}

/// Index of the centroid nearest to `point` (the shared
/// [`forum_cluster::nearest_centroid`] assignment, un-gated: the pipeline
/// always has at least one centroid and assigns every point somewhere).
fn nearest_centroid(point: &[f64], centroids: &[Vec<f64>]) -> usize {
    forum_cluster::nearest_centroid(point, centroids)
        .map(|(i, _)| i)
        .expect("at least one finite centroid")
}

/// The normalized terms of a refined segment.
pub fn segment_terms(collection: &PostCollection, doc: usize, seg: &RefinedSegment) -> Vec<String> {
    ranges_terms(collection, doc, &seg.ranges)
}

/// The normalized terms of `doc`'s sentences covered by `ranges`, in range
/// order.
pub fn ranges_terms(
    collection: &PostCollection,
    doc: usize,
    ranges: &[(usize, usize)],
) -> Vec<String> {
    doc_ranges_terms(&collection.docs[doc], ranges)
}

/// [`ranges_terms`] over a single annotated document — the unit the mapped
/// store path materializes lazily.
pub(crate) fn doc_ranges_terms(
    doc: &forum_segment::CmDoc,
    ranges: &[(usize, usize)],
) -> Vec<String> {
    let mut terms = Vec::new();
    for &(first, end) in ranges {
        terms.extend(doc.doc.terms_in_sentences(first, end));
    }
    terms
}

#[cfg(test)]
mod tests {
    use super::*;
    use forum_corpus::{Corpus, Domain, GenConfig};

    fn build_small(n: usize, seed: u64) -> (Corpus, PostCollection, IntentPipeline) {
        let corpus = Corpus::generate(&GenConfig {
            domain: Domain::TechSupport,
            num_posts: n,
            seed,
        });
        let coll = PostCollection::from_corpus(&corpus);
        let pipe = IntentPipeline::build(&coll, &PipelineConfig::default());
        (corpus, coll, pipe)
    }

    #[test]
    fn builds_clusters_and_indices() {
        let (_, coll, pipe) = build_small(120, 1);
        assert!(pipe.num_clusters() >= 1, "no clusters formed");
        assert!(
            pipe.num_clusters() <= 16,
            "too many clusters: {}",
            pipe.num_clusters()
        );
        // Every document has at least one refined segment.
        for (d, segs) in pipe.doc_segments.iter().enumerate() {
            assert!(!segs.is_empty(), "doc {d} lost all segments");
        }
        let _ = coll;
    }

    #[test]
    fn refinement_caps_segments_at_one_per_cluster() {
        let (_, _, pipe) = build_small(80, 2);
        for segs in &pipe.doc_segments {
            let mut seen = std::collections::HashSet::new();
            for s in segs {
                assert!(seen.insert(s.cluster), "two segments in one cluster");
            }
        }
    }

    #[test]
    fn refinement_reduces_or_keeps_granularity() {
        let (_, _, pipe) = build_small(80, 3);
        for (raw, segs) in pipe.raw_segmentations.iter().zip(&pipe.doc_segments) {
            assert!(segs.len() <= raw.num_segments());
        }
    }

    #[test]
    fn top_k_returns_at_most_k_and_excludes_query() {
        let (_, coll, pipe) = build_small(100, 4);
        for q in 0..10 {
            let hits = pipe.top_k(&coll, q, 5);
            assert!(hits.len() <= 5);
            assert!(hits.iter().all(|&(d, _)| d as usize != q));
            for w in hits.windows(2) {
                assert!(w[0].1 >= w[1].1);
            }
        }
    }

    #[test]
    fn retrieval_finds_related_posts_above_chance() {
        let (corpus, coll, pipe) = build_small(700, 5);
        let mut hits = 0usize;
        let mut total = 0usize;
        for q in 0..30 {
            for (d, _) in pipe.top_k(&coll, q, 5) {
                if corpus.related(q, d as usize) {
                    hits += 1;
                }
                total += 1;
            }
        }
        // Chance precision = P(same problem ∧ focus ∧ component) < 1%.
        let precision = hits as f64 / total.max(1) as f64;
        assert!(
            precision > 0.08,
            "precision {precision} not far above chance ({hits}/{total})"
        );
    }

    #[test]
    fn granularity_histogram_sums_to_collection() {
        let (_, coll, pipe) = build_small(60, 6);
        let before = pipe.granularity_histogram(false, 8);
        let after = pipe.granularity_histogram(true, 8);
        assert_eq!(before.iter().sum::<usize>(), coll.len());
        assert_eq!(after.iter().sum::<usize>(), coll.len());
    }

    #[test]
    fn timings_are_populated() {
        let (_, _, pipe) = build_small(40, 7);
        assert!(pipe.timings.total() > Duration::ZERO);
    }

    #[test]
    fn deterministic_build() {
        let (_, coll, pipe1) = build_small(50, 8);
        let pipe2 = IntentPipeline::build(&coll, &PipelineConfig::default());
        assert_eq!(pipe1.num_clusters(), pipe2.num_clusters());
        let h1 = pipe1.top_k(&coll, 0, 5);
        let h2 = pipe2.top_k(&coll, 0, 5);
        assert_eq!(h1, h2);
    }

    #[test]
    fn match_new_post_finds_similar_content() {
        let (corpus, _coll, pipe) = build_small(700, 11);
        // A fresh post phrased like the corpus's tech questions.
        let text = "I have an HP system with a RAID 0 controller. \
            The RAID array does not work anymore. \
            Do you know whether the RAID 0 controller would degrade performance?";
        let hits = pipe.match_new_post(&PipelineConfig::default(), text, 5);
        assert!(!hits.is_empty());
        for w in hits.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // The top hits should be raid-storage posts (problem 0 in the tech
        // domain spec) far more often than chance.
        let raid_hits = hits
            .iter()
            .filter(|&&(d, _)| {
                Domain::TechSupport.spec().problems[corpus.posts[d as usize].problem as usize].name
                    == "raid-storage"
            })
            .count();
        let chance = 1.0 / Domain::TechSupport.spec().problems.len() as f64;
        assert!(
            raid_hits as f64 / hits.len() as f64 > 2.0 * chance,
            "{raid_hits}/{}",
            hits.len()
        );
    }

    #[test]
    fn match_new_post_empty_text() {
        let (_, _, pipe) = build_small(60, 12);
        assert!(pipe
            .match_new_post(&PipelineConfig::default(), "", 5)
            .is_empty());
    }

    #[test]
    fn add_post_extends_pipeline_consistently() {
        let (_, mut coll, mut pipe) = build_small(120, 13);
        let before = coll.len();
        let text = "My HP Pavilion runs Linux and has a wireless card. \
            The connection drops every hour. I reinstalled the wireless driver. \
            Is the wireless card compatible with Linux?";
        let id = pipe.add_post(&mut coll, &PipelineConfig::default(), text);
        assert_eq!(id.as_usize(), before);
        assert_eq!(coll.len(), before + 1);
        assert_eq!(pipe.doc_segments.len(), before + 1);
        assert!(!pipe.doc_segments[before].is_empty());
        // The new post is retrievable: querying it returns results, and it
        // can appear in other posts' results.
        let hits = pipe.top_k(&coll, before, 5);
        assert!(!hits.is_empty());
        assert!(hits.iter().all(|&(d, _)| (d as usize) != before));
        // Adding the same text again makes the first copy its top match.
        let id2 = pipe.add_post(&mut coll, &PipelineConfig::default(), text);
        let hits2 = pipe.top_k(&coll, id2.as_usize(), 5);
        assert_eq!(hits2.first().map(|&(d, _)| d as usize), Some(before));
    }

    #[test]
    fn single_intention_lists_respect_n() {
        let (_, coll, pipe) = build_small(100, 9);
        for c in 0..pipe.num_clusters() {
            let hits = pipe.single_intention_top_n(&coll, 0, c, 3);
            assert!(hits.len() <= 3);
        }
    }

    /// Regression (double counting): under `skip_refinement` a document may
    /// hold several segments in one cluster. Algorithm 2 must consult each
    /// cluster once with all of the query's terms for that intention —
    /// exactly what refinement would have produced — not once per segment
    /// (which scanned the same cluster repeatedly, each time with the first
    /// segment's terms, double-counting every candidate).
    #[test]
    fn unrefined_duplicate_clusters_match_refined_scoring() {
        let coll = PostCollection::from_raw_texts(&[
            "My raid controller fails. The wireless driver crashes.",
            "The raid controller in my server fails under load.",
            "A wireless driver crash after resume.",
            "Printers jam on long jobs.",
        ]);
        // Query doc 0: two separate segments refined into cluster 0 — the
        // `skip_refinement` shape (legal because refinement was skipped).
        let unrefined = vec![
            vec![
                RefinedSegment {
                    cluster: 0,
                    ranges: vec![(0, 1)],
                },
                RefinedSegment {
                    cluster: 0,
                    ranges: vec![(1, 2)],
                },
            ],
            vec![RefinedSegment {
                cluster: 0,
                ranges: vec![(0, 1)],
            }],
            vec![RefinedSegment {
                cluster: 0,
                ranges: vec![(0, 1)],
            }],
            vec![RefinedSegment {
                cluster: 0,
                ranges: vec![(0, 1)],
            }],
        ];
        // The same documents with doc 0's segments concatenated — what
        // refinement produces.
        let mut refined = unrefined.clone();
        refined[0] = vec![RefinedSegment {
            cluster: 0,
            ranges: vec![(0, 1), (1, 2)],
        }];

        // One fixed index (the unrefined build — what `skip_refinement`
        // actually indexes); only the query-side segmentation varies.
        let mut b = IndexBuilder::new();
        for (d, segs) in unrefined.iter().enumerate() {
            for seg in segs {
                b.add_unit(d as u32, &segment_terms(&coll, d, seg));
            }
        }
        let clusters = vec![ClusterIndex { index: b.build() }];

        for weighted in [false, true] {
            let got = mr_top_k_with(
                &coll,
                &unrefined,
                &clusters,
                0,
                5,
                10,
                weighted,
                forum_index::WeightingScheme::PaperTfIdf,
            );
            let want = mr_top_k_with(
                &coll,
                &refined,
                &clusters,
                0,
                5,
                10,
                weighted,
                forum_index::WeightingScheme::PaperTfIdf,
            );
            assert!(!want.is_empty(), "weighted={weighted}: degenerate setup");
            assert_eq!(
                got, want,
                "weighted={weighted}: duplicate-cluster query must score \
                 like its refined equivalent (no double counting)"
            );
        }
    }

    /// Regression (owner dedup): when one document owns several units in a
    /// cluster, Algorithm 1 must return `n` *distinct* documents, each
    /// scored by its best unit — not burn list slots on (or sum over)
    /// duplicate owners.
    #[test]
    fn single_intention_dedupes_owners_and_fills_n() {
        let coll = PostCollection::from_raw_texts(&[
            "The raid controller fails.",
            "My raid controller fails. Another raid controller failure here.",
            "A raid controller disk issue.",
            "Some raid controller trouble again.",
            // Filler below keeps the shared terms' document frequency under
            // half the units, so their probabilistic IDF stays positive.
            "Printers jam on long jobs.",
            "The laptop screen flickers.",
            "My mouse wheel broke.",
            "Keyboard keys stick sometimes.",
            "The monitor shows green lines.",
            "A fan makes loud noise.",
            "The battery drains quickly.",
            "Speakers produce static sound.",
        ]);
        let doc_segments: Vec<Vec<RefinedSegment>> = (0..coll.len())
            .map(|_| {
                vec![RefinedSegment {
                    cluster: 0,
                    ranges: vec![(0, 1)],
                }]
            })
            .collect();
        // Doc 1 owns two units (its two raid sentences) — the
        // `skip_refinement` shape again, this time on the indexed side.
        let mut b = IndexBuilder::new();
        b.add_unit(0, &ranges_terms(&coll, 0, &[(0, 1)]));
        b.add_unit(1, &ranges_terms(&coll, 1, &[(0, 1)]));
        b.add_unit(1, &ranges_terms(&coll, 1, &[(1, 2)]));
        for d in 2..coll.len() as u32 {
            b.add_unit(d, &ranges_terms(&coll, d as usize, &[(0, 1)]));
        }
        let clusters = vec![ClusterIndex { index: b.build() }];

        let scheme = forum_index::WeightingScheme::PaperTfIdf;
        let hits = single_intention_top_n_with(&coll, &doc_segments, &clusters, 0, 0, 3, scheme);
        // All three non-query documents score > 0 on "raid", so the list
        // must hold exactly the 3 distinct owners.
        assert_eq!(hits.len(), 3, "{hits:?}");
        let mut owners: Vec<u32> = hits.iter().map(|&(d, _)| d).collect();
        owners.sort_unstable();
        owners.dedup();
        assert_eq!(owners, vec![1, 2, 3], "{hits:?}");
        assert!(hits.iter().all(|&(d, _)| d != 0), "query doc leaked in");

        // Doc 1's score is its best unit, not the sum of both units.
        let index = &clusters[0].index;
        let query = SegmentIndex::query_from_terms(&ranges_terms(&coll, 0, &[(0, 1)]));
        let unit_scores: Vec<f64> = index
            .top_n_reference(&query, usize::MAX, scheme)
            .into_iter()
            .filter(|&(u, _)| index.owner(u) == 1)
            .map(|(_, s)| s)
            .collect();
        assert_eq!(unit_scores.len(), 2, "both doc-1 units should match");
        let best = unit_scores.iter().cloned().fold(f64::MIN, f64::max);
        let doc1 = hits.iter().find(|&&(d, _)| d == 1).expect("doc 1 ranked");
        assert_eq!(doc1.1, best, "owner score must be max, not sum");
    }
}
