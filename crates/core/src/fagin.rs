//! Exact top-k combination via Fagin's Threshold Algorithm.
//!
//! Section 7 notes that "instead of considering the top-n documents for
//! each intention, one could consider only those that are above a specific
//! threshold [Fagin, PODS'96]; however, to be fair across all the
//! intentions ... we opted for the top-n approach." This module implements
//! that alternative: the *exact* top-k under the (optionally weighted) sum
//! of per-intention scores, found with the classic threshold algorithm —
//! sorted access down each intention list in parallel, random access to
//! complete each newly seen document's aggregate, and early termination
//! once the k-th best aggregate reaches the threshold (the sum of the
//! current sorted-access frontier).
//!
//! The `ablate_combination` experiment compares it against Algorithm 2's
//! top-n truncation: TA is exact (no document that scores well overall but
//! never cracks a per-intention top-n can be missed) at the cost of deeper
//! list access.

use crate::collection::PostCollection;
use crate::engine::scan_to_trace_costs;
use crate::pipeline::{query_cluster_groups, ClusterIndex, IntentPipeline, RefinedSegment};
use forum_index::{ScanCosts, ScoreScratch, SegmentIndex, WeightingScheme};
use forum_obs::{Trace, TraceCosts};
use std::collections::HashMap;
use std::time::Instant;

/// One intention's contribution for a given query: its weight, the scores
/// sorted descending (sorted access), and a map for random access.
struct IntentionList {
    weight: f64,
    sorted: Vec<(u32, f64)>,
    by_doc: HashMap<u32, f64>,
}

/// Builds the per-intention lists for query document `q`.
fn intention_lists(
    collection: &PostCollection,
    doc_segments: &[Vec<RefinedSegment>],
    clusters: &[ClusterIndex],
    q: usize,
    weighted: bool,
    scheme: WeightingScheme,
    costs: &mut ScanCosts,
) -> Vec<IntentionList> {
    let mut lists = Vec::new();
    // One scratch across the per-cluster scans: `accumulate_scores` resets
    // it per query, so scores are bit-identical to fresh allocations, and
    // the scan-work counters accumulate across every consulted cluster.
    let mut scratch = ScoreScratch::new();
    // One list per *distinct* consulted cluster (see `query_cluster_groups`)
    // so no intention is counted twice under the `skip_refinement` ablation.
    for group in query_cluster_groups(doc_segments, q) {
        let mut terms = Vec::new();
        for &(a, b) in &group.ranges {
            terms.extend(collection.docs[q].doc.terms_in_sentences(a, b));
        }
        if terms.is_empty() {
            continue;
        }
        let index = &clusters[group.cluster].index;
        let weight = if weighted {
            let mut distinct: Vec<&str> = terms.iter().map(String::as_str).collect();
            distinct.sort_unstable();
            distinct.dedup();
            let mean = distinct.iter().map(|t| index.idf(t)).sum::<f64>() / distinct.len() as f64;
            mean * mean
        } else {
            1.0
        };
        if weight <= 0.0 {
            continue;
        }
        let query = SegmentIndex::query_from_terms(&terms);
        // Full (untruncated) per-owner list, already sorted descending.
        // Owner aggregation keeps each document's best unit, so `by_doc`
        // has exactly one entry per document.
        let sorted: Vec<(u32, f64)> =
            index.top_owners_with_scratch(&query, usize::MAX, scheme, Some(q as u32), &mut scratch);
        let by_doc = sorted.iter().copied().collect();
        lists.push(IntentionList {
            weight,
            sorted,
            by_doc,
        });
    }
    costs.merge(&scratch.costs.take());
    lists
}

/// The exact top-k documents related to `q` under the weighted sum of
/// per-intention scores, via the threshold algorithm.
///
/// Observability (process-wide registry): one `online/fagin_queries` count
/// per call, the number of frontier rounds in `online/fagin_rounds`, sorted
/// accesses in `online/fagin_sorted_accesses`, and latency in
/// `online/fagin_ns`.
pub fn exact_top_k(
    collection: &PostCollection,
    pipeline: &IntentPipeline,
    q: usize,
    k: usize,
) -> Vec<(u32, f64)> {
    exact_top_k_traced(collection, pipeline, q, k, None)
}

/// [`exact_top_k`] recording `fagin/lists` (list construction with its
/// scan-work counters) and `fagin/rounds` (the TA loop; sorted accesses
/// count as postings scanned) spans into `trace` when one is supplied.
/// Results are bit-identical with or without a trace.
pub fn exact_top_k_traced(
    collection: &PostCollection,
    pipeline: &IntentPipeline,
    q: usize,
    k: usize,
    mut trace: Option<&mut Trace>,
) -> Vec<(u32, f64)> {
    let obs = forum_obs::Registry::global();
    let timer = obs.is_enabled().then(std::time::Instant::now);
    let mut sorted_accesses = 0u64;
    let list_start = Instant::now();
    let mut scan_costs = ScanCosts::default();
    let lists = intention_lists(
        collection,
        &pipeline.doc_segments,
        &pipeline.clusters,
        q,
        pipeline.weighted_combination,
        pipeline.weighting,
        &mut scan_costs,
    );
    if let Some(t) = trace.as_deref_mut() {
        t.push_span(
            "fagin/lists",
            list_start,
            scan_to_trace_costs(scan_costs, lists.len() as u64),
        );
    }
    let round_start = Instant::now();
    if lists.is_empty() {
        return Vec::new();
    }

    let aggregate = |doc: u32| -> f64 {
        lists
            .iter()
            .map(|l| l.weight * l.by_doc.get(&doc).copied().unwrap_or(0.0))
            .sum()
    };

    let mut best: Vec<(u32, f64)> = Vec::new(); // kept sorted descending
    let mut seen: std::collections::HashSet<u32> = Default::default();
    let mut depth = 0usize;
    loop {
        // Threshold: the weighted sum of the scores at the current frontier.
        let mut threshold = 0.0;
        let mut any_remaining = false;
        for l in &lists {
            if let Some(&(_, s)) = l.sorted.get(depth) {
                threshold += l.weight * s;
                any_remaining = true;
            }
        }
        if !any_remaining {
            break;
        }
        // Sorted access at this depth on every list; random access completes
        // each newly seen document.
        for l in &lists {
            let Some(&(doc, _)) = l.sorted.get(depth) else {
                continue;
            };
            sorted_accesses += 1;
            if !seen.insert(doc) {
                continue;
            }
            let score = aggregate(doc);
            let pos = best
                .binary_search_by(|probe| {
                    score
                        .partial_cmp(&probe.1)
                        .expect("scores are finite")
                        .then(probe.0.cmp(&doc))
                })
                .unwrap_or_else(|p| p);
            best.insert(pos, (doc, score));
            best.truncate(k.max(1) * 2); // keep a small buffer
        }
        // Stop when the k-th best aggregate dominates the threshold.
        if best.len() >= k && best[k - 1].1 >= threshold {
            break;
        }
        depth += 1;
    }
    best.truncate(k);
    if let Some(t) = trace {
        t.push_span(
            "fagin/rounds",
            round_start,
            TraceCosts {
                postings_scanned: sorted_accesses,
                ..TraceCosts::default()
            },
        );
    }
    if let Some(t) = timer {
        obs.incr("online/fagin_queries", 1);
        obs.incr("online/fagin_sorted_accesses", sorted_accesses);
        obs.record("online/fagin_rounds", depth as u64 + 1);
        obs.record_duration("online/fagin_ns", t.elapsed());
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use forum_corpus::{Corpus, Domain, GenConfig};

    fn setup() -> (PostCollection, IntentPipeline) {
        let corpus = Corpus::generate(&GenConfig {
            domain: Domain::TechSupport,
            num_posts: 250,
            seed: 21,
        });
        let coll = PostCollection::from_corpus(&corpus);
        let pipe = IntentPipeline::build(&coll, &PipelineConfig::default());
        (coll, pipe)
    }

    /// Brute-force reference: aggregate every document's score directly.
    fn brute_force(
        collection: &PostCollection,
        pipeline: &IntentPipeline,
        q: usize,
        k: usize,
    ) -> Vec<(u32, f64)> {
        let lists = intention_lists(
            collection,
            &pipeline.doc_segments,
            &pipeline.clusters,
            q,
            pipeline.weighted_combination,
            pipeline.weighting,
            &mut ScanCosts::default(),
        );
        let mut acc: HashMap<u32, f64> = HashMap::new();
        for l in &lists {
            for &(doc, s) in &l.sorted {
                *acc.entry(doc).or_insert(0.0) += l.weight * s;
            }
        }
        let mut out: Vec<(u32, f64)> = acc.into_iter().collect();
        out.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        out.truncate(k);
        out
    }

    #[test]
    fn ta_matches_brute_force() {
        let (coll, pipe) = setup();
        for q in [0usize, 5, 33, 120] {
            let ta = exact_top_k(&coll, &pipe, q, 5);
            let bf = brute_force(&coll, &pipe, q, 5);
            assert_eq!(ta.len(), bf.len(), "query {q}");
            for (a, b) in ta.iter().zip(&bf) {
                // Same scores; document ties may order differently.
                assert!((a.1 - b.1).abs() < 1e-9, "query {q}: {ta:?} vs {bf:?}");
            }
        }
    }

    #[test]
    fn ta_never_returns_query_doc() {
        let (coll, pipe) = setup();
        for q in 0..10 {
            assert!(exact_top_k(&coll, &pipe, q, 5)
                .iter()
                .all(|&(d, _)| d as usize != q));
        }
    }

    #[test]
    fn ta_scores_descend() {
        let (coll, pipe) = setup();
        let hits = exact_top_k(&coll, &pipe, 3, 10);
        for w in hits.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}
