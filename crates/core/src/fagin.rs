//! Exact top-k combination via Fagin's Threshold Algorithm.
//!
//! Section 7 notes that "instead of considering the top-n documents for
//! each intention, one could consider only those that are above a specific
//! threshold [Fagin, PODS'96]; however, to be fair across all the
//! intentions ... we opted for the top-n approach." This module implements
//! that alternative: the *exact* top-k under the (optionally weighted) sum
//! of per-intention scores, found with the classic threshold algorithm —
//! sorted access down each intention list in parallel, random access to
//! complete each newly seen document's aggregate, and early termination
//! once the k-th best aggregate reaches the threshold (the sum of the
//! current sorted-access frontier).
//!
//! The `ablate_combination` experiment compares it against Algorithm 2's
//! top-n truncation: TA is exact (no document that scores well overall but
//! never cracks a per-intention top-n can be missed) at the cost of deeper
//! list access.

use crate::collection::PostCollection;
use crate::engine::scan_to_trace_costs;
use crate::pipeline::{query_cluster_groups, ClusterIndex, IntentPipeline, RefinedSegment};
use forum_index::{ScanCosts, ScoreScratch, SegmentIndex, WeightingScheme};
use forum_obs::Trace;
use std::collections::HashMap;
use std::time::Instant;

/// One intention's contribution for a given query: its weight, an *exact
/// prefix* of its ranked list (sorted access), and enough context to
/// deepen the prefix or answer random accesses exactly on demand.
///
/// Materializing the full per-intention ranking defeats the index's
/// impact-ordered early termination (a scan with `n = ∞` can never prune),
/// so TA fetches an exact top-`B` prefix, doubles `B` whenever its frontier
/// outruns the prefix, and answers random accesses for unlisted documents
/// with [`SegmentIndex::score_owner`] — which recomputes the exact Eq. 9
/// owner score bit-identically to the scan.
struct IntentionList<'a> {
    weight: f64,
    /// Exact, descending top-`sorted.len()` prefix of the intention list.
    sorted: Vec<(u32, f64)>,
    /// Random access into the prefix.
    by_doc: HashMap<u32, f64>,
    /// The prefix is the whole positive-scoring list: nothing to deepen,
    /// and absent documents score 0.
    exhausted: bool,
    index: &'a SegmentIndex,
    query: Vec<(String, u32)>,
}

impl IntentionList<'_> {
    /// Re-scans the intention with a larger page until the prefix covers
    /// `depth` or the list runs dry. Each page is exact, so the prefix is
    /// always a true ranking prefix.
    fn ensure_depth(
        &mut self,
        depth: usize,
        scheme: WeightingScheme,
        exclude: u32,
        scratch: &mut ScoreScratch,
        deepenings: &mut u64,
    ) {
        while self.sorted.len() <= depth && !self.exhausted {
            let want = self
                .sorted
                .len()
                .max(16)
                .saturating_mul(2)
                .max(depth.saturating_add(1));
            let hits = self.index.top_owners_with_scratch(
                &self.query,
                want,
                scheme,
                Some(exclude),
                scratch,
            );
            self.exhausted = hits.len() < want;
            self.by_doc = hits.iter().copied().collect();
            self.sorted = hits;
            *deepenings += 1;
        }
    }

    /// The document's exact score in this intention (0 when it has none).
    fn random_access(&self, doc: u32, scheme: WeightingScheme) -> f64 {
        if let Some(&s) = self.by_doc.get(&doc) {
            return s;
        }
        if self.exhausted {
            return 0.0;
        }
        self.index
            .score_owner(&self.query, scheme, doc)
            .unwrap_or(0.0)
    }
}

/// Builds the per-intention lists for query document `q`, fetching an
/// exact top-`initial` prefix of each (`usize::MAX` materializes the full
/// lists, as the brute-force oracle does).
#[allow(clippy::too_many_arguments)] // private plumbing for two call sites
fn intention_lists<'a>(
    collection: &PostCollection,
    doc_segments: &[Vec<RefinedSegment>],
    clusters: &'a [ClusterIndex],
    q: usize,
    weighted: bool,
    scheme: WeightingScheme,
    initial: usize,
    costs: &mut ScanCosts,
) -> Vec<IntentionList<'a>> {
    let mut lists = Vec::new();
    // One scratch across the per-cluster scans: `accumulate_scores` resets
    // it per query, so scores are bit-identical to fresh allocations, and
    // the scan-work counters accumulate across every consulted cluster.
    let mut scratch = ScoreScratch::new();
    // One list per *distinct* consulted cluster (see `query_cluster_groups`)
    // so no intention is counted twice under the `skip_refinement` ablation.
    for group in query_cluster_groups(doc_segments, q) {
        let mut terms = Vec::new();
        for &(a, b) in &group.ranges {
            terms.extend(collection.docs[q].doc.terms_in_sentences(a, b));
        }
        if terms.is_empty() {
            continue;
        }
        let index = &clusters[group.cluster].index;
        let weight = if weighted {
            let mut distinct: Vec<&str> = terms.iter().map(String::as_str).collect();
            distinct.sort_unstable();
            distinct.dedup();
            let mean = distinct.iter().map(|t| index.idf(t)).sum::<f64>() / distinct.len() as f64;
            mean * mean
        } else {
            1.0
        };
        if weight <= 0.0 {
            continue;
        }
        let query = SegmentIndex::query_from_terms(&terms);
        // Exact top-`initial` per-owner prefix, sorted descending. Owner
        // aggregation keeps each document's best unit, so `by_doc` has
        // exactly one entry per document.
        let sorted: Vec<(u32, f64)> =
            index.top_owners_with_scratch(&query, initial, scheme, Some(q as u32), &mut scratch);
        let exhausted = sorted.len() < initial;
        let by_doc = sorted.iter().copied().collect();
        lists.push(IntentionList {
            weight,
            sorted,
            by_doc,
            exhausted,
            index,
            query,
        });
    }
    costs.merge(&scratch.costs.take());
    lists
}

/// The exact top-k documents related to `q` under the weighted sum of
/// per-intention scores, via the threshold algorithm.
///
/// Observability (process-wide registry): one `online/fagin_queries` count
/// per call, the number of frontier rounds in `online/fagin_rounds`, sorted
/// accesses in `online/fagin_sorted_accesses`, and latency in
/// `online/fagin_ns`.
pub fn exact_top_k(
    collection: &PostCollection,
    pipeline: &IntentPipeline,
    q: usize,
    k: usize,
) -> Vec<(u32, f64)> {
    exact_top_k_traced(collection, pipeline, q, k, None)
}

/// [`exact_top_k`] recording `fagin/lists` (list construction with its
/// scan-work counters) and `fagin/rounds` (the TA loop; sorted accesses
/// count as postings scanned) spans into `trace` when one is supplied.
/// Results are bit-identical with or without a trace.
pub fn exact_top_k_traced(
    collection: &PostCollection,
    pipeline: &IntentPipeline,
    q: usize,
    k: usize,
    mut trace: Option<&mut Trace>,
) -> Vec<(u32, f64)> {
    let obs = forum_obs::Registry::global();
    let timer = obs.is_enabled().then(std::time::Instant::now);
    let mut sorted_accesses = 0u64;
    let mut deepenings = 0u64;
    let scheme = pipeline.weighting;
    let list_start = Instant::now();
    let mut scan_costs = ScanCosts::default();
    // Initial prefix: a few pages of k. Deep enough that most queries
    // resolve without deepening, shallow enough that the index's early
    // termination has a real floor to prune against.
    let initial = k.max(1).saturating_mul(4).max(16);
    let mut lists = intention_lists(
        collection,
        &pipeline.doc_segments,
        &pipeline.clusters,
        q,
        pipeline.weighted_combination,
        scheme,
        initial,
        &mut scan_costs,
    );
    if let Some(t) = trace.as_deref_mut() {
        t.push_span(
            "fagin/lists",
            list_start,
            scan_to_trace_costs(scan_costs, lists.len() as u64),
        );
    }
    let round_start = Instant::now();
    if lists.is_empty() {
        return Vec::new();
    }

    let mut round_scratch = ScoreScratch::new();
    let mut best: Vec<(u32, f64)> = Vec::new(); // kept sorted descending
    let mut seen: std::collections::HashSet<u32> = Default::default();
    let mut depth = 0usize;
    loop {
        // A prefix that ran out while the underlying list still has owners
        // must deepen before the frontier can be trusted as a bound.
        for l in &mut lists {
            l.ensure_depth(depth, scheme, q as u32, &mut round_scratch, &mut deepenings);
        }
        // Threshold: the weighted sum of the scores at the current frontier
        // (an exhausted list contributes 0 — every document outside it
        // scores 0 there).
        let mut threshold = 0.0;
        let mut any_remaining = false;
        for l in &lists {
            if let Some(&(_, s)) = l.sorted.get(depth) {
                threshold += l.weight * s;
                any_remaining = true;
            }
        }
        if !any_remaining {
            break;
        }
        // Sorted access at this depth on every list; random access completes
        // each newly seen document.
        for i in 0..lists.len() {
            let Some(&(doc, _)) = lists[i].sorted.get(depth) else {
                continue;
            };
            sorted_accesses += 1;
            if !seen.insert(doc) {
                continue;
            }
            let score: f64 = lists
                .iter()
                .map(|l| l.weight * l.random_access(doc, scheme))
                .sum();
            let pos = best
                .binary_search_by(|probe| {
                    score
                        .partial_cmp(&probe.1)
                        .expect("scores are finite")
                        .then(probe.0.cmp(&doc))
                })
                .unwrap_or_else(|p| p);
            best.insert(pos, (doc, score));
            best.truncate(k.max(1) * 2); // keep a small buffer
        }
        // Stop when the k-th best aggregate dominates the threshold.
        if best.len() >= k && best[k - 1].1 >= threshold {
            break;
        }
        depth += 1;
    }
    best.truncate(k);
    if let Some(t) = trace {
        let mut round_costs = scan_to_trace_costs(round_scratch.costs.take(), 0);
        round_costs.postings_scanned += sorted_accesses;
        t.push_span("fagin/rounds", round_start, round_costs);
    }
    if let Some(t) = timer {
        obs.incr("online/fagin_queries", 1);
        obs.incr("online/fagin_sorted_accesses", sorted_accesses);
        obs.incr("online/fagin_deepenings", deepenings);
        obs.record("online/fagin_rounds", depth as u64 + 1);
        obs.record_duration("online/fagin_ns", t.elapsed());
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use forum_corpus::{Corpus, Domain, GenConfig};

    fn setup() -> (PostCollection, IntentPipeline) {
        let corpus = Corpus::generate(&GenConfig {
            domain: Domain::TechSupport,
            num_posts: 250,
            seed: 21,
        });
        let coll = PostCollection::from_corpus(&corpus);
        let pipe = IntentPipeline::build(&coll, &PipelineConfig::default());
        (coll, pipe)
    }

    /// Brute-force reference: aggregate every document's score directly.
    fn brute_force(
        collection: &PostCollection,
        pipeline: &IntentPipeline,
        q: usize,
        k: usize,
    ) -> Vec<(u32, f64)> {
        let lists = intention_lists(
            collection,
            &pipeline.doc_segments,
            &pipeline.clusters,
            q,
            pipeline.weighted_combination,
            pipeline.weighting,
            usize::MAX,
            &mut ScanCosts::default(),
        );
        let mut acc: HashMap<u32, f64> = HashMap::new();
        for l in &lists {
            for &(doc, s) in &l.sorted {
                *acc.entry(doc).or_insert(0.0) += l.weight * s;
            }
        }
        let mut out: Vec<(u32, f64)> = acc.into_iter().collect();
        out.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        out.truncate(k);
        out
    }

    #[test]
    fn ta_matches_brute_force() {
        let (coll, pipe) = setup();
        for q in [0usize, 5, 33, 120] {
            let ta = exact_top_k(&coll, &pipe, q, 5);
            let bf = brute_force(&coll, &pipe, q, 5);
            assert_eq!(ta.len(), bf.len(), "query {q}");
            for (a, b) in ta.iter().zip(&bf) {
                // Same scores; document ties may order differently.
                assert!((a.1 - b.1).abs() < 1e-9, "query {q}: {ta:?} vs {bf:?}");
            }
        }
    }

    #[test]
    fn ta_deepening_matches_full_lists() {
        // Force the deepening path: an initial prefix of 1 makes nearly
        // every query outrun its prefix and re-scan deeper. Results must
        // still match the full-list TA exactly.
        let (coll, pipe) = setup();
        let mut costs = ScanCosts::default();
        let mut deepenings = 0u64;
        for q in [0usize, 5, 33, 120] {
            let mut shallow = intention_lists(
                &coll,
                &pipe.doc_segments,
                &pipe.clusters,
                q,
                pipe.weighted_combination,
                pipe.weighting,
                1,
                &mut costs,
            );
            let full = intention_lists(
                &coll,
                &pipe.doc_segments,
                &pipe.clusters,
                q,
                pipe.weighted_combination,
                pipe.weighting,
                usize::MAX,
                &mut costs,
            );
            let mut scratch = ScoreScratch::new();
            for (s, f) in shallow.iter_mut().zip(&full) {
                // Every prefix is a true ranking prefix...
                assert_eq!(s.sorted[..], f.sorted[..s.sorted.len()]);
                // ...random access is bit-identical to the full list...
                for &(doc, score) in f.sorted.iter().take(40) {
                    assert_eq!(
                        s.random_access(doc, pipe.weighting).to_bits(),
                        score.to_bits(),
                        "q={q} doc={doc}"
                    );
                }
                // ...and deepening to any depth reproduces the full list.
                let want = f.sorted.len().min(25);
                if want > 0 {
                    s.ensure_depth(
                        want - 1,
                        pipe.weighting,
                        q as u32,
                        &mut scratch,
                        &mut deepenings,
                    );
                    assert_eq!(s.sorted[..want], f.sorted[..want]);
                }
            }
        }
        assert!(deepenings > 0, "prefix of 1 must force deepening");
    }

    #[test]
    fn ta_never_returns_query_doc() {
        let (coll, pipe) = setup();
        for q in 0..10 {
            assert!(exact_top_k(&coll, &pipe, q, 5)
                .iter()
                .all(|&(d, _)| d as usize != q));
        }
    }

    #[test]
    fn ta_scores_descend() {
        let (coll, pipe) = setup();
        let hits = exact_top_k(&coll, &pipe, 3, 10);
        for w in hits.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}
