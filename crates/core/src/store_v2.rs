//! Store format v2: a zero-copy, mmap-able on-disk layout.
//!
//! v1 ([`crate::store::encode`]) is a single sequential stream — loading
//! it means decoding *everything* before the first query can run, so
//! restart cost and resident memory scale with corpus size rather than
//! working set. v2 instead writes a fixed-width header plus a **section
//! directory** (per-section kind/offset/length/FNV-1a checksum) and puts
//! every hot array in a fixed-width, 8-byte-aligned section that is
//! directly addressable from a memory map:
//!
//! | offset | bytes | field |
//! |-------:|------:|-------|
//! | 0      | 4     | magic `"IMP2"` |
//! | 4      | 4     | version (`2`, u32 LE) |
//! | 8      | 8     | directory offset |
//! | 16     | 8     | directory length in bytes |
//! | 24     | 8     | FNV-1a checksum of the directory bytes |
//! | 32     | 4     | section count |
//! | 36     | 4     | document count |
//! | 40     | 4     | cluster count |
//! | 44     | 4     | flags (bit 0 = weighted combination) |
//! | 48     | 4     | noise-segment count |
//! | 52     | 4     | reserved (0) |
//! | 56     | 8     | FNV-1a checksum of header bytes 0..56 |
//!
//! Each 32-byte directory entry is `{kind u32, index u32, offset u64,
//! len u64, checksum u64}`. Section `offset`s are 8-byte aligned (the
//! inter-section padding is *excluded* from `len` and `checksum`), so the
//! f64 centroid rows and the fixed-width `FIX2` cluster records
//! ([`forum_index::flat`]) can be reinterpreted in place from a map whose
//! base is page-aligned.
//!
//! Section kinds:
//! * `META` (1) — per-cluster `{units u32, vocab u32, postings u64,
//!   avg_unique f64}` summary records; `intentmatch stats` answers from
//!   the header + this section alone.
//! * `TEXTS` (2) — `count u32, pad u32, offsets u64×(count+1)`, then the
//!   concatenated UTF-8 post texts.
//! * `RAWSEGS` (3) — same offset-table shape over per-document
//!   `{units u32, n_borders u32, borders u32×n}` records.
//! * `DOCSEGS` (4) — offset table over per-document `{n_segs u32}` then
//!   `{cluster u32, n_ranges u32, (first, end) u32×2 × n}` per segment.
//! * `CENTROIDS` (5) — `count u32, dim u32`, then row-major f64s.
//! * `CLUSTER` (6, `index` = cluster id) — one `FIX2` flat index per
//!   intention cluster, lazily materialized on first consultation.
//!
//! [`save_v2`] streams sections straight to the temp file through a
//! running checksum ([`FileEmit`]) — peak save memory no longer scales
//! with store size — then writes the directory, patches the real header
//! over the placeholder, fsyncs and renames (same crash-atomicity
//! contract as v1).

use crate::collection::PostCollection;
use crate::pipeline::IntentPipeline;
use crate::store::StoreError;
use forum_index::codec::{Emit, Reader, Writer};
use forum_index::flat::encode_flat;
use std::io::{Seek as _, SeekFrom, Write as _};
use std::path::Path;

/// v2 magic tag.
pub const V2_MAGIC: &[u8; 4] = b"IMP2";
/// v2 format version.
pub const V2_VERSION: u32 = 2;
/// Fixed header size in bytes.
pub const HEADER_BYTES: usize = 64;
/// Size of one directory entry in bytes.
pub const DIR_ENTRY_BYTES: usize = 32;
/// Header flag bit: the pipeline combines per-intention lists weighted.
pub const FLAG_WEIGHTED: u32 = 1;

/// Section kinds (the `kind` field of a directory entry).
pub mod kind {
    /// Per-cluster summary records (header-only `stats`).
    pub const META: u32 = 1;
    /// Concatenated post texts with an offset table.
    pub const TEXTS: u32 = 2;
    /// Raw (pre-refinement) segmentations.
    pub const RAWSEGS: u32 = 3;
    /// Refined segments per document.
    pub const DOCSEGS: u32 = 4;
    /// Row-major centroid matrix.
    pub const CENTROIDS: u32 = 5;
    /// One flat `FIX2` index per intention cluster (`index` = cluster id).
    pub const CLUSTER: u32 = 6;
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Extends a running FNV-1a hash with `bytes`.
pub fn fnv1a_extend(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a of `bytes` from the standard offset basis.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_extend(FNV_OFFSET, bytes)
}

/// The fixed-width v2 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct V2Header {
    /// Byte offset of the section directory.
    pub dir_offset: u64,
    /// Directory length in bytes (`section_count × 32`).
    pub dir_len: u64,
    /// FNV-1a checksum of the directory bytes.
    pub dir_checksum: u64,
    /// Number of directory entries.
    pub section_count: u32,
    /// Number of documents in the store.
    pub num_docs: u32,
    /// Number of intention clusters.
    pub num_clusters: u32,
    /// Flag bits ([`FLAG_WEIGHTED`]).
    pub flags: u32,
    /// DBSCAN noise-segment count (informational).
    pub num_noise: u32,
}

impl V2Header {
    /// Whether the weighted-combination flag is set.
    pub fn weighted_combination(&self) -> bool {
        self.flags & FLAG_WEIGHTED != 0
    }
}

/// One 32-byte directory entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionEntry {
    /// Section kind (see [`kind`]).
    pub kind: u32,
    /// Per-kind index (cluster id for `CLUSTER` sections, 0 otherwise).
    pub index: u32,
    /// Byte offset of the section payload (8-aligned).
    pub offset: u64,
    /// Exact payload length in bytes (inter-section padding excluded).
    pub len: u64,
    /// FNV-1a checksum of the payload bytes.
    pub checksum: u64,
}

impl SectionEntry {
    /// Human-readable section name for diagnostics.
    pub fn describe(&self) -> String {
        match self.kind {
            kind::META => "META".to_string(),
            kind::TEXTS => "TEXTS".to_string(),
            kind::RAWSEGS => "RAWSEGS".to_string(),
            kind::DOCSEGS => "DOCSEGS".to_string(),
            kind::CENTROIDS => "CENTROIDS".to_string(),
            kind::CLUSTER => format!("CLUSTER[{}]", self.index),
            k => format!("UNKNOWN[kind={k}]"),
        }
    }
}

/// Per-cluster summary record stored in the `META` section (24 bytes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterMeta {
    /// Indexed units (refined segments) in the cluster.
    pub units: u32,
    /// Vocabulary size of the cluster index.
    pub vocab: u32,
    /// Total postings across the cluster's lists.
    pub postings: u64,
    /// Average unique-term count per unit.
    pub avg_unique: f64,
}

fn format_err(msg: impl Into<String>) -> StoreError {
    StoreError::Format(msg.into())
}

/// Encodes the 64-byte header (computing the trailing header checksum).
pub fn encode_header(h: &V2Header) -> [u8; HEADER_BYTES] {
    let mut out = [0u8; HEADER_BYTES];
    out[0..4].copy_from_slice(V2_MAGIC);
    out[4..8].copy_from_slice(&V2_VERSION.to_le_bytes());
    out[8..16].copy_from_slice(&h.dir_offset.to_le_bytes());
    out[16..24].copy_from_slice(&h.dir_len.to_le_bytes());
    out[24..32].copy_from_slice(&h.dir_checksum.to_le_bytes());
    out[32..36].copy_from_slice(&h.section_count.to_le_bytes());
    out[36..40].copy_from_slice(&h.num_docs.to_le_bytes());
    out[40..44].copy_from_slice(&h.num_clusters.to_le_bytes());
    out[44..48].copy_from_slice(&h.flags.to_le_bytes());
    out[48..52].copy_from_slice(&h.num_noise.to_le_bytes());
    // bytes 52..56 reserved, zero.
    let checksum = fnv1a(&out[0..56]);
    out[56..64].copy_from_slice(&checksum.to_le_bytes());
    out
}

/// Parses and validates the 64-byte header: magic, version, and the
/// header checksum.
pub fn parse_header(bytes: &[u8]) -> Result<V2Header, StoreError> {
    if bytes.len() < HEADER_BYTES {
        return Err(format_err(format!(
            "file too short for v2 header: {} bytes",
            bytes.len()
        )));
    }
    let bytes = &bytes[..HEADER_BYTES];
    if &bytes[0..4] != V2_MAGIC {
        return Err(format_err("not a v2 store (magic mismatch)"));
    }
    let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().expect("4 bytes"));
    let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().expect("8 bytes"));
    let version = u32_at(4);
    if version != V2_VERSION {
        return Err(format_err(format!(
            "unsupported v2 store version {version}"
        )));
    }
    let stored = u64_at(56);
    let computed = fnv1a(&bytes[0..56]);
    if stored != computed {
        return Err(format_err(format!(
            "header checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
        )));
    }
    Ok(V2Header {
        dir_offset: u64_at(8),
        dir_len: u64_at(16),
        dir_checksum: u64_at(24),
        section_count: u32_at(32),
        num_docs: u32_at(36),
        num_clusters: u32_at(40),
        flags: u32_at(44),
        num_noise: u32_at(48),
    })
}

/// Parses the directory bytes (already checksum-verified by the caller)
/// into entries.
pub fn parse_directory(bytes: &[u8]) -> Result<Vec<SectionEntry>, StoreError> {
    if !bytes.len().is_multiple_of(DIR_ENTRY_BYTES) {
        return Err(format_err(format!(
            "directory length {} is not a multiple of {DIR_ENTRY_BYTES}",
            bytes.len()
        )));
    }
    let mut r = Reader::new(bytes);
    let mut entries = Vec::with_capacity(bytes.len() / DIR_ENTRY_BYTES);
    while !r.is_at_end() {
        entries.push(SectionEntry {
            kind: r.u32("section kind")?,
            index: r.u32("section index")?,
            offset: r.u64("section offset")?,
            len: r.u64("section length")?,
            checksum: r.u64("section checksum")?,
        });
    }
    Ok(entries)
}

/// Validates the directory against the header and file length: every
/// offset 8-aligned and in bounds, each singleton kind present exactly
/// once, cluster sections exactly `0..num_clusters`. Returns the
/// directory positions of `[META, TEXTS, RAWSEGS, DOCSEGS, CENTROIDS]`
/// and the per-cluster positions.
pub fn validate_directory(
    header: &V2Header,
    entries: &[SectionEntry],
    file_len: u64,
) -> Result<([usize; 5], Vec<usize>), StoreError> {
    if entries.len() != header.section_count as usize {
        return Err(format_err(format!(
            "directory has {} entries, header claims {}",
            entries.len(),
            header.section_count
        )));
    }
    let mut singles: [Option<usize>; 5] = [None; 5];
    let mut clusters: Vec<Option<usize>> = vec![None; header.num_clusters as usize];
    for (pos, e) in entries.iter().enumerate() {
        if e.offset % 8 != 0 {
            return Err(format_err(format!(
                "section {} offset {} is not 8-aligned",
                e.describe(),
                e.offset
            )));
        }
        let end = e
            .offset
            .checked_add(e.len)
            .ok_or_else(|| format_err(format!("section {} length overflows", e.describe())))?;
        if end > file_len {
            return Err(format_err(format!(
                "section {} [{}..{}] exceeds file length {}",
                e.describe(),
                e.offset,
                end,
                file_len
            )));
        }
        match e.kind {
            kind::META | kind::TEXTS | kind::RAWSEGS | kind::DOCSEGS | kind::CENTROIDS => {
                let slot = &mut singles[(e.kind - 1) as usize];
                if slot.replace(pos).is_some() {
                    return Err(format_err(format!("duplicate {} section", e.describe())));
                }
            }
            kind::CLUSTER => {
                let c = e.index as usize;
                let slot = clusters.get_mut(c).ok_or_else(|| {
                    format_err(format!(
                        "cluster section index {c} out of range (header claims {})",
                        header.num_clusters
                    ))
                })?;
                if slot.replace(pos).is_some() {
                    return Err(format_err(format!("duplicate CLUSTER[{c}] section")));
                }
            }
            k => return Err(format_err(format!("unknown section kind {k}"))),
        }
    }
    let mut resolved = [0usize; 5];
    for (i, s) in singles.iter().enumerate() {
        resolved[i] = s.ok_or_else(|| format_err(format!("missing section kind {}", i + 1)))?;
    }
    let clusters = clusters
        .into_iter()
        .enumerate()
        .map(|(c, s)| s.ok_or_else(|| format_err(format!("missing CLUSTER[{c}] section"))))
        .collect::<Result<Vec<_>, _>>()?;
    Ok((resolved, clusters))
}

/// Decodes the `META` section into per-cluster records.
pub fn decode_meta(bytes: &[u8], num_clusters: usize) -> Result<Vec<ClusterMeta>, StoreError> {
    let mut r = Reader::new(bytes);
    let n = r.u64("meta cluster count")? as usize;
    if n != num_clusters {
        return Err(format_err(format!(
            "META records {n} clusters, header claims {num_clusters}"
        )));
    }
    let mut out = Vec::with_capacity(r.capacity_hint(n, 24));
    for _ in 0..n {
        out.push(ClusterMeta {
            units: r.u32("meta units")?,
            vocab: r.u32("meta vocab")?,
            postings: r.u64("meta postings")?,
            avg_unique: r.f64("meta avg_unique")?,
        });
    }
    if !r.is_at_end() {
        return Err(format_err("trailing bytes after META records"));
    }
    Ok(out)
}

/// A buffered file sink implementing [`Emit`] with a running FNV-1a
/// checksum and byte position, stashing the first I/O error so encode
/// code stays infallible. Sections stream through this without ever
/// materializing the whole store in memory.
struct FileEmit {
    w: std::io::BufWriter<std::fs::File>,
    pos: u64,
    hash: u64,
    err: Option<std::io::Error>,
}

impl Emit for FileEmit {
    fn bytes(&mut self, b: &[u8]) {
        if self.err.is_some() {
            return;
        }
        self.hash = fnv1a_extend(self.hash, b);
        if let Err(e) = self.w.write_all(b) {
            self.err = Some(e);
            return;
        }
        self.pos += b.len() as u64;
    }
}

impl FileEmit {
    fn new(f: std::fs::File) -> Self {
        FileEmit {
            w: std::io::BufWriter::new(f),
            pos: 0,
            hash: FNV_OFFSET,
            err: None,
        }
    }

    /// Pads with zero bytes to the next 8-byte boundary (padding is
    /// written before a section resets its checksum, so it is covered by
    /// neither `len` nor `checksum`).
    fn pad_to_8(&mut self) {
        let rem = (self.pos % 8) as usize;
        if rem != 0 {
            self.bytes(&[0u8; 8][..8 - rem]);
        }
    }

    /// Streams one section: aligns, resets the running checksum, runs the
    /// body, and returns its directory entry.
    fn section(&mut self, kind: u32, index: u32, body: impl FnOnce(&mut Self)) -> SectionEntry {
        self.pad_to_8();
        let offset = self.pos;
        self.hash = FNV_OFFSET;
        body(self);
        SectionEntry {
            kind,
            index,
            offset,
            len: self.pos - offset,
            checksum: self.hash,
        }
    }

    /// Flushes and surfaces any stashed error, returning the inner file.
    fn finish(mut self) -> std::io::Result<std::fs::File> {
        if let Some(e) = self.err.take() {
            return Err(e);
        }
        self.w.flush()?;
        self.w
            .into_inner()
            .map_err(|e| std::io::Error::other(e.to_string()))
    }
}

/// Saves the built state as a v2 store, atomically: sections stream to a
/// same-directory temp file through a running checksum, the directory and
/// patched header follow, then fsync + rename publish the result. A crash
/// or failure at any point leaves either the previous file intact or the
/// complete new one.
pub fn save_v2(
    path: &Path,
    collection: &PostCollection,
    pipeline: &IntentPipeline,
) -> Result<(), StoreError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    if let Err(e) = write_v2(&tmp, path, collection, pipeline) {
        std::fs::remove_file(&tmp).ok();
        return Err(StoreError::Io(e));
    }
    // Make the rename durable. Directories cannot be fsynced on every
    // platform; failure here does not affect atomicity, only durability.
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = std::fs::File::open(dir) {
            d.sync_all().ok();
        }
    }
    Ok(())
}

fn write_v2(
    tmp: &Path,
    path: &Path,
    collection: &PostCollection,
    pipeline: &IntentPipeline,
) -> std::io::Result<()> {
    let file = std::fs::File::create(tmp)?;
    let mut emit = FileEmit::new(file);
    emit.bytes(&[0u8; HEADER_BYTES]); // placeholder, patched below

    let mut entries = Vec::with_capacity(5 + pipeline.clusters.len());

    // META: per-cluster summary records.
    entries.push(emit.section(kind::META, 0, |e| {
        e.u64(pipeline.clusters.len() as u64);
        for c in &pipeline.clusters {
            e.u32(c.index.num_units() as u32);
            e.u32(c.index.vocabulary().len() as u32);
            e.u64(c.index.num_postings() as u64);
            e.f64(c.index.avg_unique_terms());
        }
    }));

    // TEXTS: offset table + concatenated UTF-8 blob.
    entries.push(emit.section(kind::TEXTS, 0, |e| {
        e.u32(collection.len() as u32);
        e.u32(0);
        let mut off = 0u64;
        e.u64(0);
        for d in &collection.docs {
            off += d.doc.text.len() as u64;
            e.u64(off);
        }
        for d in &collection.docs {
            e.bytes(d.doc.text.as_bytes());
        }
    }));

    // RAWSEGS: offset table + per-document border records.
    entries.push(emit.section(kind::RAWSEGS, 0, |e| {
        let segs = &pipeline.raw_segmentations;
        e.u32(segs.len() as u32);
        e.u32(0);
        let mut off = 0u64;
        e.u64(0);
        for s in segs {
            off += 8 + 4 * s.borders().len() as u64;
            e.u64(off);
        }
        for s in segs {
            e.u32(s.num_units() as u32);
            e.u32(s.borders().len() as u32);
            for &b in s.borders() {
                e.u32(b as u32);
            }
        }
    }));

    // DOCSEGS: offset table + per-document refined-segment records.
    entries.push(emit.section(kind::DOCSEGS, 0, |e| {
        let table = &pipeline.doc_segments;
        e.u32(table.len() as u32);
        e.u32(0);
        let mut off = 0u64;
        e.u64(0);
        for segs in table {
            off += 4;
            for s in segs {
                off += 8 + 8 * s.ranges.len() as u64;
            }
            e.u64(off);
        }
        for segs in table {
            e.u32(segs.len() as u32);
            for s in segs {
                e.u32(s.cluster as u32);
                e.u32(s.ranges.len() as u32);
                for &(a, b) in &s.ranges {
                    e.u32(a as u32);
                    e.u32(b as u32);
                }
            }
        }
    }));

    // CENTROIDS: row-major f64 matrix (rows start 8-aligned: the section
    // is 8-aligned and the count/dim prefix is 8 bytes).
    entries.push(emit.section(kind::CENTROIDS, 0, |e| {
        let dim = pipeline.centroids.first().map_or(0, Vec::len);
        e.u32(pipeline.centroids.len() as u32);
        e.u32(dim as u32);
        for c in &pipeline.centroids {
            assert_eq!(c.len(), dim, "centroid rows must share one dimension");
            for &x in c {
                e.f64(x);
            }
        }
    }));

    // One flat FIX2 index per cluster.
    for (c, cluster) in pipeline.clusters.iter().enumerate() {
        entries.push(emit.section(kind::CLUSTER, c as u32, |e| {
            encode_flat(&cluster.index, e);
        }));
    }

    // Directory (built in memory — it is tiny — for its checksum).
    emit.pad_to_8();
    let dir_offset = emit.pos;
    let mut dw = Writer::new();
    for e in &entries {
        dw.u32(e.kind);
        dw.u32(e.index);
        dw.u64(e.offset);
        dw.u64(e.len);
        dw.u64(e.checksum);
    }
    let dir_bytes = dw.into_bytes();
    let dir_checksum = fnv1a(&dir_bytes);
    emit.bytes(&dir_bytes);

    // Patch the real header over the placeholder and publish.
    let header = encode_header(&V2Header {
        dir_offset,
        dir_len: dir_bytes.len() as u64,
        dir_checksum,
        section_count: entries.len() as u32,
        num_docs: collection.len() as u32,
        num_clusters: pipeline.clusters.len() as u32,
        flags: if pipeline.weighted_combination {
            FLAG_WEIGHTED
        } else {
            0
        },
        num_noise: pipeline.num_noise as u32,
    });
    let mut file = emit.finish()?;
    file.seek(SeekFrom::Start(0))?;
    file.write_all(&header)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(tmp, path)
}

/// The result of a byte-level layout audit ([`audit_layout`]).
#[derive(Debug)]
pub struct LayoutAudit {
    /// Parsed header, when the header itself was readable.
    pub header: Option<V2Header>,
    /// Parsed directory entries (empty when unreadable).
    pub sections: Vec<SectionEntry>,
    /// Total bytes covered by section payloads.
    pub section_bytes: u64,
    /// Integrity failures, empty when the layout is sound.
    pub problems: Vec<String>,
}

/// Audits a v2 store's byte-level layout: header and directory checksums,
/// every section checksum, offsets in bounds, 8-byte alignment, and no
/// unaccounted trailing bytes. Collects problems instead of failing fast
/// so `intentmatch doctor` can report them all.
pub fn audit_layout(bytes: &[u8]) -> LayoutAudit {
    let mut audit = LayoutAudit {
        header: None,
        sections: Vec::new(),
        section_bytes: 0,
        problems: Vec::new(),
    };
    let header = match parse_header(bytes) {
        Ok(h) => h,
        Err(e) => {
            audit.problems.push(e.to_string());
            return audit;
        }
    };
    audit.header = Some(header);
    let file_len = bytes.len() as u64;
    let dir_end = match header.dir_offset.checked_add(header.dir_len) {
        Some(end) if end <= file_len => end,
        _ => {
            audit.problems.push(format!(
                "directory [{}..+{}] exceeds file length {}",
                header.dir_offset, header.dir_len, file_len
            ));
            return audit;
        }
    };
    if dir_end != file_len {
        audit.problems.push(format!(
            "{} unaccounted bytes after the directory",
            file_len - dir_end
        ));
    }
    let dir_bytes = &bytes[header.dir_offset as usize..dir_end as usize];
    let computed = fnv1a(dir_bytes);
    if computed != header.dir_checksum {
        audit.problems.push(format!(
            "directory checksum mismatch: stored {:#018x}, computed {computed:#018x}",
            header.dir_checksum
        ));
        return audit;
    }
    let entries = match parse_directory(dir_bytes) {
        Ok(e) => e,
        Err(e) => {
            audit.problems.push(e.to_string());
            return audit;
        }
    };
    if let Err(e) = validate_directory(&header, &entries, file_len) {
        audit.problems.push(e.to_string());
    }
    for e in &entries {
        audit.section_bytes += e.len;
        let Some(end) = e.offset.checked_add(e.len).filter(|&end| end <= file_len) else {
            continue; // already reported by validate_directory
        };
        let payload = &bytes[e.offset as usize..end as usize];
        let computed = fnv1a(payload);
        if computed != e.checksum {
            audit.problems.push(format!(
                "section {} checksum mismatch: stored {:#018x}, computed {computed:#018x}",
                e.describe(),
                e.checksum
            ));
        }
    }
    audit.sections = entries;
    audit
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = V2Header {
            dir_offset: 4096,
            dir_len: 320,
            dir_checksum: 0xdead_beef,
            section_count: 10,
            num_docs: 150,
            num_clusters: 5,
            flags: FLAG_WEIGHTED,
            num_noise: 3,
        };
        let bytes = encode_header(&h);
        let parsed = parse_header(&bytes).expect("parse");
        assert_eq!(parsed, h);
        assert!(parsed.weighted_combination());
    }

    #[test]
    fn header_flip_any_byte_is_detected() {
        let h = V2Header {
            dir_offset: 64,
            dir_len: 32,
            dir_checksum: 1,
            section_count: 1,
            num_docs: 2,
            num_clusters: 1,
            flags: 0,
            num_noise: 0,
        };
        let good = encode_header(&h);
        for i in 0..HEADER_BYTES {
            let mut evil = good;
            evil[i] ^= 0x01;
            assert!(parse_header(&evil).is_err(), "byte {i}");
        }
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn directory_roundtrip_and_validation() {
        let header = V2Header {
            dir_offset: 128,
            dir_len: (6 * DIR_ENTRY_BYTES) as u64,
            dir_checksum: 0,
            section_count: 6,
            num_docs: 3,
            num_clusters: 1,
            flags: 0,
            num_noise: 0,
        };
        let mut w = Writer::new();
        let kinds = [
            (kind::META, 0),
            (kind::TEXTS, 0),
            (kind::RAWSEGS, 0),
            (kind::DOCSEGS, 0),
            (kind::CENTROIDS, 0),
            (kind::CLUSTER, 0),
        ];
        for (i, &(k, idx)) in kinds.iter().enumerate() {
            w.u32(k);
            w.u32(idx);
            w.u64(64 + 8 * i as u64);
            w.u64(8);
            w.u64(0);
        }
        let bytes = w.into_bytes();
        let entries = parse_directory(&bytes).expect("parse");
        assert_eq!(entries.len(), 6);
        let (singles, clusters) = validate_directory(&header, &entries, 4096).expect("validate");
        assert_eq!(singles, [0, 1, 2, 3, 4]);
        assert_eq!(clusters, vec![5]);

        // Misaligned offset is rejected.
        let mut bad = entries.clone();
        bad[2].offset = 67;
        assert!(validate_directory(&header, &bad, 4096).is_err());
        // Out-of-bounds section is rejected.
        let mut bad = entries.clone();
        bad[3].len = 1 << 40;
        assert!(validate_directory(&header, &bad, 4096).is_err());
        // Missing cluster section is rejected.
        let mut bad = entries;
        bad[5].index = 7;
        assert!(validate_directory(&header, &bad, 4096).is_err());
    }
}
