//! Persistence of the offline build (Section 7's "Indexing" step, made
//! durable).
//!
//! The paper's division of labour is offline segmentation/grouping/indexing
//! versus online matching; a deployed system must be able to restart into
//! the online phase without redoing the offline one. [`save`] writes the
//! whole built state — raw post texts, segmentations, refined segments,
//! centroids and every per-cluster index — into a single versioned binary
//! file; [`load`] restores a ready-to-query
//! [`IntentPipeline`]/[`PostCollection`] pair. The format is the
//! self-describing codec of [`forum_index::codec`]; no external
//! serialization dependencies.
//!
//! Post texts are stored raw and re-parsed on load (parsing + CM annotation
//! is the cheap part of the offline phase; border selection, clustering and
//! index construction — the expensive parts — are restored, not re-run).

use crate::collection::PostCollection;
use crate::pipeline::{BuildTimings, ClusterIndex, IntentPipeline, RefinedSegment};
use forum_index::codec::{DecodeError, Reader, Writer};
use forum_index::SegmentIndex;
use forum_text::{document::DocId, Document, Segmentation};
use std::io::{Read as _, Write as _};
use std::path::Path;

/// Errors from [`save`]/[`load`]/[`crate::view::StoreView`].
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file's contents do not decode.
    Decode(DecodeError),
    /// The v2 layout is inconsistent (bad header/directory, checksum
    /// mismatch, section invariant violated).
    Format(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Decode(e) => write!(f, "store decode error: {e}"),
            StoreError::Format(msg) => write!(f, "store format error: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<DecodeError> for StoreError {
    fn from(e: DecodeError) -> Self {
        StoreError::Decode(e)
    }
}

const MAGIC: &[u8; 4] = b"IMP1";
const VERSION: u32 = 1;

/// Serializes a built pipeline (and the collection it was built over) into
/// a byte buffer.
pub fn encode(collection: &PostCollection, pipeline: &IntentPipeline) -> Vec<u8> {
    let mut w = Writer::new();
    w.magic(MAGIC);
    w.u32(VERSION);

    // Raw texts.
    w.u32(collection.len() as u32);
    for d in &collection.docs {
        w.string(&d.doc.text);
    }

    // Raw segmentations.
    w.u32(pipeline.raw_segmentations.len() as u32);
    for seg in &pipeline.raw_segmentations {
        w.u32(seg.num_units() as u32);
        w.u32(seg.borders().len() as u32);
        for &b in seg.borders() {
            w.u32(b as u32);
        }
    }

    // Refined segments.
    w.u32(pipeline.doc_segments.len() as u32);
    for segs in &pipeline.doc_segments {
        w.u32(segs.len() as u32);
        for s in segs {
            w.u32(s.cluster as u32);
            w.u32(s.ranges.len() as u32);
            for &(a, b) in &s.ranges {
                w.u32(a as u32);
                w.u32(b as u32);
            }
        }
    }

    // Centroids.
    w.u32(pipeline.centroids.len() as u32);
    for c in &pipeline.centroids {
        w.u32(c.len() as u32);
        for &x in c {
            w.f64(x);
        }
    }

    // Cluster indices.
    w.u32(pipeline.clusters.len() as u32);
    for c in &pipeline.clusters {
        c.index.encode(&mut w);
    }

    // Flags.
    w.u32(pipeline.weighted_combination as u32);
    w.u32(pipeline.num_noise as u32);
    w.into_bytes()
}

/// Restores a pipeline + collection pair from bytes written by [`encode`].
pub fn decode(bytes: &[u8]) -> Result<(PostCollection, IntentPipeline), StoreError> {
    let mut r = Reader::new(bytes);
    r.magic(MAGIC)?;
    let version = r.u32("store version")?;
    if version != VERSION {
        return Err(StoreError::Decode(DecodeError {
            context: "unsupported store version",
            offset: r.position(),
        }));
    }

    // Every `with_capacity` below pre-allocates at most what the remaining
    // input could actually hold (`capacity_hint`): length fields come from
    // an untrusted file, so trusting them directly would let a corrupt
    // length abort the process on allocation before decoding fails cleanly.
    let n_docs = r.u32("doc count")? as usize;
    let mut docs = Vec::with_capacity(r.capacity_hint(n_docs, 4));
    for i in 0..n_docs {
        let text = r.string("doc text")?;
        docs.push(forum_segment::CmDoc::new(Document::parse_clean(
            DocId(i as u32),
            &text,
        )));
    }
    let collection = PostCollection { docs };

    let n_segs = r.u32("segmentation count")? as usize;
    let mut raw_segmentations = Vec::with_capacity(r.capacity_hint(n_segs, 8));
    for _ in 0..n_segs {
        let units = r.u32("segmentation units")?.max(1) as usize;
        let n_borders = r.u32("border count")? as usize;
        let mut borders = Vec::with_capacity(r.capacity_hint(n_borders, 4));
        for _ in 0..n_borders {
            let b = r.u32("border")? as usize;
            // `Segmentation::from_borders` asserts these invariants; a
            // corrupt file must fail with an error, not a panic.
            if b < 1 || b >= units {
                return Err(StoreError::Decode(DecodeError {
                    context: "border out of range",
                    offset: r.position(),
                }));
            }
            borders.push(b);
        }
        raw_segmentations.push(Segmentation::from_borders(units, borders));
    }

    let n_doc_segs = r.u32("doc segment count")? as usize;
    let mut doc_segments = Vec::with_capacity(r.capacity_hint(n_doc_segs, 4));
    for _ in 0..n_doc_segs {
        let n = r.u32("refined count")? as usize;
        let mut segs = Vec::with_capacity(r.capacity_hint(n, 8));
        for _ in 0..n {
            let cluster = r.u32("cluster id")? as usize;
            let n_ranges = r.u32("range count")? as usize;
            let mut ranges = Vec::with_capacity(r.capacity_hint(n_ranges, 8));
            for _ in 0..n_ranges {
                let a = r.u32("range start")? as usize;
                let b = r.u32("range end")? as usize;
                ranges.push((a, b));
            }
            segs.push(RefinedSegment { cluster, ranges });
        }
        doc_segments.push(segs);
    }

    let n_centroids = r.u32("centroid count")? as usize;
    let mut centroids = Vec::with_capacity(r.capacity_hint(n_centroids, 4));
    for _ in 0..n_centroids {
        let dim = r.u32("centroid dim")? as usize;
        let mut c = Vec::with_capacity(r.capacity_hint(dim, 8));
        for _ in 0..dim {
            c.push(r.f64("centroid value")?);
        }
        centroids.push(c);
    }

    let n_clusters = r.u32("cluster count")? as usize;
    let mut clusters = Vec::with_capacity(r.capacity_hint(n_clusters, 4));
    for _ in 0..n_clusters {
        clusters.push(ClusterIndex {
            index: SegmentIndex::decode(&mut r)?,
        });
    }

    let weighted_combination = r.u32("weighted flag")? != 0;
    let num_noise = r.u32("noise count")? as usize;

    Ok((
        collection,
        IntentPipeline {
            raw_segmentations,
            doc_segments,
            clusters,
            centroids,
            num_noise,
            timings: BuildTimings::default(),
            weighted_combination,
            // The weighting scheme is a query-time choice; restored
            // pipelines default to the paper's scheme.
            weighting: forum_index::WeightingScheme::PaperTfIdf,
        },
    ))
}

/// Saves the built state to a file, atomically, in the v2 mmap-able
/// layout ([`crate::store_v2`]).
///
/// Sections stream to a temporary sibling (`<name>.tmp`) through a
/// running checksum — peak save memory does not scale with store size —
/// then the file is synced and renamed over `path`; the containing
/// directory is synced so the rename itself is durable. A crash or
/// failure at any point leaves either the previous file intact or the
/// complete new one — never a truncated or interleaved store.
pub fn save(
    path: &Path,
    collection: &PostCollection,
    pipeline: &IntentPipeline,
) -> Result<(), StoreError> {
    crate::store_v2::save_v2(path, collection, pipeline)
}

/// Saves in the legacy v1 single-stream layout (kept for the migration
/// tests and for producing fixtures older binaries can read). New code
/// should use [`save`].
pub fn save_v1(
    path: &Path,
    collection: &PostCollection,
    pipeline: &IntentPipeline,
) -> Result<(), StoreError> {
    let bytes = encode(collection, pipeline);
    write_atomic(path, &bytes)
}

/// Writes `bytes` to `path` via a same-directory temp file + fsync + rename.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let write = || -> std::io::Result<()> {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        // Flush file contents before the rename publishes them.
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    };
    if let Err(e) = write() {
        std::fs::remove_file(&tmp).ok();
        return Err(e.into());
    }
    // Make the rename durable. Directories cannot be fsynced on every
    // platform; failure here does not affect atomicity, only durability.
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = std::fs::File::open(dir) {
            d.sync_all().ok();
        }
    }
    Ok(())
}

/// Loads a built state from a file written by [`save`] (v2) or
/// [`save_v1`] — the leading magic selects the decoder, so v1 stores
/// remain loadable without an explicit migration step.
///
/// This is the *full-decode* path: every section is read, verified, and
/// hydrated into heap structures. Processes that only need to answer
/// queries should open a lazy [`crate::view::StoreView`] instead.
///
/// Metrics (when the process-wide registry is enabled):
/// `offline/store_load_ns` for the whole load, and `store/bytes_mapped`
/// counts every byte touched (for this path, the entire file).
pub fn load(path: &Path) -> Result<(PostCollection, IntentPipeline), StoreError> {
    let obs = forum_obs::Registry::global();
    let timer = obs.is_enabled().then(std::time::Instant::now);
    let mut file = std::fs::File::open(path)?;
    let mut magic = [0u8; 4];
    file.read_exact(&mut magic)?;
    let out = if &magic == crate::store_v2::V2_MAGIC {
        drop(file);
        let view = crate::view::StoreView::open_inner(path, crate::view::BackingMode::Auto, false)?;
        let hydrated = crate::view::hydrate(&view)?;
        if obs.is_enabled() {
            // Hydration counted each section on verification; add the
            // header, directory, and META overhead it skipped.
            let meta_len = view
                .sections()
                .iter()
                .find(|s| s.kind == crate::store_v2::kind::META)
                .map_or(0, |s| s.len);
            obs.incr(
                "store/bytes_mapped",
                crate::store_v2::HEADER_BYTES as u64 + view.header().dir_len + meta_len,
            );
        }
        hydrated
    } else {
        let mut bytes = magic.to_vec();
        file.read_to_end(&mut bytes)?;
        if obs.is_enabled() {
            obs.incr("store/bytes_mapped", bytes.len() as u64);
        }
        decode(&bytes)?
    };
    if let Some(t) = timer {
        obs.record_duration("offline/store_load_ns", t.elapsed());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use forum_corpus::{Corpus, Domain, GenConfig};

    fn built() -> (PostCollection, IntentPipeline) {
        let corpus = Corpus::generate(&GenConfig {
            domain: Domain::TechSupport,
            num_posts: 150,
            seed: 77,
        });
        let coll = PostCollection::from_corpus(&corpus);
        let pipe = IntentPipeline::build(&coll, &PipelineConfig::default());
        (coll, pipe)
    }

    #[test]
    fn roundtrip_preserves_retrieval() {
        let (coll, pipe) = built();
        let bytes = encode(&coll, &pipe);
        let (coll2, pipe2) = decode(&bytes).expect("decode");
        assert_eq!(coll2.len(), coll.len());
        assert_eq!(pipe2.num_clusters(), pipe.num_clusters());
        assert_eq!(pipe2.weighted_combination, pipe.weighted_combination);
        for q in [0usize, 7, 42] {
            assert_eq!(
                pipe2.top_k(&coll2, q, 5),
                pipe.top_k(&coll, q, 5),
                "query {q}"
            );
        }
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let (coll, pipe) = built();
        let bytes = encode(&coll, &pipe);
        let (_, pipe2) = decode(&bytes).expect("decode");
        assert_eq!(pipe2.doc_segments.len(), pipe.doc_segments.len());
        for (a, b) in pipe2.doc_segments.iter().zip(&pipe.doc_segments) {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.cluster, y.cluster);
                assert_eq!(x.ranges, y.ranges);
            }
        }
        assert_eq!(pipe2.centroids, pipe.centroids);
        let _ = coll;
    }

    #[test]
    fn truncated_file_fails_cleanly() {
        let (coll, pipe) = built();
        let bytes = encode(&coll, &pipe);
        for cut in [0usize, 4, 100, bytes.len() - 3] {
            assert!(decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    /// A tiny built state for the corruption sweeps: each mutation costs a
    /// full decode (including text re-parsing), so the corpus must be small
    /// for the sweep to stay dense *and* fast.
    fn built_tiny() -> (PostCollection, IntentPipeline) {
        let corpus = Corpus::generate(&GenConfig {
            domain: Domain::TechSupport,
            num_posts: 12,
            seed: 78,
        });
        let coll = PostCollection::from_corpus(&corpus);
        let pipe = IntentPipeline::build(&coll, &PipelineConfig::default());
        (coll, pipe)
    }

    /// Adversarial corruption: stamping 0xFF over any 4 bytes — which turns
    /// every length/count field it hits into ~4 billion — must produce a
    /// clean `Err`, never a panic, abort, or multi-gigabyte allocation.
    #[test]
    fn corrupted_length_fields_fail_cleanly() {
        let (coll, pipe) = built_tiny();
        let bytes = encode(&coll, &pipe);
        // Sweep the whole file at a stride; the tiny corpus keeps it fast.
        for offset in (0..bytes.len().saturating_sub(4)).step_by(31) {
            let mut evil = bytes.clone();
            evil[offset..offset + 4].copy_from_slice(&[0xFF; 4]);
            let _ = decode(&evil); // must return (Ok or Err), not die
        }
        // Targeted hits on known leading count fields (doc count sits right
        // after magic + version) must be detected as errors.
        for offset in [8usize, 12] {
            let mut evil = bytes.clone();
            evil[offset..offset + 4].copy_from_slice(&[0xFF; 4]);
            assert!(decode(&evil).is_err(), "offset {offset}");
        }
    }

    /// Flipping single bytes of border/unit fields must never trip the
    /// assertions inside `Segmentation::from_borders`.
    #[test]
    fn corrupted_borders_error_instead_of_panicking() {
        let (coll, pipe) = built_tiny();
        let bytes = encode(&coll, &pipe);
        for offset in (0..bytes.len().saturating_sub(1)).step_by(17) {
            let mut evil = bytes.clone();
            evil[offset] ^= 0x5A;
            let _ = decode(&evil); // Ok or Err both fine; panics are not
        }
    }

    #[test]
    fn save_is_atomic_under_failure() {
        let (coll, pipe) = built();
        let dir = std::env::temp_dir().join("intentmatch-store-atomic-test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pipeline.imp");

        // A good save first.
        save(&path, &coll, &pipe).expect("initial save");
        let good = std::fs::read(&path).unwrap();

        // Force the next save's temp-file creation to fail: occupy the
        // deterministic temp path with a directory.
        let tmp = dir.join("pipeline.imp.tmp");
        std::fs::create_dir(&tmp).unwrap();
        assert!(save(&path, &coll, &pipe).is_err(), "save should fail");

        // The previous good file is untouched.
        assert_eq!(std::fs::read(&path).unwrap(), good);
        let (coll2, pipe2) = load(&path).expect("good file still loads");
        assert_eq!(pipe2.top_k(&coll2, 0, 5), pipe.top_k(&coll, 0, 5));

        // After clearing the obstruction, saving works and leaves no temp.
        std::fs::remove_dir(&tmp).unwrap();
        save(&path, &coll, &pipe).expect("save after unblocking");
        assert!(!tmp.exists(), "temp file must not be left behind");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_and_load_via_file() {
        let (coll, pipe) = built();
        let dir = std::env::temp_dir().join("intentmatch-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pipeline.imp");
        save(&path, &coll, &pipe).expect("save");
        let (coll2, pipe2) = load(&path).expect("load");
        assert_eq!(pipe2.top_k(&coll2, 3, 5), pipe.top_k(&coll, 3, 5));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn loaded_pipeline_supports_incremental_updates() {
        let (coll, pipe) = built();
        let bytes = encode(&coll, &pipe);
        let (mut coll2, mut pipe2) = decode(&bytes).expect("decode");
        let id = pipe2.add_post(
            &mut coll2,
            &PipelineConfig::default(),
            "My HP printer jams on every page. How can I fix the paper tray?",
        );
        assert_eq!(id.as_usize(), coll.len());
        assert!(!pipe2.top_k(&coll2, id.as_usize(), 5).is_empty());
    }
}
