//! Per-query EXPLAIN: a faithful trace of Algorithms 1 & 2.
//!
//! [`explain_top_k`] runs the exact same code path as
//! [`IntentPipeline::top_k`] — same cluster weights, same per-cluster
//! Algorithm 1 scans, same combination and tie-breaking — while recording
//! *why* each result ranked where: which intention clusters were consulted,
//! each cluster's query terms and combination weight, the per-cluster top-n
//! candidate lists, and the per-cluster contribution to every final score.
//! The [`QueryExplain::results`] it returns are asserted (by construction
//! and by test) to equal the production ranking.

use crate::collection::PostCollection;
use crate::pipeline::{
    cluster_weight_for_terms, query_cluster_groups, ranges_terms, single_intention_top_n_with,
    IntentPipeline,
};
use forum_obs::json::Json;
use std::collections::HashMap;

/// The trace of one intention cluster's part in a query.
#[derive(Debug, Clone)]
pub struct ClusterTrace {
    /// The intention cluster id.
    pub cluster: usize,
    /// The query document's sentence ranges refined into this cluster.
    pub ranges: Vec<(usize, usize)>,
    /// Number of (non-distinct) query terms drawn from those ranges.
    pub num_terms: usize,
    /// Number of distinct query terms.
    pub num_distinct_terms: usize,
    /// The combination weight Algorithm 2 applies to this cluster's list
    /// (1.0 when the pipeline runs unweighted; the squared mean
    /// probabilistic IDF of the distinct query terms otherwise).
    pub weight: f64,
    /// Whether the cluster was skipped (zero/negative weight — e.g. an
    /// empty or entirely commonplace query segment contributes nothing).
    pub skipped: bool,
    /// Algorithm 1's top-n candidates for this cluster, `(doc, raw score)`
    /// in descending score order.
    pub candidates: Vec<(u32, f64)>,
}

/// One cluster's contribution to a final result's score.
#[derive(Debug, Clone)]
pub struct Contribution {
    /// The contributing intention cluster.
    pub cluster: usize,
    /// The raw Algorithm 1 score in that cluster.
    pub score: f64,
    /// The cluster's combination weight.
    pub weight: f64,
}

impl Contribution {
    /// The amount added to the final score (`weight * score`).
    pub fn weighted(&self) -> f64 {
        self.weight * self.score
    }
}

/// One final ranked result with its provenance.
#[derive(Debug, Clone)]
pub struct ResultTrace {
    /// 1-based final rank.
    pub rank: usize,
    /// The related document.
    pub doc: u32,
    /// Its combined score (the sum of weighted contributions).
    pub score: f64,
    /// Per-cluster contributions, in cluster-consultation order.
    pub contributions: Vec<Contribution>,
}

/// A complete per-query EXPLAIN trace.
#[derive(Debug, Clone)]
pub struct QueryExplain {
    /// The query document id.
    pub query: usize,
    /// Requested result count.
    pub k: usize,
    /// Per-intention list length Algorithm 2 consumed.
    pub n: usize,
    /// Whether the weighted combination was used.
    pub weighted: bool,
    /// The clusters consulted (one entry per *distinct* cluster holding a
    /// refined segment of the query document, in first-appearance order —
    /// see [`query_cluster_groups`]).
    pub clusters: Vec<ClusterTrace>,
    /// The final ranking with provenance; identical (doc, score) pairs to
    /// [`IntentPipeline::top_k_with_n`].
    pub results: Vec<ResultTrace>,
}

impl QueryExplain {
    /// The final ranking as plain `(doc, score)` pairs — bit-identical to
    /// what [`IntentPipeline::top_k_with_n`] returns for the same inputs.
    pub fn ranking(&self) -> Vec<(u32, f64)> {
        self.results.iter().map(|r| (r.doc, r.score)).collect()
    }

    /// The trace as a JSON value (machine-readable EXPLAIN).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("query", self.query)
            .with("k", self.k)
            .with("n", self.n)
            .with("weighted", self.weighted)
            .with(
                "clusters",
                Json::Arr(
                    self.clusters
                        .iter()
                        .map(|c| {
                            Json::obj()
                                .with("cluster", c.cluster)
                                .with(
                                    "ranges",
                                    Json::Arr(
                                        c.ranges
                                            .iter()
                                            .map(|&(a, b)| {
                                                Json::Arr(vec![Json::from(a), Json::from(b)])
                                            })
                                            .collect(),
                                    ),
                                )
                                .with("num_terms", c.num_terms)
                                .with("num_distinct_terms", c.num_distinct_terms)
                                .with("weight", c.weight)
                                .with("skipped", c.skipped)
                                .with(
                                    "candidates",
                                    Json::Arr(
                                        c.candidates
                                            .iter()
                                            .map(|&(d, s)| {
                                                Json::obj().with("doc", d).with("score", s)
                                            })
                                            .collect(),
                                    ),
                                )
                        })
                        .collect(),
                ),
            )
            .with(
                "results",
                Json::Arr(
                    self.results
                        .iter()
                        .map(|r| {
                            Json::obj()
                                .with("rank", r.rank)
                                .with("doc", r.doc)
                                .with("score", r.score)
                                .with(
                                    "contributions",
                                    Json::Arr(
                                        r.contributions
                                            .iter()
                                            .map(|c| {
                                                Json::obj()
                                                    .with("cluster", c.cluster)
                                                    .with("weight", c.weight)
                                                    .with("score", c.score)
                                                    .with("weighted", c.weighted())
                                            })
                                            .collect(),
                                    ),
                                )
                        })
                        .collect(),
                ),
            )
    }

    /// A human-readable EXPLAIN report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "EXPLAIN query doc #{} (k={}, n={}, {} combination)\n",
            self.query,
            self.k,
            self.n,
            if self.weighted { "weighted" } else { "plain" }
        ));
        out.push_str(&format!(
            "consulted {} intention cluster(s):\n",
            self.clusters.len()
        ));
        for c in &self.clusters {
            let ranges: Vec<String> = c.ranges.iter().map(|&(a, b)| format!("{a}..{b}")).collect();
            out.push_str(&format!(
                "  cluster {:<3} sentences [{}]  terms={} (distinct {})  weight={:.4}{}\n",
                c.cluster,
                ranges.join(", "),
                c.num_terms,
                c.num_distinct_terms,
                c.weight,
                if c.skipped {
                    "  SKIPPED (weight <= 0)"
                } else {
                    ""
                }
            ));
            for (rank, &(d, s)) in c.candidates.iter().enumerate() {
                out.push_str(&format!(
                    "      cand {:<2} doc #{:<6} raw score {s:.4}\n",
                    rank + 1,
                    d
                ));
            }
        }
        if self.results.is_empty() {
            out.push_str("no results\n");
        } else {
            out.push_str(&format!("final top-{}:\n", self.results.len()));
        }
        for r in &self.results {
            out.push_str(&format!(
                "  rank {:<2} doc #{:<6} score {:.4}\n",
                r.rank, r.doc, r.score
            ));
            for c in &r.contributions {
                out.push_str(&format!(
                    "      from cluster {:<3} {:.4} x {:.4} = {:.4}\n",
                    c.cluster,
                    c.weight,
                    c.score,
                    c.weighted()
                ));
            }
        }
        out
    }
}

/// EXPLAIN for [`IntentPipeline::top_k`] (which uses `n = 2k`).
pub fn explain_top_k(
    pipeline: &IntentPipeline,
    collection: &PostCollection,
    q: usize,
    k: usize,
) -> QueryExplain {
    explain_top_k_with_n(pipeline, collection, q, k, 2 * k)
}

/// EXPLAIN for [`IntentPipeline::top_k_with_n`]: runs the same scans and
/// combination and returns the trace. The accumulation, sorting, and
/// truncation below mirror `mr_top_k_with` exactly, so
/// [`QueryExplain::ranking`] reproduces the production output.
pub fn explain_top_k_with_n(
    pipeline: &IntentPipeline,
    collection: &PostCollection,
    q: usize,
    k: usize,
    n: usize,
) -> QueryExplain {
    let doc_segments = &pipeline.doc_segments;
    let clusters = &pipeline.clusters;
    let weighted = pipeline.weighted_combination;

    let mut traces: Vec<ClusterTrace> = Vec::new();
    let mut acc: HashMap<u32, f64> = HashMap::new();
    let mut provenance: HashMap<u32, Vec<Contribution>> = HashMap::new();
    for group in query_cluster_groups(doc_segments, q) {
        let terms = ranges_terms(collection, q, &group.ranges);
        let mut distinct: Vec<&str> = terms.iter().map(String::as_str).collect();
        distinct.sort_unstable();
        distinct.dedup();
        let weight = if weighted {
            cluster_weight_for_terms(&clusters[group.cluster].index, &terms)
        } else {
            1.0
        };
        let skipped = weight <= 0.0;
        let candidates = if skipped {
            Vec::new()
        } else {
            single_intention_top_n_with(
                collection,
                doc_segments,
                clusters,
                q,
                group.cluster,
                n,
                pipeline.weighting,
            )
        };
        for &(owner, score) in &candidates {
            *acc.entry(owner).or_insert(0.0) += weight * score;
            provenance.entry(owner).or_default().push(Contribution {
                cluster: group.cluster,
                score,
                weight,
            });
        }
        traces.push(ClusterTrace {
            cluster: group.cluster,
            ranges: group.ranges,
            num_terms: terms.len(),
            num_distinct_terms: distinct.len(),
            weight,
            skipped,
            candidates,
        });
    }

    let mut out: Vec<(u32, f64)> = acc.into_iter().collect();
    out.sort_unstable_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("scores are finite")
            .then(a.0.cmp(&b.0))
    });
    out.truncate(k);

    let results = out
        .into_iter()
        .enumerate()
        .map(|(i, (doc, score))| ResultTrace {
            rank: i + 1,
            doc,
            score,
            contributions: provenance.remove(&doc).unwrap_or_default(),
        })
        .collect();

    QueryExplain {
        query: q,
        k,
        n,
        weighted,
        clusters: traces,
        results,
    }
}

/// [`explain_top_k_with_n`] recording an `explain/build` span into `trace`
/// when one is supplied: EXPLAIN re-runs the query's scans, and on the
/// slow-query path that rebuild cost should be attributed, not hidden. The
/// span counts consulted clusters as routed and weight-skipped clusters as
/// pruned candidates.
pub fn explain_top_k_with_n_traced(
    pipeline: &IntentPipeline,
    collection: &PostCollection,
    q: usize,
    k: usize,
    n: usize,
    trace: Option<&mut forum_obs::Trace>,
) -> QueryExplain {
    let start = std::time::Instant::now();
    let explain = explain_top_k_with_n(pipeline, collection, q, k, n);
    if let Some(t) = trace {
        t.push_span(
            "explain/build",
            start,
            forum_obs::TraceCosts {
                clusters_routed: explain.clusters.len() as u64,
                candidates_pruned: explain.clusters.iter().filter(|c| c.skipped).count() as u64,
                ..forum_obs::TraceCosts::default()
            },
        );
    }
    explain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use forum_corpus::{Corpus, Domain, GenConfig};

    fn setup(threads: usize) -> (PostCollection, IntentPipeline) {
        let corpus = Corpus::generate(&GenConfig {
            domain: Domain::TechSupport,
            num_posts: 250,
            seed: 17,
        });
        let coll = PostCollection::from_corpus_parallel(&corpus, threads);
        let pipe = IntentPipeline::build(
            &coll,
            &PipelineConfig {
                threads,
                ..Default::default()
            },
        );
        (coll, pipe)
    }

    #[test]
    fn explain_ranking_matches_production_top_k() {
        let (coll, pipe) = setup(1);
        for q in [0usize, 9, 42, 120, 249] {
            let explain = explain_top_k(&pipe, &coll, q, 5);
            assert_eq!(
                explain.ranking(),
                pipe.top_k(&coll, q, 5),
                "EXPLAIN must reproduce production ranking for query {q}"
            );
        }
    }

    #[test]
    fn contributions_sum_to_final_scores() {
        let (coll, pipe) = setup(1);
        let explain = explain_top_k(&pipe, &coll, 3, 5);
        for r in &explain.results {
            let sum: f64 = r.contributions.iter().map(Contribution::weighted).sum();
            assert!(
                (sum - r.score).abs() < 1e-9,
                "doc {} contributions {sum} vs score {}",
                r.doc,
                r.score
            );
            assert!(!r.contributions.is_empty());
        }
    }

    #[test]
    fn cluster_traces_cover_query_segments() {
        let (coll, pipe) = setup(1);
        let q = 7;
        let explain = explain_top_k(&pipe, &coll, q, 5);
        let groups = query_cluster_groups(&pipe.doc_segments, q);
        assert_eq!(explain.clusters.len(), groups.len());
        for (trace, group) in explain.clusters.iter().zip(&groups) {
            assert_eq!(trace.cluster, group.cluster);
            assert_eq!(trace.ranges, group.ranges);
            assert!(trace.num_distinct_terms <= trace.num_terms);
            assert!(trace.candidates.len() <= explain.n);
            for w in trace.candidates.windows(2) {
                assert!(w[0].1 >= w[1].1, "candidates must descend");
            }
        }
    }

    #[test]
    fn explain_is_deterministic_across_thread_counts() {
        // threads = 1 (sequential) vs threads = 0 (one worker per core):
        // the parallel offline build is bit-identical, so EXPLAIN must be
        // too — same JSON, byte for byte.
        let (coll_seq, pipe_seq) = setup(1);
        let (coll_par, pipe_par) = setup(0);
        for q in [0usize, 11, 100] {
            let a = explain_top_k(&pipe_seq, &coll_seq, q, 5);
            let b = explain_top_k(&pipe_par, &coll_par, q, 5);
            assert_eq!(
                a.to_json().to_string(),
                b.to_json().to_string(),
                "query {q}"
            );
            assert_eq!(a.render(), b.render(), "query {q}");
        }
    }

    #[test]
    fn json_trace_is_valid_and_complete() {
        let (coll, pipe) = setup(1);
        let explain = explain_top_k(&pipe, &coll, 0, 5);
        let text = explain.to_json().to_string();
        let parsed = forum_obs::json::Json::parse(&text).expect("EXPLAIN JSON must parse");
        assert_eq!(parsed.get("query").unwrap().as_u64(), Some(0));
        assert_eq!(
            parsed.get("clusters").unwrap().as_arr().unwrap().len(),
            explain.clusters.len()
        );
        assert_eq!(
            parsed.get("results").unwrap().as_arr().unwrap().len(),
            explain.results.len()
        );
    }

    #[test]
    fn render_mentions_every_result() {
        let (coll, pipe) = setup(1);
        let explain = explain_top_k(&pipe, &coll, 0, 5);
        let text = explain.render();
        assert!(text.contains("EXPLAIN query doc #0"));
        for r in &explain.results {
            assert!(text.contains(&format!("doc #{}", r.doc)), "{text}");
        }
        for c in &explain.clusters {
            assert!(
                text.contains(&format!("cluster {:<3}", c.cluster)),
                "{text}"
            );
        }
    }
}
