//! `intentmatch` — finding related forum posts through content similarity
//! over intention-based segmentation.
//!
//! This is the paper's primary contribution, assembled from the substrate
//! crates:
//!
//! 1. **Segmentation** (Section 5): each post is split at shifts of its
//!    communication means ([`forum_segment`]).
//! 2. **Segment grouping** (Section 6): all segments of the collection are
//!    clustered on their 28-dim weight vectors with DBSCAN
//!    ([`forum_cluster`]) into *intention clusters*; same-document segments
//!    that land in one cluster are concatenated (segmentation refinement).
//! 3. **Indexing** (Section 7): one full-text index per intention cluster
//!    ([`forum_index`]), so the same term weighs differently per intention.
//! 4. **Matching** (Algorithms 1 & 2): per-intention top-n lists are
//!    combined into the final top-k related posts.
//!
//! # Example
//!
//! ```
//! use intentmatch::{IntentPipeline, PipelineConfig, PostCollection};
//!
//! let posts = [
//!     "I have an HP system with a RAID array. Do you know whether the \
//!      RAID 0 controller would degrade performance?",
//!     "My printer jams on every page. How can I fix the paper tray?",
//!     "The RAID array shows as degraded. Will the RAID 0 controller \
//!      hurt performance when the disks are only partially used?",
//! ];
//! let collection = PostCollection::from_raw_texts(&posts);
//! let pipeline = IntentPipeline::build(&collection, &PipelineConfig::default());
//! let related = pipeline.top_k(&collection, 0, 2);
//! assert!(related.len() <= 2);
//! assert!(related.iter().all(|&(d, _)| d != 0));
//! ```
//!
//! Modules:
//! * [`collection`] — a parsed, CM-annotated post collection.
//! * [`pipeline`] — the offline build (steps 1–3) and online matching
//!   (step 4), with per-phase timings.
//! * [`methods`] — the five methods of the paper's evaluation behind one
//!   [`methods::Matcher`] trait: `FullText`, `LDA`, `Content-MR`,
//!   `SentIntent-MR` and `IntentIntent-MR`.
//! * [`eval`] — mean-precision evaluation against simulated user judgments
//!   (Tables 4 & 5, Fig. 10).
//! * [`store`] — persistence: save/load the entire offline build so a
//!   process can restart straight into the online matching phase.
//! * [`fagin`] — the exact top-k combination via Fagin's threshold
//!   algorithm, the alternative to Algorithm 2's top-n lists that the
//!   paper cites.
//! * [`explain`] — per-query EXPLAIN traces: which intention clusters a
//!   query consulted, each cluster's candidates and combination weight,
//!   and why each result ranked where.
//! * [`engine`] — the online serving path: [`engine::QueryEngine`]
//!   evaluates batches of queries in parallel over the shared immutable
//!   pipeline with per-worker reusable scratch, bit-identical to the
//!   sequential [`IntentPipeline::top_k`].
//! * [`par`] — scoped-thread parallel map for the per-document offline
//!   phases (the paper runs segmentation of its large collection in
//!   parallel parts).
//!
//! Observability: the offline phases and online algorithms record spans
//! and counters into the process-wide [`forum_obs::Registry`], which is
//! disabled (near-zero cost) unless a caller — e.g. `intentmatch
//! --metrics-out` — enables it.

pub mod collection;
pub mod engine;
pub mod eval;
pub mod explain;
pub mod fagin;
pub mod methods;
pub mod pipeline;
pub mod store;
pub mod store_v2;
pub mod view;

// The parallel-map substrate moved to its own leaf crate so lower layers
// (forum-cluster's parallel DBSCAN) can fan out without depending on this
// crate; the re-export keeps every existing `intentmatch::par::` path.
pub use forum_par as par;

pub use collection::PostCollection;
pub use engine::QueryEngine;
pub use eval::{evaluate_method, EvalConfig, MethodEval};
pub use explain::{explain_top_k, explain_top_k_with_n, explain_top_k_with_n_traced, QueryExplain};
pub use fagin::{exact_top_k, exact_top_k_traced};
pub use methods::{ContentMrMatcher, FullTextMatcher, LdaMatcher, Matcher, MethodKind, MrMatcher};
pub use pipeline::{BuildTimings, IntentPipeline, PipelineConfig};
pub use store::{load as load_pipeline, save as save_pipeline, StoreError};
pub use view::{top_k_many, BackingMode, HeapStore, QuerySource, StoreView};
