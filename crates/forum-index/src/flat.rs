//! The flat, fixed-width cluster-index section of the store v2 format.
//!
//! [`SegmentIndex`] serializes two ways: the length-prefixed v1 `SIDX`
//! stream ([`SegmentIndex::encode`]/[`SegmentIndex::decode`]), which must
//! be decoded front to back, and this module's `FIX2` layout, whose four
//! arrays — unit statistics, term records, postings, term text — are
//! fixed-width and 8-byte aligned, so a reader can parse the 40-byte
//! header and address any array directly from a borrowed `&[u8]` (an mmap
//! page or a pread buffer) without a decode pass. That is what makes the
//! store's lazy per-cluster materialization O(touched cluster), not
//! O(store).
//!
//! Layout (all little-endian; the slice must start 8-byte aligned):
//!
//! | offset | bytes | field |
//! |-------:|------:|-------|
//! | 0      | 4     | magic `FIX2` |
//! | 4      | 4     | version (1) |
//! | 8      | 4     | `n_terms` |
//! | 12     | 4     | `n_units` |
//! | 16     | 8     | `n_postings` |
//! | 24     | 8     | `avg_unique` (f64 bits) |
//! | 32     | 8     | `term_blob_len` |
//! | 40     | 24·U  | unit records [`FlatUnit`] |
//! | …      | 16·T  | term records [`FlatTerm`] |
//! | …      | 8·P   | postings [`FlatPosting`], grouped per term |
//! | …      | B     | concatenated UTF-8 term text |
//!
//! [`FlatIndexView::materialize`] rebuilds a [`SegmentIndex`] through the
//! same [`SegmentIndex::from_parts`] constructor the v1 decode path uses
//! (impact sidecars and the owner map are derived identically), so query
//! results off a materialized cluster are bit-identical to the heap path.

use crate::codec::{DecodeError, Emit};
use crate::index::{Posting, SegmentIndex, UnitId, UnitStats};
use forum_text::Vocabulary;

/// Magic tag opening a flat cluster index.
pub const FLAT_MAGIC: &[u8; 4] = b"FIX2";
/// Flat layout version.
pub const FLAT_VERSION: u32 = 1;
/// Fixed header bytes before the unit array.
pub const FLAT_HEADER_BYTES: usize = 40;

/// One fixed-width unit record (24 bytes, 8-aligned).
///
/// `log_tf_sum` is stored as raw IEEE-754 bits so the record is plain old
/// data: every bit pattern is a valid value, which is what makes the
/// zero-copy cast in [`FlatIndexView::parse`] sound against arbitrary
/// (corrupt) file contents.
#[derive(Debug, Clone, Copy)]
#[repr(C)]
pub struct FlatUnit {
    /// Owning document id.
    pub owner: u32,
    /// Number of unique terms.
    pub unique_terms: u32,
    /// Total term occurrences.
    pub total_terms: u32,
    /// Explicit padding; always written as zero.
    pub pad: u32,
    /// `Σ_t (log tf(t) + 1)` as f64 bits.
    pub log_tf_sum_bits: u64,
}

/// One fixed-width term record (16 bytes, 8-aligned).
#[derive(Debug, Clone, Copy)]
#[repr(C)]
pub struct FlatTerm {
    /// Index of this term's first posting in the postings array.
    pub post_start: u64,
    /// Number of postings.
    pub post_len: u32,
    /// Exclusive end of this term's text in the term blob; the start is
    /// the previous record's end (0 for the first term).
    pub term_end: u32,
}

/// One fixed-width posting (8 bytes).
#[derive(Debug, Clone, Copy)]
#[repr(C)]
pub struct FlatPosting {
    /// The unit containing the term.
    pub unit: u32,
    /// Term frequency within the unit.
    pub tf: u32,
}

/// Serializes `index` in the flat layout. The caller is responsible for
/// placing the output at an 8-byte-aligned offset (the store v2 writer
/// aligns every section).
pub fn encode_flat<E: Emit>(index: &SegmentIndex, out: &mut E) {
    let n_terms = index.vocab.len();
    let n_postings: u64 = index.postings.iter().map(|p| p.len() as u64).sum();
    let term_blob_len: u64 = index.vocab.iter().map(|(_, t)| t.len() as u64).sum();

    out.magic(FLAT_MAGIC);
    out.u32(FLAT_VERSION);
    out.u32(n_terms as u32);
    out.u32(index.units.len() as u32);
    out.u64(n_postings);
    out.f64(index.avg_unique);
    out.u64(term_blob_len);

    for u in &index.units {
        out.u32(u.owner);
        out.u32(u.unique_terms);
        out.u32(u.total_terms);
        out.u32(0);
        out.u64(u.log_tf_sum.to_bits());
    }

    // Term records. A v1 index may hold fewer postings lists than terms
    // (none in practice — every interned term gains a posting — but the
    // encoder must not assume it); missing trailing lists encode as empty.
    let mut post_start = 0u64;
    let mut term_end = 0u64;
    for (id, term) in index.vocab.iter() {
        let len = index
            .postings
            .get(id.as_usize())
            .map_or(0, |p| p.len() as u64);
        term_end += term.len() as u64;
        out.u64(post_start);
        out.u32(len as u32);
        out.u32(u32::try_from(term_end).expect("term blob exceeds u32"));
        post_start += len;
    }

    for plist in &index.postings {
        for p in plist {
            out.u32(p.unit.0);
            out.u32(p.tf);
        }
    }

    for (_, term) in index.vocab.iter() {
        out.bytes(term.as_bytes());
    }
}

/// A parsed, zero-copy view over one flat cluster index.
///
/// Borrowing from the section bytes, all four arrays are directly
/// addressable; nothing postings-sized is allocated until
/// [`Self::materialize`].
#[derive(Debug, Clone, Copy)]
pub struct FlatIndexView<'a> {
    n_terms: usize,
    n_units: usize,
    n_postings: usize,
    avg_unique: f64,
    units: &'a [FlatUnit],
    terms: &'a [FlatTerm],
    postings: &'a [FlatPosting],
    term_blob: &'a [u8],
}

fn err(context: &'static str, offset: usize) -> DecodeError {
    DecodeError { context, offset }
}

/// Casts `bytes` (whose length must be an exact multiple of `size_of::<T>`)
/// to a typed slice. Errors if the pointer is not aligned for `T`.
fn cast_slice<'a, T>(bytes: &'a [u8], context: &'static str) -> Result<&'a [T], DecodeError> {
    debug_assert_eq!(bytes.len() % std::mem::size_of::<T>(), 0);
    // SAFETY: `T` is one of the `repr(C)` POD records above — every bit
    // pattern is a valid value, there is no padding the cast could expose,
    // and `align_to` only yields a non-empty prefix/suffix when the
    // pointer or length is misaligned, which we reject as a format error.
    let (head, mid, tail) = unsafe { bytes.align_to::<T>() };
    if !head.is_empty() || !tail.is_empty() {
        return Err(err(context, 0));
    }
    Ok(mid)
}

impl<'a> FlatIndexView<'a> {
    /// Parses the flat header and carves the four arrays out of `bytes`
    /// with full bounds checking; O(1) beyond the header. `bytes` must be
    /// exactly one flat index (the store's section table guarantees exact
    /// lengths) and must start 8-byte aligned.
    pub fn parse(bytes: &'a [u8]) -> Result<FlatIndexView<'a>, DecodeError> {
        if !(bytes.as_ptr() as usize).is_multiple_of(8) {
            return Err(err("flat index not 8-byte aligned", 0));
        }
        if bytes.len() < FLAT_HEADER_BYTES {
            return Err(err("flat index header truncated", bytes.len()));
        }
        let u32_at = |pos: usize| u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4"));
        let u64_at = |pos: usize| u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("8"));
        if &bytes[0..4] != FLAT_MAGIC {
            return Err(err("flat index magic mismatch", 0));
        }
        if u32_at(4) != FLAT_VERSION {
            return Err(err("unsupported flat index version", 4));
        }
        let n_terms = u32_at(8) as usize;
        let n_units = u32_at(12) as usize;
        let n_postings = u64_at(16);
        let avg_unique = f64::from_bits(u64_at(24));
        let term_blob_len = u64_at(32);

        // Checked arithmetic end to end: every count is untrusted.
        let array_bytes = (n_units as u64)
            .checked_mul(24)
            .and_then(|u| (n_terms as u64).checked_mul(16).map(|t| (u, t)))
            .and_then(|(u, t)| n_postings.checked_mul(8).map(|p| (u, t, p)))
            .and_then(|(u, t, p)| u.checked_add(t)?.checked_add(p)?.checked_add(term_blob_len))
            .ok_or_else(|| err("flat index sizes overflow", 8))?;
        let expected = (FLAT_HEADER_BYTES as u64)
            .checked_add(array_bytes)
            .ok_or_else(|| err("flat index sizes overflow", 8))?;
        if expected != bytes.len() as u64 {
            return Err(err("flat index length mismatch", bytes.len()));
        }
        let n_postings = n_postings as usize;
        let term_blob_len = term_blob_len as usize;

        let units_end = FLAT_HEADER_BYTES + n_units * 24;
        let terms_end = units_end + n_terms * 16;
        let postings_end = terms_end + n_postings * 8;
        let units = cast_slice::<FlatUnit>(
            &bytes[FLAT_HEADER_BYTES..units_end],
            "flat unit array misaligned",
        )?;
        let terms =
            cast_slice::<FlatTerm>(&bytes[units_end..terms_end], "flat term array misaligned")?;
        let postings = cast_slice::<FlatPosting>(
            &bytes[terms_end..postings_end],
            "flat postings array misaligned",
        )?;
        Ok(FlatIndexView {
            n_terms,
            n_units,
            n_postings,
            avg_unique,
            units,
            terms,
            postings,
            term_blob: &bytes[postings_end..postings_end + term_blob_len],
        })
    }

    /// Number of terms.
    pub fn num_terms(&self) -> usize {
        self.n_terms
    }

    /// Number of units (the cluster's refined segments).
    pub fn num_units(&self) -> usize {
        self.n_units
    }

    /// Total postings.
    pub fn num_postings(&self) -> usize {
        self.n_postings
    }

    /// Average unique terms per unit.
    pub fn avg_unique(&self) -> f64 {
        self.avg_unique
    }

    /// The borrowed unit-statistics array.
    pub fn units(&self) -> &'a [FlatUnit] {
        self.units
    }

    /// The borrowed term-record array.
    pub fn terms(&self) -> &'a [FlatTerm] {
        self.terms
    }

    /// The borrowed postings array.
    pub fn postings(&self) -> &'a [FlatPosting] {
        self.postings
    }

    /// The text of term `t`, if its blob range is well-formed UTF-8.
    pub fn term_text(&self, t: usize) -> Result<&'a str, DecodeError> {
        let end = self.terms[t].term_end as usize;
        let start = if t == 0 {
            0
        } else {
            self.terms[t - 1].term_end as usize
        };
        if start > end || end > self.term_blob.len() {
            return Err(err("flat term blob range out of bounds", t));
        }
        std::str::from_utf8(&self.term_blob[start..end])
            .map_err(|_| err("flat term text is not UTF-8", t))
    }

    /// Rebuilds a heap [`SegmentIndex`] from the view, validating every
    /// cross-reference (term blob ranges, posting ranges, unit ids) on the
    /// way. Funnels through [`SegmentIndex::from_parts`] — the same
    /// derived-data construction as the v1 decode — so retrieval off the
    /// result is bit-identical to a v1 roundtrip of the same index.
    pub fn materialize(&self) -> Result<SegmentIndex, DecodeError> {
        let mut vocab = Vocabulary::new();
        for t in 0..self.n_terms {
            vocab.intern(self.term_text(t)?);
        }
        if vocab.len() != self.n_terms {
            // A duplicated term would silently fold two postings lists
            // into one id; refuse rather than mis-rank.
            return Err(err("flat vocabulary has duplicate terms", 0));
        }
        let units: Vec<UnitStats> = self
            .units
            .iter()
            .map(|u| UnitStats {
                owner: u.owner,
                unique_terms: u.unique_terms,
                total_terms: u.total_terms,
                log_tf_sum: f64::from_bits(u.log_tf_sum_bits),
            })
            .collect();
        let mut postings: Vec<Vec<Posting>> = Vec::with_capacity(self.n_terms);
        for (t, term) in self.terms.iter().enumerate() {
            let start = usize::try_from(term.post_start)
                .map_err(|_| err("flat posting range out of bounds", t))?;
            let end = start
                .checked_add(term.post_len as usize)
                .filter(|&e| e <= self.postings.len())
                .ok_or_else(|| err("flat posting range out of bounds", t))?;
            let mut plist = Vec::with_capacity(end - start);
            for p in &self.postings[start..end] {
                if p.unit as usize >= self.n_units {
                    return Err(err("posting references unknown unit", t));
                }
                plist.push(Posting {
                    unit: UnitId(p.unit),
                    tf: p.tf,
                });
            }
            postings.push(plist);
        }
        Ok(SegmentIndex::from_parts(
            vocab,
            postings,
            units,
            self.avg_unique,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Writer;
    use crate::index::IndexBuilder;

    fn sample_index() -> SegmentIndex {
        let mut b = IndexBuilder::new();
        b.add_unit(0, &["raid".into(), "disk".into(), "raid".into()]);
        b.add_unit(1, &["printer".into(), "ink".into()]);
        b.add_unit(2, &["disk".into(), "boot".into(), "disk".into()]);
        b.add_unit(7, &["raid".into(), "boot".into()]);
        b.build()
    }

    fn flat_bytes(index: &SegmentIndex) -> Vec<u8> {
        let mut w = Writer::new();
        encode_flat(index, &mut w);
        w.into_bytes()
    }

    /// The in-memory buffer a `Writer` yields is not necessarily 8-byte
    /// aligned; copy into an aligned buffer the way the store view does.
    fn aligned(bytes: &[u8]) -> Vec<u64> {
        let mut buf = vec![0u64; bytes.len().div_ceil(8)];
        // SAFETY: u64 -> u8 view of an owned, initialized buffer.
        let dst =
            unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr().cast::<u8>(), buf.len() * 8) };
        dst[..bytes.len()].copy_from_slice(bytes);
        buf
    }

    fn view_of(buf: &[u64], len: usize) -> FlatIndexView<'_> {
        let bytes = unsafe { std::slice::from_raw_parts(buf.as_ptr().cast::<u8>(), buf.len() * 8) };
        FlatIndexView::parse(&bytes[..len]).expect("parse")
    }

    #[test]
    fn roundtrip_is_bit_identical_to_v1_encoding() {
        let index = sample_index();
        let bytes = flat_bytes(&index);
        let buf = aligned(&bytes);
        let view = view_of(&buf, bytes.len());
        assert_eq!(view.num_units(), index.num_units());
        let rebuilt = view.materialize().expect("materialize");
        // v1 encodings cover vocab order, unit stats bits, postings, and
        // avg_unique — byte equality is bit-identity of the whole index.
        let (mut w1, mut w2) = (Writer::new(), Writer::new());
        index.encode(&mut w1);
        rebuilt.encode(&mut w2);
        assert_eq!(w1.into_bytes(), w2.into_bytes());
        assert!(rebuilt.audit().problems.is_empty());
    }

    #[test]
    fn retrieval_matches_after_roundtrip() {
        let index = sample_index();
        let bytes = flat_bytes(&index);
        let buf = aligned(&bytes);
        let rebuilt = view_of(&buf, bytes.len()).materialize().expect("flat");
        let query = SegmentIndex::query_from_terms(&["raid".into(), "disk".into()]);
        assert_eq!(index.top_n(&query, 10), rebuilt.top_n(&query, 10));
    }

    #[test]
    fn every_truncation_fails_cleanly() {
        let index = sample_index();
        let bytes = flat_bytes(&index);
        let buf = aligned(&bytes);
        let all = unsafe { std::slice::from_raw_parts(buf.as_ptr().cast::<u8>(), buf.len() * 8) };
        for cut in 0..bytes.len() {
            let r = FlatIndexView::parse(&all[..cut]);
            assert!(r.is_err(), "cut {cut} parsed");
        }
    }

    #[test]
    fn corrupt_counts_fail_cleanly() {
        let index = sample_index();
        let bytes = flat_bytes(&index);
        for offset in (0..bytes.len()).step_by(3) {
            let mut evil = bytes.clone();
            evil[offset] ^= 0x5A;
            let buf = aligned(&evil);
            let all =
                unsafe { std::slice::from_raw_parts(buf.as_ptr().cast::<u8>(), buf.len() * 8) };
            if let Ok(view) = FlatIndexView::parse(&all[..evil.len()]) {
                let _ = view.materialize(); // Ok or Err; never a panic
            }
        }
    }

    #[test]
    fn misaligned_slice_is_rejected() {
        let index = sample_index();
        let bytes = flat_bytes(&index);
        let mut shifted = vec![0u8; bytes.len() + 1];
        shifted[1..].copy_from_slice(&bytes);
        let buf = aligned(&shifted);
        let all = unsafe { std::slice::from_raw_parts(buf.as_ptr().cast::<u8>(), buf.len() * 8) };
        assert!(FlatIndexView::parse(&all[1..bytes.len() + 1]).is_err());
    }
}
