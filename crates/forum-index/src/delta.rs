//! Delta indices for live ingestion: units appended *next to* a frozen
//! base [`SegmentIndex`], scored with the base's statistics.
//!
//! A live system cannot afford to recompute per-cluster TF/IDF statistics
//! on every write. The delta keeps newly ingested units in a small
//! side-structure and scores them with the *base* index's frozen document
//! frequencies and length-normalization average ("deferred IDF refresh"):
//! a term's IDF — and therefore every score — only changes when a
//! compaction folds the delta into the base and rebuilds the statistics.
//! Consequences, by design:
//!
//! * a term that never occurs in the base index has base document
//!   frequency 0, hence IDF 0 — brand-new vocabulary starts contributing
//!   to scores only after the next compaction;
//! * base-unit scores are entirely unaffected by pending writes, so a
//!   serving epoch's ranking is stable between compactions.
//!
//! Tombstones (deleted or superseded documents) are handled on the read
//! path: [`SegmentIndex::top_owners_excluding`] over-fetches by the
//! tombstone count and filters, which returns exactly the top-n *live*
//! owners without touching the frozen postings.

use crate::index::{DocFilter, ScanCosts, ScoreScratch, SegmentIndex, WeightingScheme};
use crate::weighting::{length_normalization, log_tf};
use std::collections::HashSet;

/// One delta unit: the term statistics needed to score it against any
/// query under the frozen base statistics. Terms are kept as strings —
/// the delta must not intern into (and thereby mutate) the base vocabulary.
#[derive(Debug, Clone)]
pub struct DeltaUnit {
    /// Owning document id.
    pub owner: u32,
    /// `(term, frequency)` pairs, sorted by term for deterministic lookup.
    pub freqs: Vec<(String, u32)>,
    /// Number of distinct terms.
    pub unique_terms: u32,
    /// Total term occurrences.
    pub total_terms: u32,
    /// `Σ_t (log tf(t) + 1)` — the Eq. 7/8 weight denominator.
    pub log_tf_sum: f64,
    /// `max_t (log tf(t) + 1)` — with the denominator, an upper bound on
    /// any single term's Eq. 8 weight in this unit, used by the
    /// floor-bounded scan to skip units that provably cannot rank.
    pub max_log_tf: f64,
}

/// The pending units of one cluster index, appended between compactions.
#[derive(Debug, Clone, Default)]
pub struct DeltaIndex {
    units: Vec<DeltaUnit>,
}

impl DeltaIndex {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pending units.
    pub fn num_units(&self) -> usize {
        self.units.len()
    }

    /// Whether the delta holds no pending units.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// The pending units, in append order.
    pub fn units(&self) -> &[DeltaUnit] {
        &self.units
    }

    /// Appends a unit with the given (already normalized) terms, owned by
    /// document `owner`.
    pub fn push_unit(&mut self, owner: u32, terms: &[String]) {
        let mut sorted: Vec<&str> = terms.iter().map(String::as_str).collect();
        sorted.sort_unstable();
        let mut freqs: Vec<(String, u32)> = Vec::new();
        for t in sorted {
            match freqs.last_mut() {
                Some((last, f)) if last == t => *f += 1,
                _ => freqs.push((t.to_string(), 1)),
            }
        }
        let log_tf_sum = freqs.iter().map(|&(_, f)| log_tf(f)).sum();
        let max_log_tf = freqs.iter().map(|&(_, f)| log_tf(f)).fold(0.0f64, f64::max);
        let unique_terms = freqs_len(&freqs);
        self.units.push(DeltaUnit {
            owner,
            freqs,
            unique_terms,
            total_terms: terms.len() as u32,
            log_tf_sum,
            max_log_tf,
        });
    }

    /// Drops every unit owned by `owner` (a deletion or supersession of a
    /// document that was itself added after the last compaction).
    pub fn remove_owner(&mut self, owner: u32) {
        self.units.retain(|u| u.owner != owner);
    }

    /// Scores the pending units against `query` with the **base** index's
    /// frozen statistics and returns the best-scoring unit per owner as
    /// `(owner, score)`, in first-appended owner order, excluding
    /// `exclude_owner` and any owner in `tombstones`. Units scoring ≤ 0
    /// are dropped, mirroring the base scan.
    ///
    /// Only [`WeightingScheme::PaperTfIdf`] is supported on the delta path
    /// (BM25 needs a global average unit length that the frozen base can't
    /// provide for mixed scoring); other schemes fall back to the paper
    /// formula.
    pub fn top_owners_frozen(
        &self,
        base: &SegmentIndex,
        query: &[(String, u32)],
        exclude_owner: Option<u32>,
        tombstones: &HashSet<u32>,
    ) -> Vec<(u32, f64)> {
        self.top_owners_frozen_counted(
            base,
            query,
            exclude_owner,
            tombstones,
            &mut ScanCosts::default(),
        )
    }

    /// [`DeltaIndex::top_owners_frozen`] that additionally accumulates work
    /// counters into `costs` (delta term lookups count as scanned postings;
    /// excluded, tombstoned, or zero-scoring units count as pruned). The
    /// scoring arithmetic and iteration order are untouched, so results are
    /// bit-identical to the uncounted call.
    pub fn top_owners_frozen_counted(
        &self,
        base: &SegmentIndex,
        query: &[(String, u32)],
        exclude_owner: Option<u32>,
        tombstones: &HashSet<u32>,
        costs: &mut ScanCosts,
    ) -> Vec<(u32, f64)> {
        self.top_owners_frozen_bounded(base, query, exclude_owner, tombstones, None, costs)
    }

    /// [`DeltaIndex::top_owners_frozen_counted`] with an optional score
    /// *floor*: when the caller already holds `n` exact base-scan scores
    /// (a full result page), any delta unit whose score upper bound falls
    /// strictly below the n-th base score can never enter the merged
    /// top-n, so the term loop for it is skipped outright. The bound is
    /// `(max_t log-tf / denominator) · Σ_q qf · idf` — each term of the
    /// unit weighs at most `max_log_tf / denom`, and only query terms can
    /// contribute. Units at or above the floor are scored exactly as the
    /// unbounded scan, so every score that survives the merge is
    /// bit-identical.
    pub fn top_owners_frozen_bounded(
        &self,
        base: &SegmentIndex,
        query: &[(String, u32)],
        exclude_owner: Option<u32>,
        tombstones: &HashSet<u32>,
        floor: Option<f64>,
        costs: &mut ScanCosts,
    ) -> Vec<(u32, f64)> {
        self.top_owners_frozen_filtered(base, query, exclude_owner, tombstones, None, floor, costs)
    }

    /// [`DeltaIndex::top_owners_frozen_bounded`] with a per-document
    /// visibility [`DocFilter`]: hidden owners are skipped before scoring
    /// (like tombstones), so they never occupy a merged result slot. The
    /// floor bound is unaffected — it only ever *skips* units, and hidden
    /// units were going to be dropped anyway.
    #[allow(clippy::too_many_arguments)]
    pub fn top_owners_frozen_filtered(
        &self,
        base: &SegmentIndex,
        query: &[(String, u32)],
        exclude_owner: Option<u32>,
        tombstones: &HashSet<u32>,
        filter: Option<DocFilter>,
        floor: Option<f64>,
        costs: &mut ScanCosts,
    ) -> Vec<(u32, f64)> {
        let _ = WeightingScheme::PaperTfIdf;
        let avg_unique = base.avg_unique_terms();
        // Frozen IDFs depend only on the base index: resolve them once.
        let idfs: Vec<f64> = query.iter().map(|(t, _)| base.idf(t)).collect();
        let qidf_sum: f64 = query
            .iter()
            .zip(&idfs)
            .map(|((_, qf), idf)| f64::from(*qf) * idf)
            .sum();
        let floor = floor.unwrap_or(f64::NEG_INFINITY);
        let mut best: Vec<(u32, f64)> = Vec::new();
        for u in &self.units {
            if exclude_owner == Some(u.owner) || tombstones.contains(&u.owner) {
                costs.candidates_pruned += 1;
                continue;
            }
            if filter.is_some_and(|f| !f(u.owner)) {
                costs.candidates_pruned += 1;
                continue;
            }
            let nu = length_normalization(u.unique_terms as usize, avg_unique);
            let denom = u.log_tf_sum * nu;
            if denom <= 0.0 {
                costs.candidates_pruned += 1;
                continue;
            }
            // `x < -∞` is false: without a floor nothing is skipped.
            if (u.max_log_tf / denom) * qidf_sum * crate::index::BOUND_SLACK < floor {
                costs.early_exits += 1;
                continue;
            }
            let mut score = 0.0;
            for ((term, qf), idf) in query.iter().zip(&idfs) {
                let Some(tf) = lookup(&u.freqs, term) else {
                    continue;
                };
                costs.postings_scanned += 1;
                if *idf <= 0.0 {
                    continue;
                }
                score += f64::from(*qf) * (log_tf(tf) / denom) * *idf;
            }
            if score <= 0.0 {
                costs.candidates_pruned += 1;
                continue;
            }
            match best.iter_mut().find(|(o, _)| *o == u.owner) {
                Some((_, s)) => {
                    if score > *s {
                        *s = score;
                    }
                }
                None => best.push((u.owner, score)),
            }
        }
        best
    }
}

fn freqs_len(freqs: &[(String, u32)]) -> u32 {
    u32::try_from(freqs.len()).expect("too many distinct terms")
}

/// Binary search for `term` in sorted `(term, tf)` pairs.
fn lookup(freqs: &[(String, u32)], term: &str) -> Option<u32> {
    freqs
        .binary_search_by(|(t, _)| t.as_str().cmp(term))
        .ok()
        .map(|i| freqs[i].1)
}

impl SegmentIndex {
    /// [`SegmentIndex::top_owners_with_scratch`] with a *set* of excluded
    /// owners (tombstoned documents) on top of the query's own owner: the
    /// scan over-fetches by `tombstones.len()` and filters, which yields
    /// exactly the top-`n` live owners — a tombstoned owner can only
    /// occupy a slot, never change another owner's score.
    pub fn top_owners_excluding(
        &self,
        query: &[(String, u32)],
        n: usize,
        scheme: WeightingScheme,
        exclude_owner: Option<u32>,
        tombstones: &HashSet<u32>,
        scratch: &mut ScoreScratch,
    ) -> Vec<(u32, f64)> {
        self.top_owners_excluding_filtered(
            query,
            n,
            scheme,
            exclude_owner,
            tombstones,
            None,
            scratch,
        )
    }

    /// [`SegmentIndex::top_owners_excluding`] with a per-document
    /// visibility [`DocFilter`] threaded into the underlying scan. The
    /// filter is exact *inside* the scan (hidden owners never take a
    /// slot), so only tombstones need the over-fetch treatment.
    #[allow(clippy::too_many_arguments)]
    pub fn top_owners_excluding_filtered(
        &self,
        query: &[(String, u32)],
        n: usize,
        scheme: WeightingScheme,
        exclude_owner: Option<u32>,
        tombstones: &HashSet<u32>,
        filter: Option<DocFilter>,
        scratch: &mut ScoreScratch,
    ) -> Vec<(u32, f64)> {
        if tombstones.is_empty() {
            return self.top_owners_filtered(query, n, scheme, exclude_owner, filter, scratch);
        }
        let mut over = n.saturating_add(tombstones.len());
        loop {
            let mut hits =
                self.top_owners_filtered(query, over, scheme, exclude_owner, filter, scratch);
            // Fewer hits than requested means the scan ran dry: there are
            // no further positive-scoring owners to fetch.
            let exhausted = hits.len() < over;
            let before = hits.len();
            hits.retain(|(o, _)| !tombstones.contains(o));
            scratch.costs.candidates_pruned += (before - hits.len()) as u64;
            if hits.len() >= n || exhausted {
                hits.truncate(n);
                return hits;
            }
            // Every returned owner is distinct and `tombstones` is a set,
            // so at most `tombstones.len()` hits can ever be filtered and
            // one fetch of `n + len` should always suffice; this retry
            // keeps the read path returning the full page even if the
            // underlying selection ever under-delivers.
            over = over.saturating_mul(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexBuilder;

    fn terms(words: &[&str]) -> Vec<String> {
        words.iter().map(|w| w.to_string()).collect()
    }

    fn base() -> SegmentIndex {
        let mut b = IndexBuilder::new();
        b.add_unit(0, &terms(&["raid", "disk", "controller"]));
        b.add_unit(1, &terms(&["printer", "ink", "jam"]));
        b.add_unit(2, &terms(&["wireless", "driver", "crash"]));
        b.add_unit(3, &terms(&["disk", "boot", "linux"]));
        b.build()
    }

    #[test]
    fn delta_unit_scores_like_an_appended_base_unit_with_frozen_stats() {
        // Score a delta unit directly, then verify against the closed-form
        // frozen formula: (log tf / (log_tf_sum · NU)) · idf_base.
        let idx = base();
        let mut delta = DeltaIndex::new();
        delta.push_unit(9, &terms(&["raid", "raid", "boot"]));
        let query = SegmentIndex::query_from_terms(&terms(&["raid", "boot"]));
        let hits = delta.top_owners_frozen(&idx, &query, None, &HashSet::new());
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 9);
        let nu = length_normalization(2, idx.avg_unique_terms());
        let denom = (log_tf(2) + log_tf(1)) * nu;
        let expected =
            (log_tf(2) / denom) * idx.idf("raid") + (log_tf(1) / denom) * idx.idf("boot");
        assert!((hits[0].1 - expected).abs() < 1e-15, "{}", hits[0].1);
    }

    #[test]
    fn new_vocabulary_scores_zero_until_compaction() {
        // "kubernetes" never occurs in the base: frozen df = 0 ⇒ idf = 0.
        let idx = base();
        let mut delta = DeltaIndex::new();
        delta.push_unit(9, &terms(&["kubernetes", "pod"]));
        let query = SegmentIndex::query_from_terms(&terms(&["kubernetes"]));
        assert!(delta
            .top_owners_frozen(&idx, &query, None, &HashSet::new())
            .is_empty());
    }

    #[test]
    fn delta_respects_exclusions_and_keeps_best_unit_per_owner() {
        let idx = base();
        let mut delta = DeltaIndex::new();
        delta.push_unit(9, &terms(&["raid"]));
        delta.push_unit(9, &terms(&["raid", "a", "b", "c", "d", "e"]));
        delta.push_unit(7, &terms(&["raid"]));
        let query = SegmentIndex::query_from_terms(&terms(&["raid"]));
        let hits = delta.top_owners_frozen(&idx, &query, None, &HashSet::new());
        assert_eq!(hits.len(), 2);
        let nine = hits.iter().find(|&&(o, _)| o == 9).unwrap();
        let seven = hits.iter().find(|&&(o, _)| o == 7).unwrap();
        // Owner 9's score is its best (short) unit, equal to owner 7's.
        assert_eq!(nine.1, seven.1);

        // Excluding the query owner and tombstoning work.
        assert!(delta
            .top_owners_frozen(&idx, &query, Some(9), &HashSet::from([7]))
            .is_empty());
    }

    #[test]
    fn remove_owner_drops_all_units() {
        let idx = base();
        let mut delta = DeltaIndex::new();
        delta.push_unit(9, &terms(&["raid"]));
        delta.push_unit(9, &terms(&["boot"]));
        delta.push_unit(7, &terms(&["raid"]));
        delta.remove_owner(9);
        assert_eq!(delta.num_units(), 1);
        let query = SegmentIndex::query_from_terms(&terms(&["raid", "boot"]));
        let hits = delta.top_owners_frozen(&idx, &query, None, &HashSet::new());
        assert_eq!(hits.iter().map(|&(o, _)| o).collect::<Vec<_>>(), vec![7]);
    }

    #[test]
    fn tombstone_filtering_matches_an_index_without_the_owner() {
        // Tombstoning owner 3 must return the same owners, in the same
        // order with the same scores, as scanning with owner 3 skipped —
        // over-fetch + filter is exact.
        let idx = base();
        let query = SegmentIndex::query_from_terms(&terms(&["raid", "boot", "disk"]));
        let mut scratch = ScoreScratch::new();
        let tomb = HashSet::from([3u32]);
        let filtered = idx.top_owners_excluding(
            &query,
            2,
            WeightingScheme::PaperTfIdf,
            None,
            &tomb,
            &mut scratch,
        );
        let all = idx.top_owners_with(&query, 10, WeightingScheme::PaperTfIdf, None);
        let expected: Vec<(u32, f64)> = all.into_iter().filter(|&(o, _)| o != 3).take(2).collect();
        assert_eq!(filtered, expected);
        assert!(filtered.iter().all(|&(o, _)| o != 3));
    }

    #[test]
    fn overfetch_page_survives_mass_tombstoning() {
        // Regression for the over-fetch edge: tombstone every one of the
        // best-scoring owners so the entire natural first page is
        // excluded, and require the full n eligible owners that remain to
        // be returned — with exactly the scores an exclusion-aware oracle
        // assigns them.
        let mut b = IndexBuilder::new();
        for owner in 0..30u32 {
            // Lower owners score higher ("raid" repeated more).
            let reps = (31 - owner) as usize;
            let mut t = vec!["raid".to_string(); reps];
            t.push(format!("filler{owner}"));
            b.add_unit(owner, &t);
        }
        // Keep "raid" under the 50% IDF cutoff.
        for owner in 30..70u32 {
            b.add_unit(owner, &[format!("pad{owner}")]);
        }
        let idx = b.build();
        let query = SegmentIndex::query_from_terms(&terms(&["raid"]));
        let tomb: HashSet<u32> = (0..25).collect();
        let mut scratch = ScoreScratch::new();
        let hits = idx.top_owners_excluding(
            &query,
            3,
            WeightingScheme::PaperTfIdf,
            None,
            &tomb,
            &mut scratch,
        );
        assert_eq!(hits.len(), 3, "eligible owners remain, page must fill");
        assert_eq!(
            hits.iter().map(|&(o, _)| o).collect::<Vec<_>>(),
            vec![25, 26, 27]
        );
        let all = idx.top_owners_with(&query, 40, WeightingScheme::PaperTfIdf, None);
        let expected: Vec<(u32, f64)> = all
            .into_iter()
            .filter(|(o, _)| !tomb.contains(o))
            .take(3)
            .collect();
        assert_eq!(hits, expected);
    }

    #[test]
    fn bounded_delta_scan_only_drops_sub_floor_owners() {
        let idx = base();
        let mut delta = DeltaIndex::new();
        // Strong unit (high tf, short), weak units (diluted by filler).
        delta.push_unit(20, &terms(&["raid", "raid", "raid"]));
        delta.push_unit(21, &terms(&["raid", "x1", "x2", "x3", "x4", "x5", "x6"]));
        delta.push_unit(22, &terms(&["boot", "y1", "y2", "y3", "y4", "y5", "y6"]));
        let query = SegmentIndex::query_from_terms(&terms(&["raid", "boot"]));
        let unbounded = delta.top_owners_frozen(&idx, &query, None, &HashSet::new());
        assert_eq!(unbounded.len(), 3);
        let strong = unbounded.iter().map(|&(_, s)| s).fold(0.0, f64::max);
        // A floor just below the strongest score keeps exactly that owner
        // and skips the weak units without scoring them.
        let floor = strong * 0.999;
        let mut costs = ScanCosts::default();
        let bounded = delta.top_owners_frozen_bounded(
            &idx,
            &query,
            None,
            &HashSet::new(),
            Some(floor),
            &mut costs,
        );
        assert!(costs.early_exits > 0, "weak units must be bound-skipped");
        for &(owner, score) in &bounded {
            let full = unbounded.iter().find(|&&(o, _)| o == owner).unwrap();
            assert_eq!(score.to_bits(), full.1.to_bits(), "owner {owner}");
        }
        // Every unbounded owner at or above the floor survives.
        for &(owner, score) in &unbounded {
            if score >= floor {
                assert!(bounded.iter().any(|&(o, _)| o == owner), "owner {owner}");
            }
        }
        // No floor ⇒ identical to the unbounded scan.
        let no_floor = delta.top_owners_frozen_bounded(
            &idx,
            &query,
            None,
            &HashSet::new(),
            None,
            &mut ScanCosts::default(),
        );
        assert_eq!(no_floor, unbounded);
    }

    #[test]
    fn delta_filter_hides_owners_without_touching_visible_scores() {
        let idx = base();
        let mut delta = DeltaIndex::new();
        delta.push_unit(20, &terms(&["raid", "raid"]));
        delta.push_unit(21, &terms(&["raid"]));
        delta.push_unit(22, &terms(&["boot"]));
        let query = SegmentIndex::query_from_terms(&terms(&["raid", "boot"]));
        let all = delta.top_owners_frozen(&idx, &query, None, &HashSet::new());
        assert_eq!(all.len(), 3);
        let visible = |owner: u32| owner != 21;
        let filtered = delta.top_owners_frozen_filtered(
            &idx,
            &query,
            None,
            &HashSet::new(),
            Some(&visible),
            None,
            &mut ScanCosts::default(),
        );
        assert!(filtered.iter().all(|&(o, _)| o != 21));
        for &(owner, score) in &filtered {
            let full = all.iter().find(|&&(o, _)| o == owner).unwrap();
            assert_eq!(score.to_bits(), full.1.to_bits(), "owner {owner}");
        }
        assert_eq!(filtered.len(), 2);
    }

    #[test]
    fn excluding_filtered_composes_tombstones_and_visibility() {
        let idx = base();
        let query = SegmentIndex::query_from_terms(&terms(&["raid", "boot", "disk"]));
        let tomb = HashSet::from([3u32]);
        let visible = |owner: u32| owner != 0;
        let mut scratch = ScoreScratch::new();
        let hits = idx.top_owners_excluding_filtered(
            &query,
            2,
            WeightingScheme::PaperTfIdf,
            None,
            &tomb,
            Some(&visible),
            &mut scratch,
        );
        let all = idx.top_owners_with(&query, 10, WeightingScheme::PaperTfIdf, None);
        let expected: Vec<(u32, f64)> = all
            .into_iter()
            .filter(|&(o, _)| o != 3 && visible(o))
            .take(2)
            .collect();
        assert_eq!(hits, expected);
    }

    #[test]
    fn empty_tombstones_fall_through_unchanged() {
        let idx = base();
        let query = SegmentIndex::query_from_terms(&terms(&["raid"]));
        let mut scratch = ScoreScratch::new();
        let a = idx.top_owners_excluding(
            &query,
            5,
            WeightingScheme::PaperTfIdf,
            Some(1),
            &HashSet::new(),
            &mut scratch,
        );
        let b = idx.top_owners_with(&query, 5, WeightingScheme::PaperTfIdf, Some(1));
        assert_eq!(a, b);
    }
}
