//! Full-text indexing and the paper's term-weighting schemes (Section 7).
//!
//! One index type serves both granularities the paper compares:
//!
//! * **FullText** — a single index whose units are whole posts, scored with
//!   the MySQL 5.5 TF/IDF variant of Eq. 7 (the paper's strongest
//!   non-segmented baseline);
//! * **per-intention indices** — one index per intention cluster whose
//!   units are the segments assigned to that cluster, scored with the
//!   intention-aware weight of Eq. 8 and the probabilistic IDF of Eq. 9.
//!   Because unit statistics (average unique-term count, IDF) are computed
//!   *within* the index, the same term automatically receives different
//!   weights in different clusters — the paper's central weighting idea
//!   (Fig. 5).
//!
//! Modules:
//! * [`index`] — [`index::IndexBuilder`] / [`index::SegmentIndex`]: postings
//!   lists, unit statistics, top-n retrieval (bounded-heap selection over
//!   reusable [`index::ScoreScratch`] accumulators, plus per-owner
//!   aggregation for Algorithm 1).
//! * [`weighting`] — the weight and IDF formulas, exposed separately for
//!   tests and experiments.

pub mod codec;
pub mod delta;
pub mod flat;
pub mod index;
pub mod weighting;

pub use codec::{DecodeError, Emit, Reader, Writer};
pub use delta::{DeltaIndex, DeltaUnit};
pub use flat::{encode_flat, FlatIndexView};
pub use index::{
    DocFilter, IndexAudit, IndexBuilder, Posting, ScanCosts, ScoreScratch, SegmentIndex, UnitId,
    WeightingScheme,
};
pub use weighting::{log_tf, probabilistic_idf};
